"""Pageview events — the workload of the paper's Figure 2 example."""

from __future__ import annotations

import random
from typing import Optional

from repro.broker.cluster import Cluster
from repro.workloads.generator import LatenessModel, WorkloadGenerator

CATEGORIES = [
    "news", "sports", "tech", "travel", "finance", "music", "food", "games",
]


def pageview_value(rng: random.Random, sequence: int) -> dict:
    """One pageview event: category browsed and dwell period (ms)."""
    return {
        "category": rng.choice(CATEGORIES),
        "period": rng.choice([5_000, 15_000, 45_000, 90_000, 240_000]),
        "page": f"/page/{rng.randrange(500)}",
    }


class PageViewGenerator(WorkloadGenerator):
    """Pageview events keyed by user id."""

    def __init__(
        self,
        cluster: Cluster,
        topic: str = "pageview-events",
        rate_per_sec: float = 1000.0,
        users: int = 1000,
        lateness: Optional[LatenessModel] = None,
        seed: int = 42,
    ) -> None:
        super().__init__(
            cluster,
            topic,
            rate_per_sec=rate_per_sec,
            key_space=users,
            key_prefix="user",
            value_fn=pageview_value,
            lateness=lateness,
            seed=seed,
        )
