"""Read-heavy interactive-query workloads.

A :class:`QueryWorkload` is a Driver actor that fires pull queries against
one store at a configured rate with a Zipfian key distribution — the
read-side twin of :class:`~repro.workloads.generator.WorkloadGenerator`.
Queries ride along with stream processing without perturbing it: the
router models latency arithmetically instead of advancing the virtual
clock, so a simulation with a million queries per simulated second commits
the exact same records as one with none.

Every outcome is tallied (`served` / `shed` / per-error-class counts) and
per-query modelled latency lands in the shared ``iq_query_latency_ms``
histogram, which is what the availability benchmark reads during rolling
restarts.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.runtime.app import KafkaStreams


def zipfian_cdf(key_space: int, exponent: float = 1.1) -> List[float]:
    """Cumulative distribution of a Zipf law over ``key_space`` ranks."""
    weights = [1.0 / (rank + 1) ** exponent for rank in range(key_space)]
    total = sum(weights)
    cdf: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cdf.append(running)
    cdf[-1] = 1.0
    return cdf


class QueryWorkload:
    """Issues pull queries at ``rate_per_sec`` with Zipfian-skewed keys."""

    def __init__(
        self,
        app: "KafkaStreams",
        store: str,
        rate_per_sec: float = 1_000_000.0,
        key_space: int = 100,
        key_prefix: str = "key",
        zipf_exponent: float = 1.1,
        consistency: Optional[str] = None,
        max_staleness: float = float("inf"),
        windowed: bool = False,
        max_queries_per_poll: int = 512,
        seed: int = 42,
    ) -> None:
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be > 0")
        from repro.iq.server import BOUNDED

        self.app = app
        self.store = store
        self.rate_per_sec = rate_per_sec
        self.consistency = consistency or BOUNDED
        self.max_staleness = max_staleness
        self.windowed = windowed
        self.max_queries_per_poll = max_queries_per_poll
        self.router = app.query_router()
        self.rng = random.Random(seed)
        self._keys = [f"{key_prefix}-{i}" for i in range(key_space)]
        self._cdf = zipfian_cdf(key_space, zipf_exponent)
        self._last_poll_ms = app.cluster.clock.now
        self._backlog = 0.0
        # Outcome tallies (also mirrored into cluster metrics counters).
        self.served = 0
        self.shed = 0
        self.errors: Dict[str, int] = {}
        self.staleness_seen = 0.0
        metrics = app.cluster.metrics
        self._served_counter = metrics.counter("iq.workload.served")
        self._shed_counter = metrics.counter("iq.workload.shed")
        self._error_counter = metrics.counter("iq.workload.errors")

    def next_key(self) -> str:
        """Zipfian draw: rank r with probability ∝ 1/(r+1)^s."""
        return self._keys[bisect_left(self._cdf, self.rng.random())]

    def query_once(self) -> bool:
        """Fire one pull query; True when it was served."""
        try:
            if self.windowed:
                result = self.router.window_fetch(
                    self.store,
                    self.next_key(),
                    consistency=self.consistency,
                    max_staleness=self.max_staleness,
                )
            else:
                result = self.router.get(
                    self.store,
                    self.next_key(),
                    consistency=self.consistency,
                    max_staleness=self.max_staleness,
                )
        except QueryError as exc:
            name = type(exc).__name__
            self.errors[name] = self.errors.get(name, 0) + 1
            self._error_counter.increment()
            return False
        self.served += 1
        self._served_counter.increment()
        self.staleness_seen = max(self.staleness_seen, result.staleness)
        return True

    def run_burst(self, count: int) -> int:
        """Fire ``count`` queries back to back; returns how many served."""
        return sum(1 for _ in range(count) if self.query_once())

    # -- actor protocol (repro.sim.scheduler.Driver) ---------------------------

    def poll(self) -> int:
        """Issue the queries due since the last poll, up to the per-poll
        cap; the excess is *shed* (counted, not queued — at 10^6 q/s a
        backlog would otherwise grow without bound whenever processing
        pauses the driver). Returns 0: queries are observers and must not
        keep an otherwise-idle driver spinning."""
        now = self.app.cluster.clock.now
        elapsed_ms = now - self._last_poll_ms
        self._last_poll_ms = now
        self._backlog += elapsed_ms * self.rate_per_sec / 1000.0
        due = int(self._backlog)
        if due <= 0:
            return 0
        issue = min(due, self.max_queries_per_poll)
        dropped = due - issue
        if dropped:
            self.shed += dropped
            self._shed_counter.increment(dropped)
        self._backlog -= due
        for _ in range(issue):
            self.query_once()
        return 0

    def flush(self) -> None:
        return None
