"""Conversation events — a synthetic stand-in for Expedia's Conversational
Platform traffic (Section 6.2): strictly ordered dialogue events per
conversation, at the platform's modest steady rate.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.broker.cluster import Cluster
from repro.metrics.latency import CREATED_AT_HEADER
from repro.workloads.generator import LatenessModel, WorkloadGenerator

EVENT_TYPES = [
    "customer_message",
    "agent_message",
    "booking_request",
    "cancellation_request",
    "payment",
]


class ConversationGenerator(WorkloadGenerator):
    """Conversation events keyed by conversation id.

    Keying by conversation keeps each dialogue strictly ordered within one
    partition — the ordering contract CP relies on."""

    def __init__(
        self,
        cluster: Cluster,
        topic: str = "conversation-events",
        rate_per_sec: float = 14.0,     # the paper's stable per-app average
        conversations: int = 50,
        close_fraction: float = 0.05,
        lateness: Optional[LatenessModel] = None,
        seed: int = 42,
    ) -> None:
        super().__init__(
            cluster,
            topic,
            rate_per_sec=rate_per_sec,
            key_space=conversations,
            key_prefix="conv",
            lateness=lateness,
            seed=seed,
        )
        self.close_fraction = close_fraction
        self._seq_in_conversation: dict = {}

    def produce_one(self) -> None:
        now = self.cluster.clock.now
        conversation = self.next_key()
        seq = self._seq_in_conversation.get(conversation, 0)
        self._seq_in_conversation[conversation] = seq + 1
        if self.rng.random() < self.close_fraction:
            event_type = "conversation_closed"
        else:
            event_type = self.rng.choice(EVENT_TYPES)
        amount = (
            self.rng.choice([120, 480, 960]) if event_type == "payment" else 0
        )
        event_time = max(0.0, now - self.lateness.sample(self.rng))
        self.producer.send(
            self.topic,
            key=conversation,
            value={
                "conversation": conversation,
                "seq": seq,
                "type": event_type,
                "amount": amount,
            },
            timestamp=event_time,
            headers={CREATED_AT_HEADER: now},
        )
        self._sequence += 1
        self.records_produced += 1
