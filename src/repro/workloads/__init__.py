"""Synthetic workload generators standing in for the paper's data sources."""

from repro.workloads.generator import LatenessModel, WorkloadGenerator
from repro.workloads.pageviews import PageViewGenerator
from repro.workloads.market_data import MarketDataGenerator
from repro.workloads.conversations import ConversationGenerator
from repro.workloads.queries import QueryWorkload, zipfian_cdf

__all__ = [
    "WorkloadGenerator",
    "LatenessModel",
    "PageViewGenerator",
    "MarketDataGenerator",
    "ConversationGenerator",
    "QueryWorkload",
    "zipfian_cdf",
]
