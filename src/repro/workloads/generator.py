"""Rate-controlled workload generation with out-of-order lateness.

Every produced record carries a ``created_at`` header (the virtual send
time) so the benchmark harness can compute per-record end-to-end latency
exactly as the paper does. Event timestamps can lag behind send time via a
:class:`LatenessModel`, producing the out-of-order arrivals Section 5's
mechanisms exist to handle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.broker.cluster import Cluster
from repro.clients.producer import Producer
from repro.config import ProducerConfig
from repro.metrics.latency import CREATED_AT_HEADER


@dataclass(frozen=True)
class LatenessModel:
    """How far event time lags behind send time.

    A fraction ``late_fraction`` of records is late by an exponential-ish
    delay with mean ``mean_late_ms`` (capped at ``max_late_ms``); the rest
    are on time.
    """

    late_fraction: float = 0.0
    mean_late_ms: float = 0.0
    max_late_ms: float = float("inf")

    def sample(self, rng: random.Random) -> float:
        if self.late_fraction <= 0 or rng.random() >= self.late_fraction:
            return 0.0
        return min(rng.expovariate(1.0 / max(self.mean_late_ms, 1e-9)),
                   self.max_late_ms)


class WorkloadGenerator:
    """Produces keyed records into a topic at a configured rate."""

    def __init__(
        self,
        cluster: Cluster,
        topic: str,
        rate_per_sec: float = 1000.0,
        key_space: int = 100,
        key_prefix: str = "key",
        value_fn: Optional[Callable[[random.Random, int], Any]] = None,
        lateness: Optional[LatenessModel] = None,
        seed: int = 42,
    ) -> None:
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be > 0")
        if key_space < 1:
            raise ValueError("key_space must be >= 1")
        self.cluster = cluster
        self.topic = topic
        self.rate_per_sec = rate_per_sec
        self.key_space = key_space
        self.key_prefix = key_prefix
        self.value_fn = value_fn or (lambda rng, i: i)
        self.lateness = lateness or LatenessModel()
        self.rng = random.Random(seed)
        self.producer = Producer(
            cluster, ProducerConfig(client_id=f"workload-{topic}")
        )
        self.records_produced = 0
        self._sequence = 0

    @property
    def interarrival_ms(self) -> float:
        return 1000.0 / self.rate_per_sec

    def next_key(self) -> str:
        return f"{self.key_prefix}-{self.rng.randrange(self.key_space)}"

    def produce_one(self) -> None:
        """Produce a single record stamped with the current virtual time."""
        now = self.cluster.clock.now
        event_time = max(0.0, now - self.lateness.sample(self.rng))
        self.producer.send(
            self.topic,
            key=self.next_key(),
            value=self.value_fn(self.rng, self._sequence),
            timestamp=event_time,
            headers={CREATED_AT_HEADER: now},
        )
        self._sequence += 1
        self.records_produced += 1

    def produce_batch(self, count: int, flush: bool = True) -> None:
        """Produce ``count`` records, advancing virtual time per the rate."""
        for _ in range(count):
            self.produce_one()
            self.cluster.clock.advance(self.interarrival_ms)
        if flush:
            self.producer.flush()

    def produce_for(self, duration_ms: float, flush: bool = True) -> int:
        """Produce at the configured rate for ``duration_ms`` virtual time.

        Returns the number of records produced.
        """
        deadline = self.cluster.clock.now + duration_ms
        produced = 0
        while self.cluster.clock.now < deadline:
            self.produce_one()
            produced += 1
            self.cluster.clock.advance(self.interarrival_ms)
        if flush:
            self.producer.flush()
        return produced
