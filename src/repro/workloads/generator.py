"""Rate-controlled workload generation with out-of-order lateness.

Every produced record carries a ``created_at`` header (the virtual send
time) so the benchmark harness can compute per-record end-to-end latency
exactly as the paper does. Event timestamps can lag behind send time via a
:class:`LatenessModel`, producing the out-of-order arrivals Section 5's
mechanisms exist to handle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.broker.cluster import Cluster
from repro.clients.producer import Producer
from repro.config import ProducerConfig
from repro.metrics.latency import CREATED_AT_HEADER
from repro.util import partition_for


@dataclass(frozen=True)
class LatenessModel:
    """How far event time lags behind send time.

    A fraction ``late_fraction`` of records is late by an exponential-ish
    delay with mean ``mean_late_ms`` (capped at ``max_late_ms``); the rest
    are on time.
    """

    late_fraction: float = 0.0
    mean_late_ms: float = 0.0
    max_late_ms: float = float("inf")

    def sample(self, rng: random.Random) -> float:
        if self.late_fraction <= 0 or rng.random() >= self.late_fraction:
            return 0.0
        return min(rng.expovariate(1.0 / max(self.mean_late_ms, 1e-9)),
                   self.max_late_ms)


class WorkloadGenerator:
    """Produces keyed records into a topic at a configured rate."""

    def __init__(
        self,
        cluster: Cluster,
        topic: str,
        rate_per_sec: float = 1000.0,
        key_space: int = 100,
        key_prefix: str = "key",
        value_fn: Optional[Callable[[random.Random, int], Any]] = None,
        lateness: Optional[LatenessModel] = None,
        seed: int = 42,
    ) -> None:
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be > 0")
        if key_space < 1:
            raise ValueError("key_space must be >= 1")
        self.cluster = cluster
        self.topic = topic
        self.rate_per_sec = rate_per_sec
        self.key_space = key_space
        self.key_prefix = key_prefix
        self.value_fn = value_fn or (lambda rng, i: i)
        self.lateness = lateness or LatenessModel()
        self.rng = random.Random(seed)
        self.producer = Producer(
            cluster, ProducerConfig(client_id=f"workload-{topic}")
        )
        self.records_produced = 0
        self._sequence = 0
        # Columnar-path memos: the key-string table (keys are drawn in one
        # bulk rng call) and the key -> partition map, invalidated when the
        # topic's partition count changes.
        self._key_strings = [
            f"{key_prefix}-{i}" for i in range(key_space)
        ]
        self._partition_cache: tuple = (-1, {})

    @property
    def interarrival_ms(self) -> float:
        return 1000.0 / self.rate_per_sec

    def next_key(self) -> str:
        return f"{self.key_prefix}-{self.rng.randrange(self.key_space)}"

    def produce_one(self) -> None:
        """Produce a single record stamped with the current virtual time."""
        now = self.cluster.clock.now
        event_time = max(0.0, now - self.lateness.sample(self.rng))
        self.producer.send(
            self.topic,
            key=self.next_key(),
            value=self.value_fn(self.rng, self._sequence),
            timestamp=event_time,
            headers={CREATED_AT_HEADER: now},
        )
        self._sequence += 1
        self.records_produced += 1

    def produce_batch(self, count: int, flush: bool = True) -> None:
        """Produce ``count`` records, advancing virtual time per the rate."""
        for _ in range(count):
            self.produce_one()
            self.cluster.clock.advance(self.interarrival_ms)
        if flush:
            self.producer.flush()

    def produce_for(self, duration_ms: float, flush: bool = True) -> int:
        """Produce at the configured rate for ``duration_ms`` virtual time.

        Returns the number of records produced.
        """
        deadline = self.cluster.clock.now + duration_ms
        produced = 0
        while self.cluster.clock.now < deadline:
            self.produce_one()
            produced += 1
            self.cluster.clock.advance(self.interarrival_ms)
        if flush:
            self.producer.flush()
        return produced

    def produce_for_columnar(self, duration_ms: float, flush: bool = True) -> int:
        """Columnar twin of :meth:`produce_for`: the same record stream
        (key distribution, rate, lateness model, creation stamps), built as
        whole columns and handed to :meth:`Producer.send_columns` — one
        bulk rng draw for the keys, one memoized partition hash per
        distinct key, and one clock advance per slice instead of one per
        record. (The rng consumption differs from the scalar path, so a
        given seed yields different — equally distributed — keys.)
        """
        clock = self.cluster.clock
        now = clock.now
        deadline = now + duration_ms
        step = self.interarrival_ms
        rng = self.rng

        times: list = []
        t = now
        while t < deadline:
            times.append(t)
            t += step
        n = len(times)
        if n == 0:
            if flush:
                self.producer.flush()
            return 0

        keys = rng.choices(self._key_strings, k=n)
        if self.lateness.late_fraction > 0:
            sample = self.lateness.sample
            event_times = []
            for created in times:
                late = sample(rng)
                event_times.append(created - late if late < created else 0.0)
        else:
            event_times = times
        value_fn = self.value_fn
        sequence = self._sequence
        values = [value_fn(rng, sequence + i) for i in range(n)]
        headers = [{CREATED_AT_HEADER: created} for created in times]

        num_partitions = self.cluster.topic_metadata(self.topic).num_partitions
        pcache_partitions, pcache = self._partition_cache
        if pcache_partitions != num_partitions:
            pcache = {}
            self._partition_cache = (num_partitions, pcache)
        pcache_get = pcache.get
        buckets: dict = {}
        buckets_get = buckets.get
        for key, value, event_time, hdrs in zip(
            keys, values, event_times, headers
        ):
            partition = pcache_get(key)
            if partition is None:
                partition = pcache[key] = partition_for(key, num_partitions)
            bucket = buckets_get(partition)
            if bucket is None:
                bucket = buckets[partition] = ([], [], [], [])
            bucket[0].append(key)
            bucket[1].append(value)
            bucket[2].append(event_time)
            bucket[3].append(hdrs)

        self._sequence = sequence + n
        self.records_produced += n
        for partition, columns in buckets.items():
            self.producer.send_columns(self.topic, partition, *columns)
        clock.advance(t - now)
        if flush:
            self.producer.flush()
        return n
