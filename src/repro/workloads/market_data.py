"""Market-data ticks — a synthetic stand-in for the Bloomberg MxFlow feed
(Section 6.1): derivative quotes with occasional outliers, keyed by
instrument, at configurable (peak-hour) rates.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.broker.cluster import Cluster
from repro.workloads.generator import LatenessModel, WorkloadGenerator

INSTRUMENT_TYPES = ["option", "forward", "future", "swap"]


def make_tick_factory(outlier_fraction: float = 0.01):
    """Tick values: mid price around a random walk, bid/ask spread, and a
    configurable fraction of outlier prints (fat-finger style)."""
    state = {}

    def tick(rng: random.Random, sequence: int) -> dict:
        instrument = rng.randrange(200)
        mid = state.get(instrument, 100.0)
        mid = max(1.0, mid + rng.gauss(0.0, 0.25))
        state[instrument] = mid
        price = mid
        is_outlier = rng.random() < outlier_fraction
        if is_outlier:
            price = mid * rng.choice([0.5, 2.0, 10.0])
        spread = abs(rng.gauss(0.02, 0.01))
        return {
            "instrument_type": INSTRUMENT_TYPES[instrument % len(INSTRUMENT_TYPES)],
            "bid": round(price - spread, 4),
            "ask": round(price + spread, 4),
            "mid": round(price, 4),
            "size": rng.choice([10, 50, 100, 500]),
            "outlier_truth": is_outlier,    # ground truth for tests/benches
        }

    return tick


class MarketDataGenerator(WorkloadGenerator):
    """Derivative ticks keyed by instrument id."""

    def __init__(
        self,
        cluster: Cluster,
        topic: str = "market-data",
        rate_per_sec: float = 10_000.0,
        instruments: int = 200,
        outlier_fraction: float = 0.01,
        lateness: Optional[LatenessModel] = None,
        seed: int = 42,
    ) -> None:
        super().__init__(
            cluster,
            topic,
            rate_per_sec=rate_per_sec,
            key_space=instruments,
            key_prefix="instr",
            value_fn=make_tick_factory(outlier_fraction),
            lateness=lateness,
            seed=seed,
        )
