"""Failure debug bundles.

When a chaos-run invariant trips, a committed-output diff alone says
*what* diverged, not *when* or *why*. :func:`dump_debug_bundle` writes
everything observable about the run to a directory — the JSONL span log,
the Perfetto-loadable Chrome trace, metrics snapshots per registry, the
chaos fault timeline, and the plain-text run summary — so the failure can
be inspected offline (CI uploads the directory as an artifact).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.obs.export import (
    run_summary,
    write_chrome_trace,
    write_span_log,
)
from repro.obs.tracer import Tracer

#: Environment override for where bundles land (CI sets this so the
#: artifact-upload step has a fixed path to glob).
DUMP_DIR_ENV = "CHAOS_DUMP_DIR"
DEFAULT_DUMP_DIR = "chaos-dumps"


def dump_dir() -> str:
    return os.environ.get(DUMP_DIR_ENV, DEFAULT_DUMP_DIR)


def dump_debug_bundle(
    label: str,
    tracer: Tracer,
    registries: Optional[Dict[str, Any]] = None,
    timeline: Optional[List[Any]] = None,
    base_dir: Optional[str] = None,
    health: Optional[Any] = None,
) -> str:
    """Write one bundle directory and return its path.

    ``label`` names the bundle (e.g. ``chaos-seed7``); the virtual
    timestamp is appended so repeated failures in one process don't
    clobber each other. ``registries`` maps labels to MetricsRegistry
    instances; ``timeline`` is the chaos controller's event list;
    ``health`` is a :class:`~repro.obs.health.HealthMonitor` whose
    HTML/JSON report (plus a Prometheus exposition of the registries)
    rides along for staleness/alert forensics.
    """
    base = base_dir or dump_dir()
    stamp = int(tracer.now())
    bundle = os.path.join(base, f"{label}-t{stamp}")
    suffix = 0
    while os.path.exists(bundle):
        suffix += 1
        bundle = os.path.join(base, f"{label}-t{stamp}-{suffix}")
    os.makedirs(bundle)

    write_span_log(tracer, os.path.join(bundle, "spans.jsonl"))
    write_chrome_trace(tracer, os.path.join(bundle, "trace.json"))

    metrics: Dict[str, Any] = {}
    for reg_label, registry in sorted((registries or {}).items()):
        metrics[reg_label] = {
            "counters": dict(registry.counters()),
            "gauges": dict(getattr(registry, "gauges", lambda: {})()),
            "histograms": registry.histograms(),
        }
    with open(os.path.join(bundle, "metrics.json"), "w") as f:
        json.dump(metrics, f, sort_keys=True, indent=2, default=repr)

    if timeline is not None:
        with open(os.path.join(bundle, "chaos-timeline.txt"), "w") as f:
            for entry in timeline:
                f.write(f"{entry}\n")

    first_registry = next(iter((registries or {}).values()), None)
    with open(os.path.join(bundle, "summary.txt"), "w") as f:
        f.write(run_summary(tracer, registry=first_registry))
        f.write("\n")

    if registries:
        # Lazy import: debug is imported by the package __init__ before
        # the exporter modules.
        from repro.obs.prometheus import write_prometheus_text

        write_prometheus_text(registries, os.path.join(bundle, "metrics.prom"))
    if health is not None:
        from repro.obs.report import write_health_report

        write_health_report(health, bundle, label=label, fault_timeline=timeline)

    return bundle
