"""Recovery-phase decomposition for fault-recovery runs.

A :class:`RecoveryTracker` breaks the end-to-end gap between a fault and
the return to steady state into the four phases the fault-recovery
benchmarking literature uses (arxiv 2404.06203):

``detect``
    fault injection → the first component *reacts* to it (a session
    expiry evicting a member, a retriable RPC error, a coordinator-call
    retry, a gray-broker demotion, a crashed barrier job being picked up
    for recovery).
``rebalance``
    first reaction → the last ownership realignment (group rebalance
    completion, assignor placement, barrier recovery start).
``restore``
    realignment → the last completed state restoration (changelog replay
    for an active task, checkpoint reload for the barrier engine).
``catchup``
    restoration → the run converging back to the fault-free golden
    output (reported by the scenario harness / benchmark).

The tracker is milestone-based, mirroring the telescoping construction
of :class:`~repro.obs.stages.StageLatencyTracker`: each phase boundary is
a clamped, monotonically non-decreasing timestamp between the first
fault and the recovery instant, so the four phase durations sum to the
observed end-to-end gap *by construction* (floating-point exact, well
inside the 5% acceptance tolerance the benchmark asserts).

Hook transport: the tracker installs itself as ``cluster.recovery``.
Components feed it with the same cheap idiom the tracer uses —

    rec = self._cluster.recovery
    if rec is not None:
        rec.note_detection("session_expired", member=member_id)

— one attribute check when no tracker is installed, and no dependence on
tracing being enabled. When the cluster's tracer *is* enabled, every
milestone is additionally emitted as a ``recovery.*`` instant event so
phase boundaries line up with the span log in trace exports.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

PHASES: Tuple[str, ...] = ("detect", "rebalance", "restore", "catchup")


class RecoveryTracker:
    """Collects fault/reaction/realign/restore/recovered milestones.

    Every ``note_*`` call records ``(t, kind, source, details)`` into
    :attr:`events` (a deterministic, append-ordered log). Milestones and
    phases are derived lazily so hooks stay O(1).
    """

    def __init__(self, clock, tracer=None) -> None:
        self._clock = clock
        self._tracer = tracer
        self.events: List[Tuple[float, str, str, Dict[str, Any]]] = []
        self.fault_at: Optional[float] = None       # first fault
        self.last_fault_at: Optional[float] = None
        self.recovered_at: Optional[float] = None
        self.faults: int = 0

    # -- installation --------------------------------------------------------

    def install(self, cluster) -> "RecoveryTracker":
        """Attach to ``cluster.recovery`` so component hooks find us."""
        cluster.recovery = self
        self._tracer = cluster.tracer
        return self

    @staticmethod
    def uninstall(cluster) -> None:
        cluster.recovery = None

    # -- hook entry points ---------------------------------------------------

    def note_fault(self, source: str, **details: Any) -> None:
        """A fault was injected (called by the chaos controller)."""
        now = self._note("fault", source, details)
        if self.fault_at is None:
            self.fault_at = now
        self.last_fault_at = now
        self.faults += 1

    def note_detection(self, source: str, **details: Any) -> None:
        """A component first reacted to a failure (eviction, retry, ...)."""
        self._note("detect", source, details)

    def note_realign(self, source: str, **details: Any) -> None:
        """Ownership was realigned (rebalance done, placement, recover)."""
        self._note("realign", source, details)

    def note_restore(
        self, source: str, records: int = 0, complete: bool = True, **details: Any
    ) -> None:
        """State was restored; ``complete`` marks the store fully caught
        up to its changelog (partial throttled steps pass False)."""
        details["records"] = records
        details["complete"] = complete
        self._note("restore", source, details)

    def note_recovered(self, **details: Any) -> None:
        """The run converged back to the golden output (harness-called)."""
        now = self._note("recovered", "harness", details)
        self.recovered_at = now

    def _note(self, kind: str, source: str, details: Dict[str, Any]) -> float:
        now = self._clock.now
        self.events.append((now, kind, source, details))
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                f"recovery.{kind}", "recovery", source, category="recovery", **details
            )
        return now

    # -- derived milestones --------------------------------------------------

    def milestones(self) -> Dict[str, float]:
        """Clamped phase boundaries between the first fault and recovery.

        ``fault ≤ detect_end ≤ rebalance_end ≤ restore_end ≤ recovered``.
        Events stamped before the fault (steady-state rebalances during
        setup) are ignored; a phase with no events after the fault
        collapses to zero width.
        """
        if self.fault_at is None:
            raise ValueError("no fault recorded; call note_fault() first")
        if self.recovered_at is None:
            raise ValueError("not recovered; call note_recovered() first")
        t0, t_end = self.fault_at, self.recovered_at

        def clamp(value: float, lo: float) -> float:
            return min(max(value, lo), t_end)

        # No reaction event at all (e.g. a broker crash masked by instant
        # failover) collapses detect to zero width — the whole gap is then
        # catch-up, not an unobserved "detection" that never happened.
        detect_end = t0
        for t, kind, _src, _d in self.events:
            if t >= t0 and kind in ("detect", "realign", "restore"):
                detect_end = t
                break
        detect_end = clamp(detect_end, t0)

        realign_end = detect_end
        restore_end = detect_end
        for t, kind, _src, details in self.events:
            if t < t0:
                continue
            if kind == "realign":
                realign_end = max(realign_end, t)
            elif kind == "restore" and details.get("complete", True):
                restore_end = max(restore_end, t)
        realign_end = clamp(realign_end, detect_end)
        restore_end = clamp(restore_end, realign_end)

        return {
            "fault": t0,
            "detect_end": detect_end,
            "rebalance_end": realign_end,
            "restore_end": restore_end,
            "recovered": t_end,
        }

    def phases(self) -> Dict[str, float]:
        """Per-phase durations (ms); consecutive milestone differences,
        so they telescope to :meth:`total_ms` exactly."""
        m = self.milestones()
        return {
            "detect": m["detect_end"] - m["fault"],
            "rebalance": m["rebalance_end"] - m["detect_end"],
            "restore": m["restore_end"] - m["rebalance_end"],
            "catchup": m["recovered"] - m["restore_end"],
        }

    def total_ms(self) -> float:
        """Observed end-to-end gap: first fault → recovered."""
        if self.fault_at is None or self.recovered_at is None:
            raise ValueError("recovery window incomplete")
        return self.recovered_at - self.fault_at

    def verify_telescoping(self, tolerance: float = 0.05) -> None:
        """Assert the phase sum matches the end-to-end gap within
        ``tolerance`` (relative; absolute for sub-millisecond gaps)."""
        total = self.total_ms()
        sum_phases = sum(self.phases().values())
        bound = max(abs(total) * tolerance, 1e-6)
        if abs(sum_phases - total) > bound:
            raise AssertionError(
                f"recovery phases do not telescope: sum={sum_phases:.6f}ms "
                f"!= gap={total:.6f}ms (tolerance {tolerance:.0%})"
            )

    # -- reporting -----------------------------------------------------------

    def restored_records(self) -> int:
        """Total records replayed by restore events inside the window."""
        t0 = self.fault_at if self.fault_at is not None else float("-inf")
        return sum(
            d.get("records", 0)
            for t, kind, _s, d in self.events
            if kind == "restore" and t >= t0
        )

    def detection_sources(self) -> List[str]:
        """Distinct detection sources inside the window, in first-seen order."""
        t0 = self.fault_at if self.fault_at is not None else float("-inf")
        seen: List[str] = []
        for t, kind, src, _d in self.events:
            if kind == "detect" and t >= t0 and src not in seen:
                seen.append(src)
        return seen

    def summary(self) -> Dict[str, Any]:
        """One flat dict per cell for benchmark tables / debug bundles."""
        out: Dict[str, Any] = {
            "faults": self.faults,
            "gap_ms": round(self.total_ms(), 3),
            "restored_records": self.restored_records(),
            "detected_by": ",".join(self.detection_sources()) or "-",
        }
        for name, dur in self.phases().items():
            out[f"{name}_ms"] = round(dur, 3)
        return out
