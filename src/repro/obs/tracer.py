"""Structured tracing over virtual time.

A :class:`Tracer` collects *spans* (named intervals with a start and end in
virtual milliseconds) and *events* (instants) from every layer of the repro
stack: broker RPCs, two-phase-commit transitions, group rebalances, task
processing, changelog restores, chaos fault injections. Because the clock
is the deterministic :class:`~repro.sim.clock.SimClock`, two runs with the
same seed and config produce byte-identical traces — a trace is a replayable
artifact, not a best-effort sample.

Design constraints, in order:

* **Cheap when off.** Tracing is disabled by default. Every hot-path call
  site guards with ``if tracer.enabled:`` before building any arguments,
  so a disabled tracer costs one attribute check per record. Components
  cache the tracer reference at construction; toggling
  :attr:`Tracer.enabled` works at any time because the object identity
  never changes.
* **Deterministic.** Span/event identity comes from append order and the
  virtual clock — no wall time, no ``id()``, no randomness. Trace ids are
  drawn from a per-tracer counter.
* **Causal.** A *trace id* is assigned to each input record at first send
  (:const:`TRACE_ID_HEADER` in the record's headers) and propagated by the
  existing header plumbing through repartition topics, changelog appends,
  and sink outputs, so one input's full causal chain can be filtered out
  of the span log.

Tracks follow the Chrome trace-event model: every span names a ``pid``
(the process-like component: ``broker-0``, ``streams-app``, or
``txn-coordinator``) and a ``tid`` (the thread-like lane inside it: a
topic-partition, a task id, an RPC kind). The exporters in
:mod:`repro.obs.export` turn these into Perfetto-loadable tracks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoids a sim<->obs import cycle
    from repro.sim.clock import SimClock

# Header key carrying the trace id through record hops (produce →
# repartition → changelog → sink). Double-underscore prefixed like the
# consumer's origin headers so it never collides with user headers.
TRACE_ID_HEADER = "__trace_id"


class Span:
    """One named interval (or instant) on a (pid, tid) track."""

    __slots__ = ("name", "category", "pid", "tid", "start_ms", "end_ms", "args")

    def __init__(
        self,
        name: str,
        category: str,
        pid: str,
        tid: str,
        start_ms: float,
        end_ms: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.pid = pid
        self.tid = tid
        self.start_ms = start_ms
        self.end_ms = end_ms            # None while open; == start for instants
        self.args = args or {}

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    @property
    def is_instant(self) -> bool:
        return self.end_ms is not None and self.end_ms == self.start_ms

    def to_dict(self) -> Dict[str, Any]:
        """Serializable form used by the JSONL exporter (stable keys)."""
        return {
            "name": self.name,
            "cat": self.category,
            "pid": self.pid,
            "tid": self.tid,
            "ts": self.start_ms,
            "dur": self.duration_ms,
            "ph": "i" if self.is_instant else "X",
            "args": self.args,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.pid}/{self.tid}, "
            f"{self.start_ms}..{self.end_ms})"
        )


class _SpanHandle:
    """Context manager closing a span; also usable via explicit end()."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Optional[Span]) -> None:
        self._tracer = tracer
        self._span = span

    def add(self, **args: Any) -> None:
        """Attach extra args to the span (e.g. a result count at the end)."""
        if self._span is not None:
            self._span.args.update(args)

    def end(self) -> None:
        if self._span is not None and self._span.end_ms is None:
            self._span.end_ms = self._tracer.now()

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.end()


class Tracer:
    """Collects spans/events stamped with SimClock time.

    ``enabled`` gates *recording*; call sites additionally guard with
    ``if tracer.enabled:`` so disabled tracing costs one attribute check.
    """

    def __init__(self, clock: Optional["SimClock"] = None, enabled: bool = False):
        self.clock = clock
        self.enabled = enabled
        self.spans: List[Span] = []     # append order = start order
        self._next_trace_id = 0

    # -- time -------------------------------------------------------------------------

    def now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    # -- trace ids -------------------------------------------------------------------

    def new_trace_id(self) -> str:
        """Deterministic, monotonically assigned trace id."""
        self._next_trace_id += 1
        return f"t{self._next_trace_id:06d}"

    # -- recording -------------------------------------------------------------------

    def begin(
        self, name: str, pid: str, tid: str, category: str = "", **args: Any
    ) -> _SpanHandle:
        """Open a span; close it via the returned handle (or ``with``)."""
        if not self.enabled:
            return _NOOP_HANDLE
        span = Span(name, category, pid, tid, self.now(), args=args or {})
        self.spans.append(span)
        return _SpanHandle(self, span)

    # `span` is the idiomatic with-statement spelling of `begin`.
    span = begin

    def event(
        self, name: str, pid: str, tid: str, category: str = "", **args: Any
    ) -> None:
        """Record an instant event."""
        if not self.enabled:
            return
        now = self.now()
        self.spans.append(Span(name, category, pid, tid, now, now, args or {}))

    # -- views -----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def by_trace(self, trace_id: str) -> List[Span]:
        """Every span/event tagged with one record's trace id — the causal
        chain across repartition and changelog hops."""
        return [s for s in self.spans if s.args.get("trace") == trace_id]

    def reset(self) -> None:
        """Drop recorded spans (keeps `enabled` and the trace-id counter)."""
        self.spans.clear()


class _NoopHandle:
    """Shared do-nothing span handle returned while tracing is disabled."""

    __slots__ = ()

    def add(self, **args: Any) -> None:
        pass

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NoopHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NOOP_HANDLE = _NoopHandle()

# Shared disabled tracer for components constructed without a cluster
# (standalone Driver/Network instances in unit tests). Never enable it —
# it has no clock, so everything would stamp at t=0.
NOOP_TRACER = Tracer(clock=None, enabled=False)
