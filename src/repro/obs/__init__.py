"""Observability over virtual time: tracing, telemetry, exporters.

See :mod:`repro.obs.tracer` for the span model, :mod:`repro.obs.stages`
for the per-stage latency decomposition, :mod:`repro.obs.telemetry` for
interval sampling, :mod:`repro.obs.watermarks` for committed lag and the
completeness frontier, :mod:`repro.obs.health` for the SLO engine and
burn-rate alerting, :mod:`repro.obs.export` for the JSONL /
Chrome-trace / summary exporters, :mod:`repro.obs.prometheus` for text
exposition, :mod:`repro.obs.report` for single-file health reports, and
:mod:`repro.obs.debug` for failure debug bundles.
"""

from repro.obs.debug import dump_debug_bundle
from repro.obs.health import (
    PAGE,
    WARN,
    Alert,
    BurnRateWindow,
    HealthMonitor,
    SLO,
    default_slos,
)
from repro.obs.recovery import PHASES as RECOVERY_PHASES, RecoveryTracker
from repro.obs.export import (
    chrome_trace,
    run_summary,
    span_log_lines,
    write_chrome_trace,
    write_span_log,
)
from repro.obs.prometheus import prometheus_text, write_prometheus_text
from repro.obs.report import (
    health_report,
    render_health_html,
    report_json,
    write_health_report,
)
from repro.obs.stages import (
    EMITTED_AT_HEADER,
    FETCHED_AT_HEADER,
    PROCESSED_AT_HEADER,
    STAGES,
    StageLatencyTracker,
)
from repro.obs.telemetry import TelemetryReporter
from repro.obs.tracer import NOOP_TRACER, Span, TRACE_ID_HEADER, Tracer
from repro.obs.watermarks import COMPLETE, WatermarkTracker, partition_frontier

__all__ = [
    "NOOP_TRACER",
    "Span",
    "TRACE_ID_HEADER",
    "Tracer",
    "chrome_trace",
    "run_summary",
    "span_log_lines",
    "write_chrome_trace",
    "write_span_log",
    "EMITTED_AT_HEADER",
    "FETCHED_AT_HEADER",
    "PROCESSED_AT_HEADER",
    "STAGES",
    "RECOVERY_PHASES",
    "RecoveryTracker",
    "StageLatencyTracker",
    "TelemetryReporter",
    "dump_debug_bundle",
    "COMPLETE",
    "WatermarkTracker",
    "partition_frontier",
    "PAGE",
    "WARN",
    "Alert",
    "BurnRateWindow",
    "HealthMonitor",
    "SLO",
    "default_slos",
    "prometheus_text",
    "write_prometheus_text",
    "health_report",
    "render_health_html",
    "report_json",
    "write_health_report",
]
