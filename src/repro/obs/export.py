"""Trace exporters: JSONL span log, Chrome trace-event JSON, run summary.

Three views of one :class:`~repro.obs.tracer.Tracer`:

* :func:`span_log_lines` / :func:`write_span_log` — one JSON object per
  span, keys sorted, compact separators. Deterministic runs produce
  byte-identical logs, so a span log can be diffed across seeds or used as
  a golden file.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (JSON object with a ``traceEvents`` array), loadable
  in Perfetto (https://ui.perfetto.dev) or chrome://tracing. Component
  names (``broker-0``, ``streams-bench``, ``txn-coordinator``) become
  processes, their lanes (topic-partitions, tasks, RPC kinds) become
  threads, named via ``M``-phase metadata events.
* :func:`run_summary` — a plain-text digest: top span names by total
  virtual time, event counts per category, and (when given) the metrics
  registry and per-stage latency breakdown.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.tracer import Span, Tracer

# Virtual milliseconds -> trace-event microseconds.
_US_PER_MS = 1000.0


def _dumps(obj: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace — byte-stable output."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


# -- JSONL span log --------------------------------------------------------------------


def span_log_lines(tracer: Tracer) -> List[str]:
    """The span log as canonical-JSON lines (append order)."""
    return [_dumps(span.to_dict()) for span in tracer.spans]


def write_span_log(tracer: Tracer, path: str) -> str:
    with open(path, "w") as f:
        for line in span_log_lines(tracer):
            f.write(line)
            f.write("\n")
    return path


# -- Chrome trace-event JSON ------------------------------------------------------------


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Convert spans to the Chrome trace-event format.

    pid/tid must be integers in the format; names are assigned stable ids
    in order of first appearance and labelled with ``process_name`` /
    ``thread_name`` metadata events.
    """
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []

    def pid_of(name: str) -> int:
        pid = pids.get(name)
        if pid is None:
            pid = len(pids) + 1
            pids[name] = pid
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": name},
                }
            )
        return pid

    def tid_of(pid: int, name: str) -> int:
        key = (pid, name)
        tid = tids.get(key)
        if tid is None:
            tid = sum(1 for p, _ in tids if p == pid) + 1
            tids[key] = tid
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": name},
                }
            )
        return tid

    for span in tracer.spans:
        pid = pid_of(span.pid)
        tid = tid_of(pid, span.tid)
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category or "default",
            "pid": pid,
            "tid": tid,
            "ts": span.start_ms * _US_PER_MS,
        }
        if span.is_instant:
            event["ph"] = "i"
            event["s"] = "t"            # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = span.duration_ms * _US_PER_MS
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    with open(path, "w") as f:
        f.write(_dumps(chrome_trace(tracer)))
    return path


# -- plain-text run summary --------------------------------------------------------------


def run_summary(
    tracer: Tracer,
    registry: Optional[Any] = None,
    stages: Optional[Any] = None,
    top: int = 12,
) -> str:
    """Digest of a run: top spans by total virtual time, category counts,
    optional metrics snapshot and per-stage latency breakdown.

    ``registry`` duck-types :class:`~repro.metrics.registry.MetricsRegistry`
    (``counters()``/``gauges()``/``histograms()``); ``stages`` duck-types
    :class:`~repro.obs.stages.StageLatencyTracker` (``breakdown()``).
    """
    from repro.metrics.reporter import format_table

    sections: List[str] = []

    totals: Dict[str, List[float]] = {}
    for span in tracer.spans:
        entry = totals.setdefault(span.name, [0, 0.0])
        entry[0] += 1
        entry[1] += span.duration_ms
    by_total = sorted(totals.items(), key=lambda kv: (-kv[1][1], kv[0]))
    rows = [
        [name, int(count), round(total, 3)]
        for name, (count, total) in by_total[:top]
    ]
    sections.append("== Top spans by total virtual time ==")
    sections.append(format_table(["span", "count", "total (ms)"], rows))

    categories: Dict[str, int] = {}
    for span in tracer.spans:
        cat = span.category or "default"
        categories[cat] = categories.get(cat, 0) + 1
    sections.append("")
    sections.append("== Span/event counts by category ==")
    sections.append(
        format_table(
            ["category", "count"],
            [[cat, n] for cat, n in sorted(categories.items())],
        )
    )

    if stages is not None:
        breakdown = stages.breakdown()
        if breakdown:
            sections.append("")
            sections.append("== End-to-end latency by stage (mean ms) ==")
            rows = [[stage, round(mean, 3)] for stage, mean in breakdown.items()]
            rows.append(["(stage sum)", round(sum(breakdown.values()), 3)])
            rows.append(["(e2e mean)", round(stages.mean_ms(), 3)])
            sections.append(format_table(["stage", "mean (ms)"], rows))

    if registry is not None:
        counters = registry.counters()
        if counters:
            sections.append("")
            sections.append("== Counters ==")
            sections.append(
                format_table(
                    ["counter", "value"], [[k, v] for k, v in counters.items()]
                )
            )
        gauges = getattr(registry, "gauges", lambda: {})()
        if gauges:
            sections.append("")
            sections.append("== Gauges ==")
            sections.append(
                format_table(
                    ["gauge", "value"], [[k, v] for k, v in gauges.items()]
                )
            )
        histograms = registry.histograms()
        if histograms:
            sections.append("")
            sections.append("== Histograms ==")
            rows = [
                [name, int(snap["count"]), round(snap["mean"], 3),
                 round(snap["p99"], 3)]
                for name, snap in histograms.items()
            ]
            sections.append(format_table(["histogram", "count", "mean", "p99"], rows))

    return "\n".join(sections)
