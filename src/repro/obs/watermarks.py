"""Completeness watermarks: how far behind is the app, and up to which
event time is its output complete?

Two live signals, both recomputable from the partition logs alone (the
property the chaos ground-truth checks exploit):

* **Committed lag** — per input partition, the distance from the group's
  *committed* offset to the partition's visible end (LSO under
  read-committed, HW otherwise). Committed — not fetched — because under
  EOS the offset commit rides the same transaction as the output records:
  a committed offset means the corresponding output is durably visible.

* **Completeness frontier** — the event-time low watermark of the
  *uncommitted remainder*: the minimum record timestamp at offsets in
  ``[committed, visible end)`` across every input partition of the
  topology's upstream cone. Output is complete up to (exclusive of) that
  timestamp: every earlier event has been processed *and committed*.
  A fully caught-up cone reports ``float("inf")`` — complete through
  everything produced so far. The frontier is **not** monotone: a late
  record appended behind the watermark (within the out-of-order grace the
  paper's Section 2 permits) legitimately pulls it back.

Propagation is min-merge. A repartition topic is both a sink (of the
upstream sub-topology) and a source (of the downstream one); a record can
be committed upstream yet still pending in the repartition log, so a
store's frontier merges its own sub-topology's source partitions with
every transitively-upstream sub-topology's — the ``source → repartition →
changelog → sink`` chain collapses to "min over the upstream cone's input
partitions". Changelogs need no separate term: a store write commits
atomically with its input offsets, so the cone's inputs already bound it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.broker.fetch import fetch
from repro.broker.partition import TopicPartition
from repro.config import READ_COMMITTED, READ_UNCOMMITTED

#: Frontier value of a fully caught-up cone: complete through every event
#: produced so far.
COMPLETE = float("inf")


def partition_frontier(log, committed: Optional[int], isolation: str) -> float:
    """Min event timestamp of the committed-pending records of one log.

    ``committed`` is the group's committed offset (None = never committed,
    i.e. everything from ``log_start_offset`` is pending). The scan uses
    the same ``fetch`` the consumers use, so markers and (under
    read-committed) aborted spans are excluded exactly as a consumer would
    exclude them — an aborted record never becomes output, so it never
    holds the frontier back.
    """
    from_offset = log.log_start_offset if committed is None else committed
    from_offset = max(from_offset, log.log_start_offset)
    if from_offset >= log.last_stable_offset and isolation == READ_COMMITTED:
        return COMPLETE
    if from_offset >= log.high_watermark:
        return COMPLETE
    result = fetch(log, from_offset, 2**31, isolation)
    if not result.records:
        return COMPLETE
    return min(r.timestamp for r in result.records)  # lint: allow-record-loop


class WatermarkTracker:
    """Per-app lag and completeness-frontier computation.

    Reads committed offsets through the group coordinator (the
    read-committed replay of the offsets topic — what an external
    observer would see) and partition ends from the leader logs. Results
    are memoized per virtual-clock instant: within one scheduler safe
    point the logs cannot change, so the IQ layer can serve the frontier
    per query without re-scanning per query.
    """

    def __init__(self, app) -> None:
        self.app = app
        self.cluster = app.cluster
        self.isolation = (
            READ_COMMITTED if app.config.eos_enabled else READ_UNCOMMITTED
        )
        # sub_id -> input partitions of that sub-topology's upstream cone.
        self._cones: Dict[int, List[TopicPartition]] = {}
        self._all_inputs: Optional[List[TopicPartition]] = None
        # Memo for one clock instant: (now) -> state shared by all calls.
        self._memo_at = float("nan")
        self._memo_committed: Dict[TopicPartition, Optional[int]] = {}
        self._memo_frontier: Dict[Optional[str], float] = {}
        self._memo_lags: Optional[Dict[TopicPartition, int]] = None

    # -- topology cones ----------------------------------------------------------------

    def input_partitions(self, store: Optional[str] = None) -> List[TopicPartition]:
        """The input partitions whose progress bounds ``store`` (or, with
        ``None``, the whole app): the upstream cone's source partitions."""
        if store is None:
            if self._all_inputs is None:
                self._all_inputs = self._partitions_of(
                    sorted(self.app.all_source_topics)
                )
            return self._all_inputs
        sub_id = self.app.sub_id_for_store(store)
        if sub_id is None:
            raise KeyError(f"unknown store: {store!r}")
        cone = self._cones.get(sub_id)
        if cone is None:
            cone = self._partitions_of(sorted(self._cone_topics(sub_id)))
            self._cones[sub_id] = cone
        return cone

    def _cone_topics(self, sub_id: int) -> Set[str]:
        """Resolved source topics of ``sub_id`` plus, transitively, of
        every sub-topology feeding its repartition inputs."""
        app = self.app
        producers: Dict[str, List[int]] = {}
        for sub in app._sub_topologies.values():
            for topic in sub.sink_topics:
                resolved = app.resolve_topic(topic)
                if app.is_repartition_topic(resolved):
                    producers.setdefault(resolved, []).append(sub.sub_id)
        topics: Set[str] = set()
        frontier = [sub_id]
        seen = set()
        while frontier:
            sid = frontier.pop()
            if sid in seen:
                continue
            seen.add(sid)
            for topic in app.sub_topology(sid).source_topics:
                resolved = app.resolve_topic(topic)
                topics.add(resolved)
                for upstream in producers.get(resolved, ()):
                    frontier.append(upstream)
        return topics

    def _partitions_of(self, topics: List[str]) -> List[TopicPartition]:
        return [
            tp
            for topic in topics
            for tp in self.cluster.partitions_for(topic)
        ]

    # -- per-instant memo --------------------------------------------------------------

    def _refresh_memo(self) -> None:
        now = self.cluster.clock.now
        if self._memo_at == now:
            return
        self._memo_at = now
        self._memo_frontier = {}
        self._memo_lags = None
        self._memo_committed = self.cluster.group_coordinator.fetch_committed(
            self.app.config.application_id, self.input_partitions()
        )

    def committed_offsets(self) -> Dict[TopicPartition, Optional[int]]:
        """The group's committed offset per input partition (this instant)."""
        self._refresh_memo()
        return dict(self._memo_committed)

    # -- lag ---------------------------------------------------------------------------

    def lags(self) -> Dict[TopicPartition, int]:
        """Committed-offset vs visible-end lag per input partition."""
        self._refresh_memo()
        if self._memo_lags is None:
            lags: Dict[TopicPartition, int] = {}
            for tp in self.input_partitions():
                try:
                    end = self.cluster.end_offset(tp, self.isolation)
                    start = self.cluster.partition_state(tp).leader_log().log_start_offset
                except Exception:
                    # Leaderless partition mid-fault: carry the last value
                    # forward by reporting nothing for this tp this tick.
                    continue
                committed = self._memo_committed.get(tp)
                base = start if committed is None else max(committed, start)
                lags[tp] = max(0, end - base)
            self._memo_lags = lags
        return dict(self._memo_lags)

    def total_lag(self) -> int:
        return sum(self.lags().values())

    # -- frontier ----------------------------------------------------------------------

    def frontier(self, store: Optional[str] = None) -> float:
        """The completeness frontier of ``store`` (or the whole app).

        ``float("inf")`` (:data:`COMPLETE`) means the cone is fully
        committed: output is complete through everything produced.
        """
        self._refresh_memo()
        cached = self._memo_frontier.get(store)
        if cached is not None:
            return cached
        value = COMPLETE
        for tp in self.input_partitions(store):
            try:
                log = self.cluster.partition_state(tp).leader_log()
            except Exception:
                continue
            f = partition_frontier(
                log, self._memo_committed.get(tp), self.isolation
            )
            if f < value:
                value = f
        self._memo_frontier[store] = value
        return value

    # -- gauges ------------------------------------------------------------------------

    def update_gauges(self) -> None:
        """Publish lag and frontier gauges into the cluster registry.

        ``streams.lag{app,topic,partition}`` per input partition,
        ``streams.frontier{app}`` for the app cone, and
        ``streams.frontier{app,store}`` per store.
        """
        metrics = self.cluster.metrics
        app_id = self.app.config.application_id
        for tp, lag in self.lags().items():
            metrics.gauge(
                "streams.lag", app=app_id, topic=tp.topic, partition=tp.partition
            ).set(lag)
        metrics.gauge("streams.frontier", app=app_id).set(self.frontier())
        for sub in self.app._sub_topologies.values():
            for spec in sub.stores:
                metrics.gauge(
                    "streams.frontier", app=app_id, store=spec.name
                ).set(self.frontier(spec.name))
