"""Streaming SLO engine: declarative objectives, burn-rate alerts.

The :class:`HealthMonitor` is a Driver actor that, on a fixed virtual-time
interval, (1) refreshes the live health gauges — per-partition committed
lag and completeness frontiers via :class:`~repro.obs.watermarks.
WatermarkTracker`, per-task processing rates, and a small set of derived
*indicator* gauges — (2) takes one :class:`~repro.obs.telemetry.
TelemetryReporter` sample, and (3) evaluates every :class:`SLO` against
the sampled indicator series with multi-window burn-rate alerting.

Burn rate is the SRE-workbook quantity scaled to virtual milliseconds:
with an objective of healthy-sample fraction ``objective``, the error
budget is ``1 - objective`` and the burn over a window is
``breached-sample fraction / budget``. An alert fires at a window's
severity when the burn meets its factor over **both** the long and the
short window — the long window gives significance, the short one makes
the alert stop quickly once the condition clears (the classic
multi-window, multi-burn-rate page/warn setup, compressed from hours to
the simulator's milliseconds).

Fired and resolved alerts are mirrored as tracer instants (category
``alert``), so they land on the Perfetto timeline next to the chaos
faults that caused them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.registry import labeled_name
from repro.obs.telemetry import TelemetryReporter
from repro.obs.watermarks import COMPLETE, WatermarkTracker

PAGE = "page"
WARN = "warn"
SEVERITIES = (PAGE, WARN)


@dataclass(frozen=True)
class BurnRateWindow:
    """One (severity, factor, long, short) rung of the alerting ladder."""

    severity: str
    factor: float
    long_ms: float
    short_ms: float

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}")
        if self.factor <= 0:
            raise ValueError("factor must be > 0")
        if not 0 < self.short_ms <= self.long_ms:
            raise ValueError("windows must satisfy 0 < short_ms <= long_ms")


#: Page on a fast, severe burn; warn on a slower, sustained one. Scaled to
#: the chaos runs' timescales (fault windows of 150-600ms, 20ms sampling).
DEFAULT_WINDOWS: Tuple[BurnRateWindow, ...] = (
    BurnRateWindow(PAGE, factor=6.0, long_ms=240.0, short_ms=80.0),
    BurnRateWindow(WARN, factor=2.0, long_ms=720.0, short_ms=240.0),
)


@dataclass(frozen=True)
class SLO:
    """A declarative objective over one health indicator.

    The indicator is healthy when ``value <= threshold`` (or ``>=`` with
    ``comparison="ge"``); ``objective`` is the target fraction of healthy
    samples, so the error budget is ``1 - objective``.
    """

    name: str
    indicator: str
    threshold: float
    comparison: str = "le"
    objective: float = 0.9
    windows: Tuple[BurnRateWindow, ...] = DEFAULT_WINDOWS
    description: str = ""

    def __post_init__(self) -> None:
        if self.comparison not in ("le", "ge"):
            raise ValueError("comparison must be 'le' or 'ge'")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if not self.windows:
            raise ValueError("at least one burn-rate window is required")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective

    def breached(self, value: float) -> bool:
        if self.comparison == "le":
            return value > self.threshold
        return value < self.threshold


def default_slos(
    max_lag_records: float = 500.0,
    max_frontier_stall_ms: float = 150.0,
    max_fetch_rtt_ms: float = 4.0,
    max_failure_ratio: float = 0.0,
    max_recovery_gap_ms: float = 1_500.0,
    max_mirror_lag_records: float = 500.0,
) -> Tuple[SLO, ...]:
    """The stock objectives: freshness, lag, strong-read availability,
    fetch latency, recovery-gap duration, mirror replication lag."""
    return (
        SLO(
            "freshness",
            indicator="frontier_stall_ms",
            threshold=max_frontier_stall_ms,
            description=(
                "the completeness frontier keeps advancing while there is "
                "backlog (output freshness)"
            ),
        ),
        SLO(
            "consumer-lag",
            indicator="max_partition_lag",
            threshold=max_lag_records,
            description="no input partition's committed lag exceeds the bound",
        ),
        SLO(
            "fetch-latency",
            indicator="max_fetch_rtt_ms",
            threshold=max_fetch_rtt_ms,
            description="client-observed fetch round trips stay fast (gray brokers)",
        ),
        SLO(
            "strong-read-availability",
            indicator="strong_read_failure_ratio",
            threshold=max_failure_ratio,
            description="interactive queries keep succeeding",
        ),
        SLO(
            "recovery-gap",
            indicator="recovery_gap_ms",
            threshold=max_recovery_gap_ms,
            description="no open fault stays unrecovered past the bound",
        ),
        SLO(
            "mirror-replication",
            indicator="max_mirror_lag",
            threshold=max_mirror_lag_records,
            description=(
                "cross-cluster mirrors keep up with their sources "
                "(per-link replication lag stays bounded)"
            ),
        ),
    )


@dataclass
class Alert:
    """One fired alert: a contiguous run of a breached SLO condition."""

    slo: str
    severity: str
    fired_at: float
    resolved_at: Optional[float] = None
    peak_burn: float = 0.0
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    def overlaps(self, start: float, end: float, slack_ms: float = 0.0) -> bool:
        """True if this alert's active interval intersects
        ``[start, end + slack_ms]`` — the slack absorbs detection latency
        (stall thresholds plus the burn windows)."""
        alert_end = self.resolved_at if self.resolved_at is not None else float("inf")
        return self.fired_at <= end + slack_ms and alert_end >= start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "severity": self.severity,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "peak_burn": round(self.peak_burn, 3),
            "details": dict(self.details),
        }


#: Indicator gauge name; one labeled gauge per indicator.
INDICATOR_GAUGE = "health.indicator"


class HealthMonitor:
    """Driver actor: health gauges + telemetry sampling + SLO evaluation.

    Registered on the same driver as the apps (after them, so each tick
    observes the instant's settled state). Sampling rides ``poll()`` at
    actor safe points and never schedules future work, so an
    otherwise-idle simulation still terminates — the same housekeeping
    contract as :class:`~repro.obs.telemetry.TelemetryReporter` and the
    chaos controller's invariant checks.
    """

    def __init__(
        self,
        cluster,
        apps: Optional[List[Any]] = None,
        slos: Optional[Tuple[SLO, ...]] = None,
        interval_ms: float = 20.0,
        max_samples: Optional[int] = 4096,
        name: str = "health",
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.cluster = cluster
        self.clock = cluster.clock
        self.apps = list(apps or [])
        self.slos = tuple(slos if slos is not None else default_slos())
        names = [s.name for s in self.slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self.interval_ms = interval_ms
        self.name = name
        self.trackers: Dict[Any, WatermarkTracker] = {
            app: WatermarkTracker(app) for app in self.apps
        }
        # The SLO engine's sample store *is* a TelemetryReporter ring
        # buffer; burn rates are computed through its series() API.
        self.telemetry = TelemetryReporter(
            self.clock,
            {"cluster": cluster.metrics},
            interval_ms=interval_ms,
            name=f"{name}-telemetry",
            max_samples=max_samples,
        )
        self.alerts: List[Alert] = []
        self._active: Dict[str, Alert] = {}
        self.ticks = 0
        self._last_tick_ms = float("-inf")
        # Rate bookkeeping: (app_id, task) -> (last_count, last_ts).
        self._task_counts: Dict[Tuple[str, str], Tuple[int, float]] = {}
        # Strong-read failure deltas.
        self._iq_last = (0.0, 0.0)
        # Frontier-advance bookkeeping per app for the freshness indicator.
        self._frontier_state: Dict[str, Tuple[float, float]] = {}

    # -- installation -------------------------------------------------------------------

    def install(self) -> "HealthMonitor":
        """Hang this monitor off the cluster (``cluster.health``) so debug
        bundles can attach the health report on invariant violations."""
        self.cluster.health = self
        return self

    def uninstall(self) -> None:
        if getattr(self.cluster, "health", None) is self:
            self.cluster.health = None

    # -- Driver actor protocol ----------------------------------------------------------

    def poll(self) -> int:
        if self.clock.now - self._last_tick_ms >= self.interval_ms:
            self.tick()
        return 0

    # -- one evaluation tick ------------------------------------------------------------

    def tick(self) -> None:
        """Refresh gauges, sample, evaluate — once, at this instant."""
        now = self.clock.now
        self._last_tick_ms = now
        self.ticks += 1
        for app, tracker in self.trackers.items():
            tracker.update_gauges()
            self._update_task_rates(app)
        self._update_indicators()
        self.telemetry.sample()
        self._evaluate()

    # -- gauges -------------------------------------------------------------------------

    def _update_task_rates(self, app) -> None:
        """Per-task processing rate (records per virtual second) from
        deltas of the tasks' ``records_processed`` counters."""
        metrics = self.cluster.metrics
        now = self.clock.now
        app_id = app.config.application_id
        counts: Dict[str, int] = {}
        for instance in app.instances:
            for task_id, task in instance.tasks.items():
                key = repr(task_id)
                counts[key] = counts.get(key, 0) + task.records_processed
        for key, count in sorted(counts.items()):
            last_count, last_ts = self._task_counts.get((app_id, key), (0, now))
            elapsed = now - last_ts
            if elapsed > 0:
                # A migrated task restarts its counter; clamp at zero so a
                # handover never reads as negative throughput.
                delta = max(0, count - last_count)
                rate = delta / (elapsed / 1000.0)
                metrics.gauge("streams.task_rate", app=app_id, task=key).set(
                    round(rate, 3)
                )
            self._task_counts[(app_id, key)] = (count, now)

    def _update_indicators(self) -> None:
        now = self.clock.now
        set_indicator = self._set_indicator

        max_lag = 0
        for tracker in self.trackers.values():
            lags = tracker.lags()
            if lags:
                max_lag = max(max_lag, max(lags.values()))
        set_indicator("max_partition_lag", float(max_lag))

        # Freshness: time since the app frontier last advanced, while
        # backlog exists. A caught-up or advancing frontier is fresh.
        stall = 0.0
        for app, tracker in self.trackers.items():
            app_id = app.config.application_id
            frontier = tracker.frontier()
            lag = tracker.total_lag()
            prev = self._frontier_state.get(app_id)
            if prev is None or frontier != prev[0] or lag == 0:
                self._frontier_state[app_id] = (frontier, now)
            else:
                stall = max(stall, now - prev[1])
        set_indicator("frontier_stall_ms", stall)

        # Client-observed fetch RTT: max over the consumers' EWMA gauges.
        rtt = 0.0
        prefix = "consumer.fetch_rtt_ms{"
        for key, value in self.cluster.metrics.gauges().items():
            if key.startswith(prefix):
                rtt = max(rtt, value)
        set_indicator("max_fetch_rtt_ms", round(rtt, 6))

        # Strong-read availability: failure fraction of the queries issued
        # since the last tick (0.0 when no queries were issued).
        counters = self.cluster.metrics.counters()
        queries = counters.get("iq.queries", 0)
        failures = counters.get("iq.failures", 0)
        last_q, last_f = self._iq_last
        dq, df = queries - last_q, failures - last_f
        self._iq_last = (queries, failures)
        set_indicator(
            "strong_read_failure_ratio", (df / dq) if dq > 0 else 0.0
        )

        # Cross-cluster replication: worst per-partition mirror lag and
        # offset-translation gap, scanned from the gauges MirrorLink
        # refreshes in its target cluster's registry. Zero when this
        # cluster is not the target of any mirror — the SLO then never
        # breaches, so federated and single-cluster runs share one stock
        # SLO set.
        mirror_lag = 0.0
        mirror_gap = 0.0
        for key, value in self.cluster.metrics.gauges().items():
            if key.startswith("mirror.lag{"):
                mirror_lag = max(mirror_lag, value)
            elif key.startswith("mirror.translation_gap{"):
                mirror_gap = max(mirror_gap, value)
        set_indicator("max_mirror_lag", mirror_lag)
        set_indicator("max_translation_gap", mirror_gap)

        # Recovery gap: how long the oldest unrecovered fault has been open.
        gap = 0.0
        rec = self.cluster.recovery
        if rec is not None and rec.fault_at is not None and rec.recovered_at is None:
            gap = now - rec.fault_at
        set_indicator("recovery_gap_ms", gap)

    def _set_indicator(self, indicator: str, value: float) -> None:
        self.cluster.metrics.gauge(INDICATOR_GAUGE, indicator=indicator).set(value)

    def indicator_series(self, indicator: str, since_ms: Optional[float] = None):
        """The sampled ``(ts, value)`` series of one indicator."""
        return self.telemetry.series(
            "cluster",
            "gauges",
            labeled_name(INDICATOR_GAUGE, {"indicator": indicator}),
            since_ms=since_ms,
        )

    # -- SLO evaluation -----------------------------------------------------------------

    def _burn(self, slo: SLO, window_ms: float) -> float:
        now = self.clock.now
        points = self.indicator_series(slo.indicator, since_ms=now - window_ms)
        if not points:
            return 0.0
        breached = sum(1 for _, value in points if slo.breached(value))
        return (breached / len(points)) / slo.budget

    def _evaluate(self) -> None:
        now = self.clock.now
        metrics = self.cluster.metrics
        tracer = self.cluster.tracer
        for slo in self.slos:
            severity = None
            burn_seen = 0.0
            for window in slo.windows:
                long_burn = self._burn(slo, window.long_ms)
                short_burn = self._burn(slo, window.short_ms)
                burn = min(long_burn, short_burn)
                burn_seen = max(burn_seen, burn)
                if long_burn >= window.factor and short_burn >= window.factor:
                    severity = window.severity
                    break
            metrics.gauge("health.burn_rate", slo=slo.name).set(
                round(burn_seen, 3)
            )
            active = self._active.get(slo.name)
            if severity is not None:
                if active is None:
                    alert = Alert(
                        slo=slo.name,
                        severity=severity,
                        fired_at=now,
                        peak_burn=burn_seen,
                        details={"indicator": slo.indicator},
                    )
                    self._active[slo.name] = alert
                    self.alerts.append(alert)
                    metrics.counter(
                        "health.alerts_fired", slo=slo.name, severity=severity
                    ).increment()
                    if tracer.enabled:
                        tracer.event(
                            "alert.fired", "health", slo.name,
                            category="alert", slo=slo.name, severity=severity,
                            burn=round(burn_seen, 3),
                        )
                else:
                    active.peak_burn = max(active.peak_burn, burn_seen)
                    if severity == PAGE and active.severity == WARN:
                        # Escalate in place: one incident, highest severity.
                        active.severity = PAGE
                        metrics.counter(
                            "health.alerts_fired", slo=slo.name, severity=PAGE
                        ).increment()
                        if tracer.enabled:
                            tracer.event(
                                "alert.escalated", "health", slo.name,
                                category="alert", slo=slo.name, severity=PAGE,
                            )
            elif active is not None:
                active.resolved_at = now
                del self._active[slo.name]
                if tracer.enabled:
                    tracer.event(
                        "alert.resolved", "health", slo.name,
                        category="alert", slo=slo.name,
                        severity=active.severity,
                        duration_ms=round(now - active.fired_at, 3),
                    )

    # -- reporting ----------------------------------------------------------------------

    def active_alerts(self) -> List[Alert]:
        return [self._active[name] for name in sorted(self._active)]

    def fired_alerts(self, severity: Optional[str] = None) -> List[Alert]:
        if severity is None:
            return list(self.alerts)
        return [a for a in self.alerts if a.severity == severity]

    def unexpected_alerts(
        self,
        fault_windows: List[Tuple[float, float, str]],
        slack_ms: float = 600.0,
    ) -> List[Alert]:
        """Alerts that overlap none of the given fault windows — the
        false-positive check for scenario runs (zero expected)."""
        out = []
        for alert in self.alerts:
            if not any(
                alert.overlaps(start, end, slack_ms=slack_ms)
                for start, end, _ in fault_windows
            ):
                out.append(alert)
        return out

    def uncovered_windows(
        self,
        fault_windows: List[Tuple[float, float, str]],
        slack_ms: float = 600.0,
    ) -> List[Tuple[float, float, str]]:
        """Fault windows no alert overlaps — the false-negative check for
        chaos runs (zero expected)."""
        out = []
        for start, end, label in fault_windows:
            if not any(
                alert.overlaps(start, end, slack_ms=slack_ms)
                for alert in self.alerts
            ):
                out.append((start, end, label))
        return out

    def slo_status(self) -> List[Dict[str, Any]]:
        """Per-SLO summary for the health report."""
        out = []
        for slo in self.slos:
            fired = [a for a in self.alerts if a.slo == slo.name]
            out.append(
                {
                    "name": slo.name,
                    "indicator": slo.indicator,
                    "threshold": slo.threshold,
                    "comparison": slo.comparison,
                    "objective": slo.objective,
                    "description": slo.description,
                    "alerts": len(fired),
                    "pages": sum(1 for a in fired if a.severity == PAGE),
                    "active": any(a.active for a in fired),
                    "status": "breaching" if any(a.active for a in fired)
                    else ("alerted" if fired else "ok"),
                }
            )
        return out

    def completeness(self) -> Dict[str, Any]:
        """Per-app frontier/lag snapshot (this instant)."""
        out: Dict[str, Any] = {}
        for app, tracker in self.trackers.items():
            frontier = tracker.frontier()
            out[app.config.application_id] = {
                "frontier": None if frontier == COMPLETE else frontier,
                "total_lag": tracker.total_lag(),
                "lags": {
                    repr(tp): lag for tp, lag in sorted(tracker.lags().items())
                },
            }
        return out
