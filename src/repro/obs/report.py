"""Single-file health reports: one JSON + one HTML per run.

:func:`health_report` folds a :class:`~repro.obs.health.HealthMonitor`
into a plain dict — SLO status, every fired alert, the lag / frontier /
task-rate / indicator timelines (read back through the telemetry ring
buffer), a completeness snapshot, and optionally the chaos fault
timeline. :func:`render_health_html` turns that dict into a dependency-
free single-file HTML page (inline CSS, inline SVG sparklines) so a CI
artifact or a chaos debug bundle is viewable with nothing but a browser.

Everything is virtual-time; the JSON is canonical (sorted keys, compact
separators, infinities mapped to null before serialization), so two
same-seed runs produce **byte-identical** reports — the determinism the
chaos tests assert.
"""

from __future__ import annotations

import html as _html
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.registry import labeled_name
from repro.obs.health import INDICATOR_GAUGE, HealthMonitor

_INF = float("inf")


def _clean(value: Any) -> Any:
    """Strict-JSON scrub: infinities and NaN become null, recursively."""
    if isinstance(value, float):
        if value != value or value in (_INF, -_INF):
            return None
        return value
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    return value


def _series_map(monitor: HealthMonitor, prefix: str) -> Dict[str, List[Tuple[float, float]]]:
    """Every sampled gauge series whose registry key starts with ``prefix``."""
    keys = set()
    for sample in monitor.telemetry.samples:
        registry = sample["registries"].get("cluster")
        if registry is None:
            continue
        keys.update(k for k in registry["gauges"] if k.startswith(prefix))
    return {
        key: monitor.telemetry.series("cluster", "gauges", key)
        for key in sorted(keys)
    }


def health_report(
    monitor: HealthMonitor,
    label: str = "run",
    fault_timeline: Optional[List[Any]] = None,
) -> Dict[str, Any]:
    """The report as a JSON-ready dict (virtual-time only)."""
    report: Dict[str, Any] = {
        "label": label,
        "generated_at_ms": monitor.clock.now,
        "interval_ms": monitor.interval_ms,
        "ticks": monitor.ticks,
        "apps": sorted(
            app.config.application_id for app in monitor.apps
        ),
        "slos": monitor.slo_status(),
        "alerts": [alert.to_dict() for alert in monitor.alerts],
        "completeness": monitor.completeness(),
        "timelines": {
            "lag": _series_map(monitor, "streams.lag{"),
            "frontier": _series_map(monitor, "streams.frontier{"),
            "task_rate": _series_map(monitor, "streams.task_rate{"),
            "consumer_lag": _series_map(monitor, "consumer.lag{"),
            "indicators": {
                indicator: monitor.telemetry.series(
                    "cluster",
                    "gauges",
                    labeled_name(INDICATOR_GAUGE, {"indicator": indicator}),
                )
                for indicator in sorted(
                    {slo.indicator for slo in monitor.slos}
                )
            },
            "burn_rate": _series_map(monitor, "health.burn_rate{"),
        },
    }
    if fault_timeline is not None:
        report["fault_timeline"] = [
            [ts, str(desc)] for ts, desc in fault_timeline
        ]
    return _clean(report)


def report_json(report: Dict[str, Any]) -> str:
    """Canonical serialization — the byte-identity surface."""
    return json.dumps(
        report, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


# -- HTML rendering ---------------------------------------------------------------------

_PAGE_CSS = """
body{font-family:ui-monospace,Menlo,Consolas,monospace;margin:1.5em;
     background:#fafafa;color:#222}
h1{font-size:1.3em}h2{font-size:1.05em;margin-top:1.6em}
table{border-collapse:collapse;margin:.5em 0}
td,th{border:1px solid #ccc;padding:.25em .6em;text-align:left;
      font-size:.85em}
th{background:#eee}
.ok{color:#1a7f37}.alerted{color:#9a6700}.breaching{color:#cf222e}
.page{color:#cf222e;font-weight:bold}.warn{color:#9a6700}
.spark{vertical-align:middle}
.meta{color:#666;font-size:.85em}
"""


def _sparkline(points: List[Tuple[float, Optional[float]]],
               width: int = 180, height: int = 28) -> str:
    """An inline SVG polyline of one series (nulls drawn at the top)."""
    finite = [v for _, v in points if v is not None]
    if not points or not finite:
        return '<span class="meta">no data</span>'
    t0 = points[0][0]
    t1 = points[-1][0]
    span_t = (t1 - t0) or 1.0
    lo = min(finite)
    hi = max(finite)
    span_v = (hi - lo) or 1.0
    coords = []
    for ts, value in points:
        x = (ts - t0) / span_t * (width - 2) + 1
        v = hi if value is None else value
        y = height - 1 - (v - lo) / span_v * (height - 2)
        coords.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg class="spark" width="{width}" height="{height}">'
        f'<polyline fill="none" stroke="#0969da" stroke-width="1" '
        f'points="{" ".join(coords)}"/></svg>'
    )


def _fmt(value: Any) -> str:
    if value is None:
        return "∞"
    if isinstance(value, float):
        return f"{value:g}"
    return _html.escape(str(value))


def render_health_html(report: Dict[str, Any]) -> str:
    """The report dict as one self-contained HTML page."""
    e = _html.escape
    out: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>health report — {e(str(report['label']))}</title>",
        f"<style>{_PAGE_CSS}</style></head><body>",
        f"<h1>Health report — {e(str(report['label']))}</h1>",
        f"<p class='meta'>generated at t={_fmt(report['generated_at_ms'])}ms "
        f"(virtual) · {report['ticks']} evaluation ticks · "
        f"interval {_fmt(report['interval_ms'])}ms · apps: "
        f"{e(', '.join(report['apps']))}</p>",
    ]

    out.append("<h2>SLO status</h2><table><tr><th>SLO</th><th>indicator</th>"
               "<th>objective</th><th>threshold</th><th>status</th>"
               "<th>alerts</th><th>pages</th></tr>")
    for slo in report["slos"]:
        out.append(
            f"<tr><td>{e(slo['name'])}</td><td>{e(slo['indicator'])}</td>"
            f"<td>{_fmt(slo['objective'])}</td>"
            f"<td>{e(slo['comparison'])} {_fmt(slo['threshold'])}</td>"
            f"<td class='{e(slo['status'])}'>{e(slo['status'])}</td>"
            f"<td>{slo['alerts']}</td><td>{slo['pages']}</td></tr>"
        )
    out.append("</table>")

    out.append("<h2>Fired alerts</h2>")
    if report["alerts"]:
        out.append("<table><tr><th>SLO</th><th>severity</th><th>fired</th>"
                   "<th>resolved</th><th>peak burn</th></tr>")
        for alert in report["alerts"]:
            resolved = alert["resolved_at"]
            out.append(
                f"<tr><td>{e(alert['slo'])}</td>"
                f"<td class='{e(alert['severity'])}'>{e(alert['severity'])}</td>"
                f"<td>{_fmt(alert['fired_at'])}ms</td>"
                f"<td>{'active' if resolved is None else f'{resolved:g}ms'}</td>"
                f"<td>{_fmt(alert['peak_burn'])}</td></tr>"
            )
        out.append("</table>")
    else:
        out.append("<p class='ok'>none</p>")

    out.append("<h2>Completeness</h2><table><tr><th>app</th>"
               "<th>frontier (event time)</th><th>total lag</th></tr>")
    for app, snap in sorted(report["completeness"].items()):
        out.append(
            f"<tr><td>{e(app)}</td><td>{_fmt(snap['frontier'])}</td>"
            f"<td>{_fmt(snap['total_lag'])}</td></tr>"
        )
    out.append("</table>")

    sections = [
        ("Indicators", report["timelines"]["indicators"]),
        ("Burn rates", report["timelines"]["burn_rate"]),
        ("Partition lag (committed)", report["timelines"]["lag"]),
        ("Completeness frontier", report["timelines"]["frontier"]),
        ("Task processing rate", report["timelines"]["task_rate"]),
        ("Consumer fetch lag", report["timelines"]["consumer_lag"]),
    ]
    for title, series_map in sections:
        out.append(f"<h2>{e(title)}</h2>")
        if not series_map:
            out.append("<p class='meta'>no samples</p>")
            continue
        out.append("<table><tr><th>series</th><th>last</th>"
                   "<th>timeline</th></tr>")
        for key in sorted(series_map):
            points = series_map[key]
            last = points[-1][1] if points else None
            out.append(
                f"<tr><td>{e(key)}</td><td>{_fmt(last)}</td>"
                f"<td>{_sparkline(points)}</td></tr>"
            )
        out.append("</table>")

    if "fault_timeline" in report:
        out.append("<h2>Fault timeline</h2><table>"
                   "<tr><th>t (ms)</th><th>event</th></tr>")
        for ts, desc in report["fault_timeline"]:
            out.append(f"<tr><td>{_fmt(ts)}</td><td>{e(desc)}</td></tr>")
        out.append("</table>")

    out.append("</body></html>")
    return "\n".join(out)


def write_health_report(
    monitor: HealthMonitor,
    directory: str,
    label: str = "run",
    fault_timeline: Optional[List[Any]] = None,
) -> Tuple[str, str]:
    """Write ``health-<label>.json`` + ``.html``; returns both paths."""
    os.makedirs(directory, exist_ok=True)
    report = health_report(monitor, label=label, fault_timeline=fault_timeline)
    json_path = os.path.join(directory, f"health-{label}.json")
    html_path = os.path.join(directory, f"health-{label}.html")
    with open(json_path, "w") as f:
        f.write(report_json(report))
        f.write("\n")
    with open(html_path, "w") as f:
        f.write(render_health_html(report))
    return json_path, html_path
