"""Prometheus text exposition of the metrics registries.

:func:`prometheus_text` renders every registry into the text-based
exposition format (version 0.0.4): counters and gauges one sample line
each, histograms as a summary-style family of ``_count``/``_mean``/
``_p50``/``_p99``/``_max`` gauges (the registry keeps percentile
snapshots, not cumulative buckets). The registry's ``name{k=v,...}``
label encoding — written by :func:`repro.metrics.registry.labeled_name`
with sorted keys — is parsed back into proper Prometheus labels, and the
registry label itself becomes a ``registry="..."`` label, so one scrape
covers every registry in the simulation.

Output is deterministic: metric families sorted by name, samples sorted
by label set — two same-seed runs produce byte-identical expositions.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Tuple

_LABELED = re.compile(r"^(?P<name>[^{]+)\{(?P<labels>.*)\}$")
_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry key back into ``(name, labels)``.

    The inverse of :func:`repro.metrics.registry.labeled_name` for the
    label values this repo uses (no ``,`` or ``=`` inside values).
    """
    match = _LABELED.match(key)
    if match is None:
        return key, {}
    labels: Dict[str, str] = {}
    for part in match.group("labels").split(","):
        if not part:
            continue
        label_key, _, value = part.partition("=")
        labels[label_key] = value
    return match.group("name"), labels


def metric_name(name: str, prefix: str = "repro_") -> str:
    """A valid Prometheus metric name: prefixed, invalid chars to ``_``."""
    return prefix + _INVALID.sub("_", name)


def _format_value(value: Any) -> str:
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _format_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_INVALID.sub("_", k)}="{_escape_label_value(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def prometheus_text(registries: Dict[str, Any], prefix: str = "repro_") -> str:
    """Render ``{label: MetricsRegistry}`` as one text exposition."""
    # family name -> (type, [(sorted label repr, labels, value)])
    families: Dict[str, Tuple[str, List[Tuple[str, Dict[str, Any], float]]]] = {}

    def add(kind: str, reg_label: str, key: str, value: float, suffix: str = ""):
        name, labels = parse_metric_key(key)
        fam = metric_name(name, prefix) + suffix
        labels["registry"] = reg_label
        _, samples = families.setdefault(fam, (kind, []))
        samples.append((_format_labels(labels), labels, value))

    for reg_label in sorted(registries):
        registry = registries[reg_label]
        for key, value in registry.counters().items():
            add("counter", reg_label, key, value, suffix="_total")
        for key, value in registry.gauges().items():
            add("gauge", reg_label, key, value)
        for key, snap in registry.histograms().items():
            for stat in ("count", "mean", "p50", "p99", "max"):
                add("gauge", reg_label, key, snap[stat], suffix=f"_{stat}")

    lines: List[str] = []
    for fam in sorted(families):
        kind, samples = families[fam]
        lines.append(f"# TYPE {fam} {kind}")
        for label_repr, _, value in sorted(samples, key=lambda s: s[0]):
            lines.append(f"{fam}{label_repr} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_text(
    registries: Dict[str, Any], path: str, prefix: str = "repro_"
) -> str:
    with open(path, "w") as f:
        f.write(prometheus_text(registries, prefix=prefix))
    return path
