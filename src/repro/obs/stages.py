"""Per-stage decomposition of end-to-end latency.

The paper's Figure 5.b reports a single end-to-end latency number per
commit interval. To explain *where* that latency comes from, records carry
telescoping virtual-time stamps in their headers, one per pipeline hop:

========================  ======================================================
header                    stamped by
========================  ======================================================
``created_at``            the workload generator, at produce time (existing)
``__t_fetched``           the streams consumer, when the record is fetched
``__t_processed``         the task, when the record is dequeued for processing
``__t_emitted``           the task, when the result is produced to the sink
(received)                the verifier/drain, when the committed result is read
========================  ======================================================

Each stage is the delta between consecutive stamps:

* **produce** — created → fetched: append, replication to the ISR, and
  time until a fetch picks the record up.
* **queue** — fetched → processed: buffered in the task's record queue
  behind timestamp-ordered peers.
* **process** — processed → emitted: topology processing and state-store
  work until the result hits the sink producer.
* **commit** — emitted → received: sitting uncommitted until the next
  commit (EOS: transaction commit + markers) makes it visible to a
  read-committed consumer.

Because the stamps telescope, the stage durations sum *exactly* to the
end-to-end latency per record, so the breakdown's stage sum matches the
e2e histogram mean by construction (the acceptance check allows 1% for
float accumulation).

Stamping is gated twice: the consumer only stamps when its
``stage_stamping`` flag is set (the streams instance sets it; the verifier
consumer must not overwrite the stamps) and when the cluster tracer is
enabled, so the hot path is untouched in non-traced runs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.metrics.latency import CREATED_AT_HEADER, LatencyTracker
from repro.metrics.registry import Histogram

FETCHED_AT_HEADER = "__t_fetched"
PROCESSED_AT_HEADER = "__t_processed"
EMITTED_AT_HEADER = "__t_emitted"

#: Pipeline order; breakdown() reports stages in this order.
STAGES = ("produce", "queue", "process", "commit")


class StageLatencyTracker(LatencyTracker):
    """A LatencyTracker that also attributes each record's latency to
    pipeline stages when the record carries stage stamps."""

    def __init__(self) -> None:
        super().__init__()
        self.stage_histograms: Dict[str, Histogram] = {
            stage: Histogram(f"stage_{stage}_ms") for stage in STAGES
        }

    def record_output(self, record, received_at_ms: float) -> Optional[float]:
        latency = super().record_output(record, received_at_ms)
        if latency is None:
            return None
        headers = record.headers
        created = headers[CREATED_AT_HEADER]
        fetched = headers.get(FETCHED_AT_HEADER)
        processed = headers.get(PROCESSED_AT_HEADER)
        emitted = headers.get(EMITTED_AT_HEADER)
        if fetched is None or processed is None or emitted is None:
            return latency            # un-stamped record (tracing was off)
        self.stage_histograms["produce"].observe(fetched - created)
        self.stage_histograms["queue"].observe(processed - fetched)
        self.stage_histograms["process"].observe(emitted - processed)
        self.stage_histograms["commit"].observe(received_at_ms - emitted)
        return latency

    @property
    def stamped_count(self) -> int:
        """Records that carried a full set of stage stamps."""
        return self.stage_histograms["produce"].count

    def breakdown(self) -> Dict[str, float]:
        """Mean virtual-time spent per stage, in pipeline order. Empty when
        no stamped records were seen (tracing off)."""
        if self.stamped_count == 0:
            return {}
        return {
            stage: self.stage_histograms[stage].mean() for stage in STAGES
        }

    def stage_sum_ms(self) -> float:
        """Sum of the per-stage means; telescopes to the e2e mean when every
        observed record was stamped."""
        return sum(self.breakdown().values())
