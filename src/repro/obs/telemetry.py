"""Virtual-time telemetry sampling.

:class:`TelemetryReporter` is a Driver actor that snapshots one or more
:class:`~repro.metrics.registry.MetricsRegistry` instances on a fixed
virtual-time interval, turning point-in-time counters/gauges/histograms
into time series. Samples are taken inside ``poll()`` at actor safe points
(the same housekeeping pattern as the chaos controller's invariant checks)
rather than via wake timers, so an otherwise-idle simulation still
terminates: the reporter never *creates* future work, it only observes at
moments when the driver was running anyway.

Sample history is a ring buffer: ``max_samples`` bounds memory over long
chaos runs (a deque drops the oldest sample once full); pass ``None`` for
the old unbounded behaviour. The :meth:`series` view is the SLO engine's
query surface — ``since_ms`` restricts it to a trailing window, which is
how burn rates read "the last N milliseconds" without rescanning history.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.sim.clock import SimClock

#: Default ring-buffer capacity: at the chaos runs' 20ms sampling interval
#: this holds ~80 virtual seconds — far past any scenario horizon — while
#: bounding an unattended run's memory.
DEFAULT_MAX_SAMPLES = 4096


class TelemetryReporter:
    """Samples metrics registries into virtual-time series.

    ``registries`` maps a label (e.g. ``"cluster"``, ``"app"``) to a
    registry; each sample records every registry's counters, gauges, and
    histogram snapshots under that label.
    """

    def __init__(
        self,
        clock: SimClock,
        registries: Dict[str, Any],
        interval_ms: float = 1000.0,
        name: str = "telemetry",
        max_samples: Optional[int] = DEFAULT_MAX_SAMPLES,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if max_samples is not None and max_samples <= 0:
            raise ValueError("max_samples must be positive (or None)")
        self.clock = clock
        self.name = name
        self.interval_ms = interval_ms
        self.max_samples = max_samples
        self.registries = dict(registries)
        self.samples: Deque[Dict[str, Any]] = deque(maxlen=max_samples)
        self.samples_taken = 0      # total, including any evicted ones
        self._last_sample_ms = float("-inf")

    # -- Driver actor protocol ----------------------------------------------------------

    def poll(self) -> int:
        if self.clock.now - self._last_sample_ms >= self.interval_ms:
            self.sample()
        return 0

    # -- sampling ----------------------------------------------------------------------

    def sample(self) -> Dict[str, Any]:
        """Take one sample now, regardless of the interval."""
        sample: Dict[str, Any] = {"ts": self.clock.now, "registries": {}}
        for label in sorted(self.registries):
            registry = self.registries[label]
            sample["registries"][label] = {
                "counters": dict(registry.counters()),
                "gauges": dict(getattr(registry, "gauges", lambda: {})()),
                "histograms": {
                    name: dict(snap)
                    for name, snap in registry.histograms().items()
                },
            }
        self.samples.append(sample)
        self.samples_taken += 1
        self._last_sample_ms = self.clock.now
        return sample

    # -- views -------------------------------------------------------------------------

    def latest(self) -> Optional[Dict[str, Any]]:
        """The most recent sample, or None before the first one."""
        return self.samples[-1] if self.samples else None

    def series(
        self,
        registry_label: str,
        kind: str,
        metric: str,
        field: str = "mean",
        since_ms: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """One metric as ``(ts, value)`` pairs across retained samples.

        ``kind`` is ``"counters"``, ``"gauges"``, or ``"histograms"``; for
        histograms ``field`` picks a snapshot stat (mean/p50/p99/...).
        ``since_ms`` keeps only samples with ``ts >= since_ms`` — the SLO
        engine's trailing burn-rate windows.
        """
        points: List[Tuple[float, float]] = []
        for sample in self.samples:
            if since_ms is not None and sample["ts"] < since_ms:
                continue
            registry = sample["registries"].get(registry_label)
            if registry is None:
                continue
            value = registry[kind].get(metric)
            if value is None:
                continue
            if kind == "histograms":
                value = value[field]
            points.append((sample["ts"], value))
        return points

    def reset(self) -> None:
        self.samples.clear()
        self._last_sample_ms = float("-inf")
