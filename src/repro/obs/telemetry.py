"""Virtual-time telemetry sampling.

:class:`TelemetryReporter` is a Driver actor that snapshots one or more
:class:`~repro.metrics.registry.MetricsRegistry` instances on a fixed
virtual-time interval, turning point-in-time counters/gauges/histograms
into time series. Samples are taken inside ``poll()`` at actor safe points
(the same housekeeping pattern as the chaos controller's invariant checks)
rather than via wake timers, so an otherwise-idle simulation still
terminates: the reporter never *creates* future work, it only observes at
moments when the driver was running anyway.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.sim.clock import SimClock


class TelemetryReporter:
    """Samples metrics registries into virtual-time series.

    ``registries`` maps a label (e.g. ``"cluster"``, ``"app"``) to a
    registry; each sample records every registry's counters, gauges, and
    histogram snapshots under that label.
    """

    def __init__(
        self,
        clock: SimClock,
        registries: Dict[str, Any],
        interval_ms: float = 1000.0,
        name: str = "telemetry",
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.clock = clock
        self.name = name
        self.interval_ms = interval_ms
        self.registries = dict(registries)
        self.samples: List[Dict[str, Any]] = []
        self._last_sample_ms = float("-inf")

    # -- Driver actor protocol ----------------------------------------------------------

    def poll(self) -> int:
        if self.clock.now - self._last_sample_ms >= self.interval_ms:
            self.sample()
        return 0

    # -- sampling ----------------------------------------------------------------------

    def sample(self) -> Dict[str, Any]:
        """Take one sample now, regardless of the interval."""
        sample: Dict[str, Any] = {"ts": self.clock.now, "registries": {}}
        for label in sorted(self.registries):
            registry = self.registries[label]
            sample["registries"][label] = {
                "counters": dict(registry.counters()),
                "gauges": dict(getattr(registry, "gauges", lambda: {})()),
                "histograms": {
                    name: dict(snap)
                    for name, snap in registry.histograms().items()
                },
            }
        self.samples.append(sample)
        self._last_sample_ms = self.clock.now
        return sample

    # -- views -------------------------------------------------------------------------

    def series(
        self, registry_label: str, kind: str, metric: str, field: str = "mean"
    ) -> List[Tuple[float, float]]:
        """One metric as ``(ts, value)`` pairs across samples.

        ``kind`` is ``"counters"``, ``"gauges"``, or ``"histograms"``; for
        histograms ``field`` picks a snapshot stat (mean/p50/p99/...).
        """
        points: List[Tuple[float, float]] = []
        for sample in self.samples:
            registry = sample["registries"].get(registry_label)
            if registry is None:
                continue
            value = registry[kind].get(metric)
            if value is None:
                continue
            if kind == "histograms":
                value = value[field]
            points.append((sample["ts"], value))
        return points

    def reset(self) -> None:
        self.samples.clear()
        self._last_sample_ms = float("-inf")
