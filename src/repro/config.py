"""Configuration dataclasses for brokers, clients, and streams.

Field names follow the Kafka configuration keys they model (snake_cased),
so users of the real system can map them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import InvalidConfigError

# Processing guarantees (StreamsConfig.processing_guarantee).
# EXACTLY_ONCE uses one transactional producer per instance thread that
# groups all its tasks into one ongoing transaction (the Kafka 2.6 behaviour
# Section 6.1 highlights: coordination overhead scales with threads, not
# partitions). EXACTLY_ONCE_V1 is the original design with one transactional
# producer per task.
AT_LEAST_ONCE = "at_least_once"
EXACTLY_ONCE = "exactly_once"
EXACTLY_ONCE_V1 = "exactly_once_v1"

# Group rebalance protocols (StreamsConfig.rebalance_protocol /
# ConsumerConfig.rebalance_protocol). EAGER is the classic stop-the-world
# protocol: every membership change revokes *all* partitions from *all*
# members, which commit, close, and re-open every task. COOPERATIVE is the
# KIP-429 incremental protocol: a rebalance first hands each member the
# intersection of its old and new assignment; partitions that must move are
# granted to their new owner only in a follow-up generation, after the old
# owner has committed and released them.
EAGER = "eager"
COOPERATIVE = "cooperative"

# Consumer isolation levels. READ_SPECULATIVE is this repo's
# implementation of the paper's future-work idea (Section 8): it returns
# records of *open* transactions (no LSO gating) so downstream processing
# can start early, but still filters records of aborted transactions so a
# rolled-back speculation never re-reads poisoned data.
READ_UNCOMMITTED = "read_uncommitted"
READ_COMMITTED = "read_committed"
READ_SPECULATIVE = "read_speculative"


@dataclass
class BrokerConfig:
    """Per-cluster broker settings."""

    replication_factor: int = 3
    min_insync_replicas: int = 2
    transaction_log_partitions: int = 4
    offsets_topic_partitions: int = 4
    transaction_timeout_ms: float = 60_000.0
    # How many records a replica fetches per replication round.
    replica_fetch_max_records: int = 10_000

    def validate(self) -> None:
        if self.replication_factor < 1:
            raise InvalidConfigError("replication_factor must be >= 1")
        if not 1 <= self.min_insync_replicas <= self.replication_factor:
            raise InvalidConfigError(
                "min_insync_replicas must be in [1, replication_factor]"
            )
        if self.transaction_log_partitions < 1:
            raise InvalidConfigError("transaction_log_partitions must be >= 1")
        if self.offsets_topic_partitions < 1:
            raise InvalidConfigError("offsets_topic_partitions must be >= 1")


@dataclass
class ProducerConfig:
    """Producer client settings."""

    client_id: str = "producer"
    enable_idempotence: bool = True
    transactional_id: Optional[str] = None
    acks: str = "all"                 # "all" or "1"
    # As in Kafka ≥ 2.1: retries is effectively unbounded and the *time*
    # budget below (delivery_timeout_ms) is what gives up on a send. A
    # sustained fault — gray broker, severed link, ISR below min — is
    # ridden out with exponential backoff until the path heals or the
    # delivery deadline passes, whichever comes first.
    retries: int = 2**31 - 1
    delivery_timeout_ms: float = 120_000.0
    batch_max_records: int = 500
    linger_ms: float = 0.0
    transaction_timeout_ms: float = 60_000.0
    # How long a blocking call (e.g. CONCURRENT_TRANSACTIONS backoff in
    # add_partitions_to_txn) may wait before MaxBlockTimeoutError, and the
    # exponential backoff bounds used while waiting (virtual milliseconds).
    max_block_ms: float = 60_000.0
    retry_backoff_ms: float = 0.5
    retry_backoff_max_ms: float = 50.0

    def validate(self) -> None:
        if self.transactional_id is not None and not self.enable_idempotence:
            raise InvalidConfigError(
                "transactional producers require enable_idempotence=True"
            )
        if self.acks not in ("all", "1"):
            raise InvalidConfigError(f"acks must be 'all' or '1', got {self.acks!r}")
        if self.retries < 0:
            raise InvalidConfigError("retries must be >= 0")
        if self.delivery_timeout_ms <= 0:
            raise InvalidConfigError("delivery_timeout_ms must be > 0")
        if self.batch_max_records < 1:
            raise InvalidConfigError("batch_max_records must be >= 1")
        if self.max_block_ms <= 0:
            raise InvalidConfigError("max_block_ms must be > 0")
        if not 0 < self.retry_backoff_ms <= self.retry_backoff_max_ms:
            raise InvalidConfigError(
                "retry_backoff_ms must be in (0, retry_backoff_max_ms]"
            )


@dataclass
class ConsumerConfig:
    """Consumer client settings."""

    client_id: str = "consumer"
    group_id: Optional[str] = None
    isolation_level: str = READ_UNCOMMITTED
    auto_offset_reset: str = "earliest"   # "earliest" | "latest" | "none"
    max_poll_records: int = 500
    session_timeout_ms: float = 10_000.0
    # Protocol this member offers at join_group. The group coordinator
    # negotiates down to EAGER unless *every* member offers COOPERATIVE.
    rebalance_protocol: str = EAGER
    # Coordinator-RPC retry policy (offset commits): retriable failures
    # are retried with exponential backoff until default_api_timeout_ms
    # elapses, mirroring the producer's _call_coordinator loop.
    retry_backoff_ms: float = 0.5
    retry_backoff_max_ms: float = 50.0
    default_api_timeout_ms: float = 60_000.0
    # Gray-failure hedging: keep a per-broker latency EWMA over fetch
    # round trips and, while a leader is demoted as gray, hedge fetches
    # to another in-sync replica (KIP-392-style follower read). Off by
    # default — steady-state fetch routing is leader-only.
    hedged_fetch: bool = False

    def validate(self) -> None:
        if self.isolation_level not in (
            READ_UNCOMMITTED,
            READ_COMMITTED,
            READ_SPECULATIVE,
        ):
            raise InvalidConfigError(
                f"unknown isolation level: {self.isolation_level!r}"
            )
        if self.auto_offset_reset not in ("earliest", "latest", "none"):
            raise InvalidConfigError(
                f"unknown auto_offset_reset: {self.auto_offset_reset!r}"
            )
        if self.rebalance_protocol not in (EAGER, COOPERATIVE):
            raise InvalidConfigError(
                f"unknown rebalance_protocol: {self.rebalance_protocol!r}"
            )
        if not 0 < self.retry_backoff_ms <= self.retry_backoff_max_ms:
            raise InvalidConfigError(
                "retry_backoff_ms must be in (0, retry_backoff_max_ms]"
            )
        if self.default_api_timeout_ms <= 0:
            raise InvalidConfigError("default_api_timeout_ms must be > 0")


@dataclass
class StreamsConfig:
    """Kafka Streams application settings.

    ``commit_interval_ms`` is the transaction commit interval in EOS mode
    (the knob on the x-axis of Figure 5.b); ``processing_guarantee``
    switches between at-least-once and exactly-once with a single value,
    as the paper describes in Section 4.3.
    """

    application_id: str = "streams-app"
    processing_guarantee: str = AT_LEAST_ONCE
    commit_interval_ms: float = 100.0
    num_stream_threads: int = 1
    max_poll_records: int = 500
    transaction_timeout_ms: float = 60_000.0
    # Group-membership session timeout for the instances' consumers: a
    # silently crashed instance is evicted (and its tasks migrated) when
    # its session timer expires without a heartbeat.
    session_timeout_ms: float = 10_000.0
    # >0 keeps warm shadow copies of stateful tasks' stores on non-owner
    # instances, replayed continuously from the changelogs, so task
    # migration restores incrementally instead of from scratch.
    num_standby_replicas: int = 0
    # The paper's future-work optimization (Section 8): process upstream
    # data *before* its transaction commits (read_speculative sources) and
    # gate this instance's own commit on the upstream outcome, rolling the
    # speculation back if the upstream transaction aborts. Requires
    # processing_guarantee=EXACTLY_ONCE.
    speculative: bool = False
    # KIP-429: "cooperative" rebalances incrementally — retained tasks keep
    # processing while moved partitions are handed over in a follow-up
    # generation. "eager" is the classic revoke-everything protocol.
    rebalance_protocol: str = EAGER
    # KIP-441: with the cooperative protocol, a stateful task only moves to
    # an instance whose changelog lag (end offset minus standby position) is
    # at most this many records. A laggier destination first gets a warmup
    # standby, and a probing rebalance completes the migration once the
    # warmup has caught up.
    acceptable_recovery_lag: int = 10_000
    # Virtual-time interval between probing rebalances while any warmup
    # standby is still catching up.
    probing_rebalance_interval_ms: float = 1_000.0
    # Columnar batch execution: tasks whose processors are all batch-aware
    # consume ColumnarBatches from the consumer and push whole column
    # chunks through the fused processor graph, materializing no per-record
    # objects on the hot path. Committed output is byte-identical to the
    # scalar path; tasks with punctuators or non-batch-aware processors
    # fall back to scalar processing automatically. Ignored (scalar) when
    # ``speculative`` is set — speculation needs per-record dependency
    # tracking.
    batch_execution: bool = False
    # Restore throttling: >0 caps how many changelog records one instance
    # replays per poll cycle, spread across its restoring tasks
    # (smallest-lag-first), so a mass restore after instance loss cannot
    # starve live tasks on the same instance. 0 restores unthrottled at
    # task (re)creation, blocking that poll — the classic behaviour.
    restore_max_records_per_poll: int = 0
    # Graceful degradation under sustained coordinator loss: when a
    # commit exhausts its blocking budget (MaxBlockTimeoutError from the
    # producer, or a retriable coordinator error that outlived the
    # consumer's retry deadline), the instance pauses for a bounded,
    # exponentially growing window instead of retrying unboundedly; shed
    # polls are accounted in streams.degraded_* metrics.
    degraded_pause_ms: float = 50.0
    degraded_pause_max_ms: float = 2_000.0
    # max_block_ms handed to the instances' producers — how long one
    # commit may block on an unavailable coordinator before the instance
    # degrades.
    producer_max_block_ms: float = 60_000.0
    # Gray-failure hardening for the instances' consumers: track per-broker
    # fetch latency and hedge fetches to another in-sync replica while a
    # broker is demoted (see repro.clients.gray). Only observable when the
    # network charges latency.
    hedged_fetch: bool = False

    def validate(self) -> None:
        if self.processing_guarantee not in (
            AT_LEAST_ONCE,
            EXACTLY_ONCE,
            EXACTLY_ONCE_V1,
        ):
            raise InvalidConfigError(
                f"unknown processing_guarantee: {self.processing_guarantee!r}"
            )
        if self.commit_interval_ms <= 0:
            raise InvalidConfigError("commit_interval_ms must be > 0")
        if self.num_stream_threads < 1:
            raise InvalidConfigError("num_stream_threads must be >= 1")
        if not self.application_id:
            raise InvalidConfigError("application_id must be non-empty")
        if self.num_standby_replicas < 0:
            raise InvalidConfigError("num_standby_replicas must be >= 0")
        if self.speculative and self.processing_guarantee != EXACTLY_ONCE:
            raise InvalidConfigError(
                "speculative processing requires processing_guarantee="
                "exactly_once (per-thread transactions)"
            )
        if self.rebalance_protocol not in (EAGER, COOPERATIVE):
            raise InvalidConfigError(
                f"unknown rebalance_protocol: {self.rebalance_protocol!r}"
            )
        if self.acceptable_recovery_lag < 0:
            raise InvalidConfigError("acceptable_recovery_lag must be >= 0")
        if self.probing_rebalance_interval_ms <= 0:
            raise InvalidConfigError("probing_rebalance_interval_ms must be > 0")
        if self.restore_max_records_per_poll < 0:
            raise InvalidConfigError("restore_max_records_per_poll must be >= 0")
        if not 0 < self.degraded_pause_ms <= self.degraded_pause_max_ms:
            raise InvalidConfigError(
                "degraded_pause_ms must be in (0, degraded_pause_max_ms]"
            )
        if self.producer_max_block_ms <= 0:
            raise InvalidConfigError("producer_max_block_ms must be > 0")

    @property
    def eos_enabled(self) -> bool:
        return self.processing_guarantee in (EXACTLY_ONCE, EXACTLY_ONCE_V1)

    @property
    def eos_per_task_producer(self) -> bool:
        return self.processing_guarantee == EXACTLY_ONCE_V1
