"""Exception hierarchy for the repro Kafka/Streams stack.

Mirrors the split the real Kafka clients make between *retriable* errors
(transient: the operation may succeed if retried, e.g. a request timeout)
and *fatal* errors (the client instance must not continue, e.g. a fenced
transactional producer).
"""

from __future__ import annotations


class KafkaError(Exception):
    """Base class for every error raised by the broker or the clients."""

    retriable = False


class RetriableError(KafkaError):
    """Transient failure; the caller may retry the same operation."""

    retriable = True


class RequestTimeoutError(RetriableError):
    """An RPC timed out. The operation may or may not have been applied."""


class NotLeaderError(RetriableError):
    """The addressed broker is not (or no longer) the partition leader."""


class BrokerUnavailableError(RetriableError):
    """The addressed broker is down."""


class NotEnoughReplicasError(RetriableError):
    """Fewer in-sync replicas than required to accept the write."""


class CoordinatorNotAvailableError(RetriableError):
    """The group or transaction coordinator is not currently available."""


class UnknownTopicOrPartitionError(KafkaError):
    """The topic or partition does not exist."""


class TopicAlreadyExistsError(KafkaError):
    """Attempted to create a topic that already exists."""


class OffsetOutOfRangeError(KafkaError):
    """A fetch or seek addressed an offset outside the log's range."""


class InvalidConfigError(KafkaError):
    """A configuration value is out of its legal range."""


class AuthorizationError(KafkaError):
    """The principal is not allowed to perform the operation."""


# --- idempotence / transactions -------------------------------------------


class DuplicateSequenceError(KafkaError):
    """The batch was already appended (same producer id + sequence).

    Not really an *error* for the producer: it treats this as a successful
    (deduplicated) append. Raised internally by the log.
    """


class OutOfOrderSequenceError(KafkaError):
    """A producer batch skipped sequence numbers; previous data was lost."""


class ProducerFencedError(KafkaError):
    """Another producer with the same transactional id and a newer epoch
    has registered; this producer is a zombie and must close."""


class InvalidProducerEpochError(ProducerFencedError):
    """The producer epoch is stale for this partition."""


class InvalidTxnStateError(KafkaError):
    """The transaction is not in a state that allows the operation."""


class TransactionAbortedError(KafkaError):
    """The ongoing transaction was aborted (e.g. by timeout) and the
    producer must start a new one."""


class ConcurrentTransactionsError(RetriableError):
    """The previous transaction with this id has not finished completing."""


class MaxBlockTimeoutError(KafkaError):
    """A blocking producer call exceeded ``max_block_ms`` (e.g. waiting out
    CONCURRENT_TRANSACTIONS backoff while the previous transaction's
    markers land)."""


# --- consumer groups --------------------------------------------------------


class RebalanceInProgressError(RetriableError):
    """The consumer group is rebalancing; rejoin before continuing."""


class IllegalGenerationError(KafkaError):
    """The member's generation id is stale; it was kicked from the group."""


class UnknownMemberError(KafkaError):
    """The member id is not part of the group."""


class CommitFailedError(KafkaError):
    """An offset commit was rejected (stale generation / fenced member)."""


# --- streams ----------------------------------------------------------------


class StreamsError(Exception):
    """Base class for errors raised by the streams library."""


class TopologyError(StreamsError):
    """The topology definition is invalid."""


class TaskMigratedError(StreamsError):
    """The task was migrated to another instance (producer got fenced);
    the losing instance must drop the task and rejoin."""


class StateStoreError(StreamsError):
    """A state store operation failed."""


# --- interactive queries ----------------------------------------------------


class QueryError(StreamsError):
    """Base class for interactive-query failures."""

    retriable = False


class NotOwnedError(QueryError):
    """The addressed instance does not (or no longer) host the task the
    query needs — e.g. it is mid-migration during a cooperative rebalance.
    Retriable: ``hint`` carries fresh routing metadata so the caller can
    re-route instead of blocking on the rebalance."""

    retriable = True

    def __init__(self, message: str, hint=None) -> None:
        super().__init__(message)
        self.hint = hint


class StaleEpochError(QueryError):
    """The query was routed with a stale routing epoch (the group has
    rebalanced since the metadata was cached). Retriable after a metadata
    refresh — the same re-route idiom the clients use for stale
    leadership caches. ``epoch`` is the coordinator's current epoch."""

    retriable = True

    def __init__(self, message: str, epoch: int = -1) -> None:
        super().__init__(message)
        self.epoch = epoch


class StaleStoreError(QueryError):
    """A bounded-staleness read found every eligible replica further
    behind the committed changelog than the caller's ``max_staleness``
    bound allows. ``staleness`` is the best (smallest) lag observed."""

    retriable = True

    def __init__(self, message: str, staleness: float = float("inf")) -> None:
        super().__init__(message)
        self.staleness = staleness


class QueryUnavailableError(QueryError):
    """The router exhausted its capped retry budget without finding a
    servable replica — the availability failure the IQ benchmarks count."""

    retriable = False


class SerializationError(StreamsError):
    """A record key or value could not be (de)serialized."""
