"""Small shared utilities."""

from __future__ import annotations

import zlib
from typing import Any


def stable_hash(value: Any) -> int:
    """Deterministic non-negative hash, stable across interpreter runs.

    Python's built-in ``hash`` is randomised for strings; partitioners and
    coordinator-partition routing must be reproducible, so everything in the
    repro stack hashes through this function instead.
    """
    if isinstance(value, bytes):
        data = value
    elif isinstance(value, str):
        data = value.encode("utf-8")
    elif isinstance(value, int):
        data = str(value).encode("ascii")
    else:
        data = repr(value).encode("utf-8")
    return zlib.crc32(data) & 0x7FFFFFFF


def partition_for(key: Any, num_partitions: int) -> int:
    """Default key-based partitioner (stable hash modulo partition count)."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    if key is None:
        return 0
    return stable_hash(key) % num_partitions


class ExponentialBackoff:
    """Capped exponential backoff schedule.

    The retry idiom every Kafka client RPC uses: delays start at
    ``initial_ms`` and double per attempt up to ``max_ms``. The schedule is
    pure bookkeeping — callers decide how to spend the delay (advance the
    virtual clock, or just account it as modelled latency), so the same
    helper serves the producer's coordinator RPCs and the interactive-query
    router's re-route loop.
    """

    def __init__(
        self, initial_ms: float, max_ms: float, factor: float = 2.0
    ) -> None:
        if initial_ms <= 0:
            raise ValueError("initial_ms must be > 0")
        if max_ms < initial_ms:
            raise ValueError("max_ms must be >= initial_ms")
        if factor < 1.0:
            raise ValueError("factor must be >= 1.0")
        self.initial_ms = initial_ms
        self.max_ms = max_ms
        self.factor = factor
        self._next = initial_ms
        self.attempts = 0

    def next_delay_ms(self) -> float:
        """The delay to wait before the next retry; grows the schedule."""
        delay = self._next
        self._next = min(self._next * self.factor, self.max_ms)
        self.attempts += 1
        return delay

    def reset(self) -> None:
        self._next = self.initial_ms
        self.attempts = 0
