"""Small shared utilities."""

from __future__ import annotations

import zlib
from typing import Any


def stable_hash(value: Any) -> int:
    """Deterministic non-negative hash, stable across interpreter runs.

    Python's built-in ``hash`` is randomised for strings; partitioners and
    coordinator-partition routing must be reproducible, so everything in the
    repro stack hashes through this function instead.
    """
    if isinstance(value, bytes):
        data = value
    elif isinstance(value, str):
        data = value.encode("utf-8")
    elif isinstance(value, int):
        data = str(value).encode("ascii")
    else:
        data = repr(value).encode("utf-8")
    return zlib.crc32(data) & 0x7FFFFFFF


def partition_for(key: Any, num_partitions: int) -> int:
    """Default key-based partitioner (stable hash modulo partition count)."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    if key is None:
        return 0
    return stable_hash(key) % num_partitions
