"""The consumer client: subscriptions, groups, positions, isolation levels.

``isolation_level=read_committed`` gives the visibility contract of
Section 4.2.3: records of a transaction are returned only once its commit
marker has been appended, aborted records are never returned, and the
consumer's position still advances across markers and filtered spans.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.broker.cluster import Cluster
from repro.broker.partition import TopicPartition
from repro.clients.gray import GrayFailureDetector
from repro.config import COOPERATIVE, READ_COMMITTED, ConsumerConfig
from repro.errors import (
    IllegalGenerationError,
    KafkaError,
    OffsetOutOfRangeError,
    RetriableError,
)
from repro.log.columnar import ColumnarBatch
from repro.log.record import Record
from repro.obs.stages import FETCHED_AT_HEADER
from repro.util import ExponentialBackoff


class Consumer:
    """An embedded consumer client against a :class:`Cluster`."""

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[ConsumerConfig] = None,
        network: Optional[Any] = None,
    ):
        self.cluster = cluster
        self.config = config or ConsumerConfig()
        self.config.validate()
        # ``network`` overrides the RPC path while ``cluster`` stays the
        # logical target — how a consumer in one region reads another
        # region's brokers through an inter-cluster link proxy
        # (repro.mirror.netlink) without knowing about regions itself.
        self._network = network if network is not None else cluster.network
        self._tracer = cluster.tracer
        # Streams instances set this so fetched records carry the
        # `__t_fetched` stage stamp. Off for plain consumers — the
        # verifier's final fetch must not overwrite the pipeline's stamp.
        self.stage_stamping = False

        self._subscription: Tuple[str, ...] = ()
        self._assignment: List[TopicPartition] = []
        self._manual_assignment = False
        self._positions: Dict[TopicPartition, int] = {}
        self._paused: set = set()
        self._member_id: Optional[str] = None
        self._generation = -1
        self._partitions_lost = False
        self._closed = False
        self._fetch_cursor = 0
        # Leader routing cache, valid for one cluster metadata epoch (the
        # fetch hot path otherwise re-resolves leadership on every poll).
        self._routing_epoch = -1
        self._leader_cache: Dict[TopicPartition, int] = {}

        # Stands in for the background heartbeat thread of a real consumer:
        # the coordinator calls it when this member's session deadline
        # passes to ask whether the process is still alive (embedding
        # runtimes point it at their own liveness, e.g. instance.alive).
        self.liveness_probe = None

        # Optional rebalance listener: callback(revoked, added, retained),
        # each a sorted list of TopicPartitions, invoked whenever the
        # adopted assignment changes. The sets follow the negotiated
        # protocol's semantics: an eager rebalance revokes *everything*
        # (retained is always empty); a cooperative one revokes only the
        # partitions actually moving away (KIP-429 incremental semantics).
        self.rebalance_callback = None

        self.records_consumed = 0
        # Poll-size telemetry, shared by the scalar and columnar paths.
        self._records_per_poll = cluster.metrics.histogram(
            "consumer.records_per_poll"
        )
        # Fetch-response lag bookkeeping: every fetch response already
        # carries the partition's visible end (LSO under read_committed,
        # HW otherwise), so lag = visible end − post-fetch position is
        # free. Gauges are cached per partition — this is the poll hot
        # path. The fetch round-trip EWMA feeds the fetch-latency SLO.
        self._lag: Dict[TopicPartition, int] = {}
        self._lag_gauges: Dict[TopicPartition, Any] = {}
        self._rtt_ewma: Optional[float] = None
        self._rtt_gauge = cluster.metrics.gauge(
            "consumer.fetch_rtt_ms", client=self.config.client_id
        )
        # Gray-failure detection (config.hedged_fetch): per-broker latency
        # EWMA over fetch round trips; while the leader is demoted, scalar
        # fetches hedge to another in-sync replica.
        self._gray = (
            GrayFailureDetector(cluster.clock, metrics=cluster.metrics)
            if self.config.hedged_fetch
            else None
        )
        self.hedged_fetches = 0

    # -- subscription / assignment ---------------------------------------------------

    def subscribe(self, topics: List[str]) -> None:
        """Join the consumer group (config.group_id) subscribed to ``topics``."""
        if self.config.group_id is None:
            raise KafkaError("subscribe() requires a group_id; use assign()")
        self._subscription = tuple(sorted(topics))
        self._manual_assignment = False
        coordinator = self.cluster.group_coordinator
        self._member_id, self._generation = coordinator.join_group(
            self.config.group_id,
            self._subscription,
            self._member_id,
            session_timeout_ms=self.config.session_timeout_ms,
            liveness=self._alive,
            protocol=self.config.rebalance_protocol,
        )
        self._refresh_assignment()

    def assign(self, partitions: List[TopicPartition]) -> None:
        """Manual assignment (no group membership)."""
        self._manual_assignment = True
        self._assignment = list(partitions)
        for tp in partitions:
            self._positions.setdefault(tp, self._reset_offset(tp))

    def assignment(self) -> List[TopicPartition]:
        return list(self._assignment)

    @property
    def member_id(self) -> Optional[str]:
        return self._member_id

    @property
    def generation(self) -> int:
        return self._generation

    def _refresh_assignment(self) -> None:
        """Adopt the coordinator's current assignment for this member."""
        coordinator = self.cluster.group_coordinator
        group = self.config.group_id
        assigned = coordinator.assignment(group, self._member_id, self._generation)
        old = set(self._assignment)
        self._assignment = assigned
        newly = [tp for tp in assigned if tp not in old]
        if newly:
            committed = coordinator.fetch_committed(group, newly)
            for tp in newly:
                offset = committed[tp]
                self._positions[tp] = (
                    self._reset_offset(tp) if offset is None else offset
                )
        removed = old - set(assigned)
        for tp in removed:
            self._positions.pop(tp, None)
        cooperative = coordinator.group_protocol(group) == COOPERATIVE
        if old != set(assigned) and self.rebalance_callback is not None:
            if cooperative:
                revoked = sorted(removed)
                added = sorted(newly)
                retained = sorted(old & set(assigned))
            else:
                # Eager semantics: the old assignment was revoked wholesale
                # and the new one adopted from scratch.
                revoked = sorted(old)
                added = sorted(assigned)
                retained = []
            self.rebalance_callback(revoked, added, retained)
        if cooperative:
            # The callback (or, without one, the adoption above) has
            # finished with every partition outside the adopted assignment:
            # confirm the release so the coordinator can grant them to
            # their new owners in a follow-up generation. Unconditional on
            # purpose — the coordinator may hold claims under this member's
            # name for a *grant it never adopted* (a generation it slept
            # through while idle); no local state exists for those either,
            # so the last committed offsets are the correct handover point.
            coordinator.rebalance_ack(group, self._member_id)

    def _maybe_rejoin(self) -> None:
        """Detect a generation bump (another member joined/left) and rejoin.

        If this member was *kicked* from the group (session expired while
        it was partitioned away — the zombie scenario), its partitions were
        lost, not revoked: all local positions are invalid, and the caller
        must observe :meth:`take_partitions_lost` and discard in-flight
        work before trusting anything fetched afterwards."""
        if self._manual_assignment or self._member_id is None:
            return
        coordinator = self.cluster.group_coordinator
        if coordinator.generation(self.config.group_id) == self._generation:
            return
        if not coordinator.is_member(self.config.group_id, self._member_id):
            self._partitions_lost = True
            self._assignment = []
            self._positions.clear()
        self._member_id, self._generation = coordinator.join_group(
            self.config.group_id,
            self._subscription,
            self._member_id,
            session_timeout_ms=self.config.session_timeout_ms,
            liveness=self._alive,
            protocol=self.config.rebalance_protocol,
        )
        self._refresh_assignment()

    def _alive(self) -> bool:
        if self._closed:
            return False
        probe = self.liveness_probe
        return True if probe is None else bool(probe())

    def take_partitions_lost(self) -> bool:
        """True once if the member was kicked since the last check."""
        lost, self._partitions_lost = self._partitions_lost, False
        return lost

    def _reset_offset(self, tp: TopicPartition) -> int:
        policy = self.config.auto_offset_reset
        if policy == "earliest":
            return self.cluster.partition_state(tp).leader_log().log_start_offset
        if policy == "latest":
            return self.cluster.end_offset(tp, self.config.isolation_level)
        raise OffsetOutOfRangeError(f"{tp}: no committed offset and reset policy is 'none'")

    # -- polling ------------------------------------------------------------------------

    def poll(self, max_records: Optional[int] = None) -> List[Record]:
        """Fetch the next visible records across assigned partitions.

        Partitions are served round-robin so one busy partition cannot
        starve the others.
        """
        if self._closed:
            raise KafkaError("consumer is closed")
        if self._member_id is not None and not self._manual_assignment:
            # Heartbeat piggybacks on poll (and is also a coordinator safe
            # point where deferred session evictions are applied).
            self.cluster.group_coordinator.heartbeat(
                self.config.group_id, self._member_id
            )
        self._maybe_rejoin()
        budget = max_records or self.config.max_poll_records
        out: List[Record] = []
        active = [tp for tp in self._assignment if tp not in self._paused]
        if not active:
            return out
        for i in range(len(active)):
            if budget <= 0:
                break
            tp = active[(self._fetch_cursor + i) % len(active)]
            try:
                records = self._fetch_one(tp, budget)
            except RetriableError:
                # Leaderless partition, dropped fetch, dead broker: skip
                # this partition for the round and let the next poll retry
                # with refreshed routing. Positions are untouched, so
                # nothing is lost or re-read.
                self._leader_cache.pop(tp, None)
                self._note_fetch_error(tp)
                continue
            out.extend(records)
            budget -= len(records)
        self._fetch_cursor += 1
        self.records_consumed += len(out)
        self._records_per_poll.observe(len(out))
        return out

    def poll_batches(
        self, max_records: Optional[int] = None
    ) -> List[ColumnarBatch]:
        """Columnar poll: the next visible records as at most one
        :class:`ColumnarBatch` per assigned partition, round-robin.

        Nothing is materialized — each batch is a slice of the broker log
        plus validity runs, stamped with its origin ``topic``/``partition``.
        Scalar ``Record`` views stay available via ``batch.records()``.
        """
        if self._closed:
            raise KafkaError("consumer is closed")
        if self._member_id is not None and not self._manual_assignment:
            self.cluster.group_coordinator.heartbeat(
                self.config.group_id, self._member_id
            )
        self._maybe_rejoin()
        budget = max_records or self.config.max_poll_records
        out: List[ColumnarBatch] = []
        active = [tp for tp in self._assignment if tp not in self._paused]
        if not active:
            return out
        total = 0
        for i in range(len(active)):
            if budget <= 0:
                break
            tp = active[(self._fetch_cursor + i) % len(active)]
            try:
                batch = self._fetch_one_columnar(tp, budget)
            except RetriableError:
                self._leader_cache.pop(tp, None)
                self._note_fetch_error(tp)
                continue
            if batch.valid_count:
                out.append(batch)
                budget -= batch.valid_count
                total += batch.valid_count
        self._fetch_cursor += 1
        self.records_consumed += total
        self._records_per_poll.observe(total)
        return out

    def _leader_of(self, tp: TopicPartition) -> int:
        epoch = self.cluster.metadata_epoch
        if epoch != self._routing_epoch:
            self._leader_cache.clear()
            self._routing_epoch = epoch
        leader = self._leader_cache.get(tp)
        if leader is None:
            leader = self.cluster.leader_of(tp)
            self._leader_cache[tp] = leader
        return leader

    def _note_fetch_error(self, tp: TopicPartition) -> None:
        rec = self.cluster.recovery
        if rec is not None:
            rec.note_detection(
                "fetch_error", client=self.config.client_id, partition=str(tp)
            )

    def _alternate_replica(
        self, tp: TopicPartition, leader: int, gray: GrayFailureDetector
    ) -> Optional[int]:
        """A live, non-demoted ISR member other than the leader, for the
        gray-failure hedge. Deterministic: lowest eligible broker id."""
        state = self.cluster.partition_state(tp)
        for broker in sorted(state.isr):
            if (
                broker != leader
                and not gray.is_demoted(broker)
                and self.cluster.is_broker_alive(broker)
            ):
                return broker
        return None

    def _fetch_one(self, tp: TopicPartition, budget: int) -> List[Record]:
        position = self._positions.get(tp)
        if position is None:
            position = self._reset_offset(tp)
            self._positions[tp] = position
        leader = self._leader_of(tp)
        traced = self._tracer.enabled
        gray = self._gray
        target = leader
        if gray is not None and gray.is_demoted(leader):
            alt = self._alternate_replica(tp, leader, gray)
            if alt is not None:
                target = alt
        if target is leader:
            fn = lambda: self.cluster.handle_fetch(  # noqa: E731
                tp, position, budget, self.config.isolation_level
            )
        else:
            fn = lambda: self.cluster.handle_fetch_replica(  # noqa: E731
                tp, target, position, budget, self.config.isolation_level
            )
        fetch_started = self.cluster.clock.now
        result = self._network.call(
            "fetch",
            target,
            fn,
            base_cost_ms=self._network.fetch_cost(),
            src=self.config.client_id,
        )
        if gray is not None:
            gray.observe(target, self.cluster.clock.now - fetch_started)
            if gray.check(target):
                rec = self.cluster.recovery
                if rec is not None:
                    rec.note_detection(
                        "gray_demotion",
                        client=self.config.client_id,
                        broker=target,
                    )
            if target != leader:
                self.hedged_fetches += 1
                self.cluster.metrics.counter("consumer.hedged_fetches").increment()
        self._positions[tp] = result.next_offset
        self._note_fetch(tp, result, fetch_started)
        # Return copies: the log's record objects are shared, and the
        # origin headers must reflect *this* fetch, not any upstream hop.
        # (Direct construction — dataclasses.replace costs ~3x as much on
        # this per-record path.)
        topic, partition = tp
        extra: Dict[str, Any] = {"__topic": topic, "__partition": partition}
        if traced:
            self.cluster.metrics.histogram(
                "fetch_latency_ms", topic=topic, partition=partition
            ).observe(self.cluster.clock.now - fetch_started)
            if self.stage_stamping:
                extra[FETCHED_AT_HEADER] = self.cluster.clock.now
        return [
            Record(
                key=r.key,
                value=r.value,
                timestamp=r.timestamp,
                headers={**r.headers, **extra},
                offset=r.offset,
                producer_id=r.producer_id,
                producer_epoch=r.producer_epoch,
                sequence=r.sequence,
                is_transactional=r.is_transactional,
                is_control=r.is_control,
                control_type=r.control_type,
            )
            for r in result.records
        ]

    def _fetch_one_columnar(
        self, tp: TopicPartition, budget: int
    ) -> ColumnarBatch:
        position = self._positions.get(tp)
        if position is None:
            position = self._reset_offset(tp)
            self._positions[tp] = position
        leader = self._leader_of(tp)
        traced = self._tracer.enabled
        fetch_started = self.cluster.clock.now
        batch = self._network.call(
            "fetch",
            leader,
            lambda: self.cluster.handle_fetch_columnar(
                tp, position, budget, self.config.isolation_level
            ),
            base_cost_ms=self._network.fetch_cost(),
            src=self.config.client_id,
        )
        self._positions[tp] = batch.next_offset
        self._note_fetch(tp, batch, fetch_started)
        # No per-record copies and no per-record stage stamps here: the
        # batch view is read-only and origin metadata rides on the batch
        # itself (per-batch span mode; see obs/stages.py).
        batch.topic, batch.partition = tp
        if traced:
            self.cluster.metrics.histogram(
                "fetch_latency_ms", topic=batch.topic, partition=batch.partition
            ).observe(self.cluster.clock.now - fetch_started)
        return batch

    # -- lag bookkeeping --------------------------------------------------------------------

    #: Fetch round-trip EWMA smoothing; matches the gray detector's idea
    #: of "recent" without coupling to it (lag gauges exist even when
    #: hedged_fetch is off).
    RTT_ALPHA = 0.2

    def _note_fetch(self, tp: TopicPartition, response: Any, started: float) -> None:
        """Update lag + RTT gauges from one fetch response.

        ``response`` is a FetchResult or ColumnarBatch — both carry
        ``next_offset`` plus the partition's high watermark and last
        stable offset, so lag needs no extra broker round trip.
        """
        end = (
            response.last_stable_offset
            if self.config.isolation_level == READ_COMMITTED
            else response.high_watermark
        )
        lag = end - response.next_offset
        if lag < 0:
            lag = 0
        self._lag[tp] = lag
        gauge = self._lag_gauges.get(tp)
        if gauge is None:
            gauge = self.cluster.metrics.gauge(
                "consumer.lag",
                group=self.config.group_id or self.config.client_id,
                topic=tp.topic,
                partition=tp.partition,
            )
            self._lag_gauges[tp] = gauge
        gauge.set(lag)
        rtt = self.cluster.clock.now - started
        ewma = self._rtt_ewma
        self._rtt_ewma = (
            rtt if ewma is None else ewma + self.RTT_ALPHA * (rtt - ewma)
        )
        self._rtt_gauge.set(self._rtt_ewma)

    def current_lag(self, tp: TopicPartition) -> Optional[int]:
        """Records between this consumer and the visible end, as of the
        last fetch response for the partition (None before any fetch)."""
        return self._lag.get(tp)

    def lags(self) -> Dict[TopicPartition, int]:
        return dict(self._lag)

    # -- positions & commits ---------------------------------------------------------------

    def position(self, tp: TopicPartition) -> int:
        if tp not in self._positions:
            self._positions[tp] = self._reset_offset(tp)
        return self._positions[tp]

    def seek(self, tp: TopicPartition, offset: int) -> None:
        self._positions[tp] = offset

    def seek_to_beginning(self, tp: TopicPartition) -> None:
        self.seek(tp, self.cluster.partition_state(tp).leader_log().log_start_offset)

    def pause(self, tp: TopicPartition) -> None:
        self._paused.add(tp)

    def resume(self, tp: TopicPartition) -> None:
        self._paused.discard(tp)

    def end_offsets(self, partitions: List[TopicPartition]) -> Dict[TopicPartition, int]:
        return {
            tp: self.cluster.end_offset(tp, self.config.isolation_level)
            for tp in partitions
        }

    def commit_sync(self, offsets: Optional[Dict[TopicPartition, int]] = None) -> None:
        """Commit positions (non-transactional; EOS commits go through the
        producer's ``send_offsets_to_transaction`` instead)."""
        if self.config.group_id is None:
            raise KafkaError("commit requires a group_id")
        if offsets is None:
            offsets = {tp: self._positions[tp] for tp in self._assignment
                       if tp in self._positions}
        if not offsets:
            return
        coordinator = self.cluster.group_coordinator
        offsets_tp = coordinator.offsets_partition(self.config.group_id)
        # A plain offset commit is an append to the offsets topic — it
        # costs a produce round trip, not a coordinator metadata update.
        self._call_coordinator(
            "offset_commit",
            lambda: self.cluster.leader_of(offsets_tp),
            lambda: coordinator.commit_offsets(
                self.config.group_id,
                offsets,
                member_id=self._member_id,
                generation=self._generation if self._member_id else None,
            ),
            self._network.produce_cost(len(offsets)),
        )

    def _call_coordinator(self, api: str, resolve_leader, fn, cost: float):
        """Coordinator-RPC retry loop — the consumer twin of
        ``Producer._call_coordinator``: retriable failures (leaderless
        offsets partition, dead broker, dropped request) are retried with
        capped exponential backoff, re-resolving the leader each attempt,
        until ``default_api_timeout_ms`` elapses; the last retriable error
        is then re-raised for the caller's degradation handling.
        Non-retriable rejections (stale generation) pass through."""
        clock = self.cluster.clock
        deadline = clock.now + self.config.default_api_timeout_ms
        backoff = ExponentialBackoff(
            self.config.retry_backoff_ms, self.config.retry_backoff_max_ms
        )
        while True:
            try:
                return self._network.call(
                    api,
                    resolve_leader(),
                    fn,
                    base_cost_ms=cost,
                    src=self.config.client_id,
                )
            except RetriableError:
                rec = self.cluster.recovery
                if rec is not None:
                    rec.note_detection(
                        "coordinator_retry",
                        client=self.config.client_id,
                        api=api,
                    )
                remaining = deadline - clock.now
                if remaining <= 0:
                    raise
                clock.advance(min(backoff.next_delay_ms(), remaining))

    def committed(self, tp: TopicPartition) -> Optional[int]:
        if self.config.group_id is None:
            return None
        result = self.cluster.group_coordinator.fetch_committed(
            self.config.group_id, [tp]
        )
        return result[tp]

    def close(self) -> None:
        if self._closed:
            return
        if self._member_id is not None and self.config.group_id is not None:
            self.cluster.group_coordinator.leave_group(
                self.config.group_id, self._member_id
            )
        self._closed = True
