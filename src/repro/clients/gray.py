"""Gray-failure detection for client→broker RPC paths.

A *gray* broker is alive enough to answer RPCs but slow enough to drag
the whole pipeline down — the failure mode a liveness check cannot see
(the chaos engine injects it as a duration-bounded ``slow`` network
fault). The detector keeps a per-broker latency EWMA fed from observed
RPC round trips and *demotes* a broker whose EWMA exceeds a multiple of
the fleet's median EWMA. While demoted, the consumer hedges fetches to
another in-sync replica (see ``Consumer._fetch_one``); the demotion
window grows through the shared :class:`~repro.util.ExponentialBackoff`
while the broker stays gray and resets once it looks healthy again.

Latencies are *virtual*: they only move when the network charges
latency, so the detector is inert (and free) in logical-time tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.util import ExponentialBackoff


class GrayFailureDetector:
    """Latency-EWMA broker demotion with exponential re-demotion windows."""

    def __init__(
        self,
        clock,
        metrics=None,
        alpha: float = 0.25,
        min_samples: int = 8,
        ratio: float = 3.0,
        floor_ms: float = 1.0,
        demote_initial_ms: float = 50.0,
        demote_max_ms: float = 800.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if ratio <= 1.0:
            raise ValueError(f"ratio must be > 1, got {ratio}")
        self._clock = clock
        self._metrics = metrics
        self.alpha = alpha
        self.min_samples = min_samples
        self.ratio = ratio
        self.floor_ms = floor_ms
        self._ewma: Dict[int, float] = {}
        self._samples: Dict[int, int] = {}
        self._demoted_until: Dict[int, float] = {}
        self._backoff: Dict[int, ExponentialBackoff] = {}
        self._demote_initial_ms = demote_initial_ms
        self._demote_max_ms = demote_max_ms
        self.demotions = 0

    # -- observations --------------------------------------------------------

    def observe(self, broker_id: int, latency_ms: float) -> None:
        """Feed one RPC round-trip latency (virtual ms) for ``broker_id``."""
        prev = self._ewma.get(broker_id)
        if prev is None:
            self._ewma[broker_id] = latency_ms
        else:
            self._ewma[broker_id] = prev + self.alpha * (latency_ms - prev)
        self._samples[broker_id] = self._samples.get(broker_id, 0) + 1

    def ewma(self, broker_id: int) -> Optional[float]:
        return self._ewma.get(broker_id)

    def _baseline(self, exclude: int) -> Optional[float]:
        """Median EWMA over the *other* observed brokers."""
        others: List[float] = [
            v for b, v in self._ewma.items()
            if b != exclude and self._samples.get(b, 0) >= self.min_samples
        ]
        if not others:
            return None
        others.sort()
        mid = len(others) // 2
        if len(others) % 2:
            return others[mid]
        return (others[mid - 1] + others[mid]) / 2.0

    # -- demotion ------------------------------------------------------------

    def is_demoted(self, broker_id: int) -> bool:
        until = self._demoted_until.get(broker_id)
        return until is not None and self._clock.now < until

    def check(self, broker_id: int) -> bool:
        """Evaluate ``broker_id`` against the fleet; demote it when its
        EWMA is ``ratio``× the median of its peers (and above the absolute
        floor). Returns True when this call *newly* demoted the broker."""
        if self.is_demoted(broker_id):
            return False
        if self._samples.get(broker_id, 0) < self.min_samples:
            return False
        ewma = self._ewma[broker_id]
        baseline = self._baseline(exclude=broker_id)
        if baseline is None:
            threshold = self.floor_ms
        else:
            threshold = max(self.floor_ms, self.ratio * baseline)
        if ewma <= threshold:
            backoff = self._backoff.get(broker_id)
            if backoff is not None:
                backoff.reset()
            return False
        backoff = self._backoff.setdefault(
            broker_id,
            ExponentialBackoff(self._demote_initial_ms, self._demote_max_ms),
        )
        self._demoted_until[broker_id] = (
            self._clock.now + backoff.next_delay_ms()
        )
        # Forget the gray history so the broker re-earns its reputation
        # from post-demotion samples instead of dragging the stale EWMA
        # through the healthy period.
        self._ewma[broker_id] = threshold
        self._samples[broker_id] = 0
        self.demotions += 1
        if self._metrics is not None:
            self._metrics.counter("client.gray_demotions").increment()
        return True
