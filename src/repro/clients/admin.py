"""Administrative client: topic management and record deletion."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.broker.cluster import Cluster, TopicMetadata
from repro.broker.partition import TopicPartition


class AdminClient:
    """Thin administrative facade over a :class:`Cluster`."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster

    def create_topic(
        self,
        name: str,
        num_partitions: int,
        replication_factor: Optional[int] = None,
        compacted: bool = False,
    ) -> TopicMetadata:
        return self.cluster.create_topic(
            name, num_partitions, replication_factor, compacted=compacted
        )

    def create_topic_if_absent(
        self,
        name: str,
        num_partitions: int,
        replication_factor: Optional[int] = None,
        compacted: bool = False,
    ) -> TopicMetadata:
        if self.cluster.has_topic(name):
            return self.cluster.topic_metadata(name)
        return self.create_topic(name, num_partitions, replication_factor, compacted)

    def create_partitions(self, name: str, new_partition_count: int) -> TopicMetadata:
        """Grow an existing topic's partition count (never shrinks)."""
        return self.cluster.create_partitions(name, new_partition_count)

    def describe_topic(self, name: str) -> TopicMetadata:
        return self.cluster.topic_metadata(name)

    def list_topics(self, include_internal: bool = False) -> List[str]:
        return sorted(
            name
            for name, meta in self.cluster.topics.items()
            if include_internal or not meta.internal
        )

    def delete_records(self, offsets: Dict[TopicPartition, int]) -> Dict[TopicPartition, int]:
        """Delete records below the given offset per partition; used by
        Kafka Streams to purge consumed repartition-topic data."""
        return {
            tp: self.cluster.delete_records(tp, offset)
            for tp, offset in offsets.items()
        }
