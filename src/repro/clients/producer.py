"""The producer client: batching, retries, idempotence, transactions.

Reproduces the client-side behaviour of Sections 4.1–4.2:

* **Retries on ambiguous failures.** A produce RPC that times out may or
  may not have been applied; the producer always retries (up to
  ``config.retries``), and relies on the broker's per-partition sequence
  numbers to de-duplicate — disable idempotence and the same retry
  produces a duplicate record, which is exactly the ablation benchmark.
* **Transactions.** ``init_transactions`` registers the transactional id
  (bumping the epoch and fencing zombies), ``send`` lazily registers each
  new output partition with the coordinator, ``send_offsets_to_transaction``
  folds the consumed offsets into the transaction, and
  ``commit_transaction``/``abort_transaction`` drive the two-phase commit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.broker.cluster import Cluster, TopicMetadata
from repro.broker.partition import TopicPartition
from repro.config import ProducerConfig
from repro.errors import (
    InvalidTxnStateError,
    KafkaError,
    MaxBlockTimeoutError,
    ProducerFencedError,
    RetriableError,
)
from repro.log.columnar import ColumnarSlab
from repro.log.record import NO_SEQUENCE
from repro.obs.tracer import TRACE_ID_HEADER
from repro.util import ExponentialBackoff, partition_for


class _ColumnBuffer:
    """Per-partition pending sends as parallel columns.

    ``send()`` appends four scalars instead of building an intermediate
    ``Record``; the flush path hands the columns to the broker as one
    :class:`~repro.log.columnar.ColumnarSlab`, and the partition log
    constructs the final offset-stamped records in a single pass."""

    __slots__ = ("keys", "values", "timestamps", "headers")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.timestamps: List[float] = []
        self.headers: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self.keys)

    def __bool__(self) -> bool:
        return bool(self.keys)


class Producer:
    """An embedded producer client against a :class:`Cluster`."""

    def __init__(self, cluster: Cluster, config: Optional[ProducerConfig] = None):
        self.cluster = cluster
        self.config = config or ProducerConfig()
        self.config.validate()
        self._network = cluster.network
        self._clock = cluster.clock
        self._tracer = cluster.tracer

        self.producer_id = -1
        self.producer_epoch = -1
        if self.config.enable_idempotence and self.config.transactional_id is None:
            self.producer_id = cluster.allocate_producer_id()
            self.producer_epoch = 0

        self._sequences: Dict[TopicPartition, int] = {}
        self._pending: Dict[TopicPartition, _ColumnBuffer] = {}
        # Routing caches, valid for one cluster metadata epoch: topic
        # metadata and partition leadership are looked up once per epoch
        # instead of twice per record on the send hot path.
        self._routing_epoch = -1
        self._metadata_cache: Dict[str, TopicMetadata] = {}
        self._leader_cache: Dict[TopicPartition, int] = {}
        self._in_transaction = False
        self._txn_registered_partitions: set = set()
        # Partitions written this transaction but not yet registered with
        # the coordinator; registered in one batched RPC at flush time
        # (Section 4.3: "producers can batch multiple writing partitions
        # in a single registration request").
        self._txn_unregistered: set = set()
        self._initialized_transactions = False
        self._closed = False

        # Metrics
        self.records_sent = 0
        self.batches_sent = 0
        self.retries_performed = 0

    # -- transactions lifecycle -----------------------------------------------------

    @property
    def transactional(self) -> bool:
        return self.config.transactional_id is not None

    def _call_coordinator(self, api: str, resolve_leader, fn, cost: float):
        """One coordinator RPC, retried through transient failures.

        The coordinator's log partition can be leaderless or its broker
        unreachable mid-failover; like every Kafka client RPC the call is
        retried with exponential backoff (re-resolving the leader each
        attempt) until it succeeds or ``max_block_ms`` of virtual time is
        spent. Covers CONCURRENT_TRANSACTIONS backoff too — it is just
        another retriable error.
        """
        deadline = self._clock.now + self.config.max_block_ms
        backoff = ExponentialBackoff(
            self.config.retry_backoff_ms, self.config.retry_backoff_max_ms
        )
        while True:
            try:
                return self._network.call(
                    api,
                    resolve_leader(),
                    fn,
                    base_cost_ms=cost,
                    src=self.config.client_id,
                )
            except ProducerFencedError:
                raise
            except RetriableError as exc:
                rec = self.cluster.recovery
                if rec is not None:
                    rec.note_detection(
                        "coordinator_retry",
                        client=self.config.client_id,
                        api=api,
                    )
                remaining = deadline - self._clock.now
                if remaining <= 0:
                    raise MaxBlockTimeoutError(
                        f"{api} for {self.config.transactional_id!r} blocked "
                        f"longer than max_block_ms={self.config.max_block_ms}"
                    ) from exc
                self._clock.advance(min(backoff.next_delay_ms(), remaining))

    def init_transactions(self) -> None:
        """Register the transactional id with the coordinator (Figure 4.b)."""
        if not self.transactional:
            raise InvalidTxnStateError("producer has no transactional_id")
        tid = self.config.transactional_id
        coordinator = self.cluster.txn_coordinator
        self.producer_id, self.producer_epoch = self._call_coordinator(
            "init_producer_id",
            lambda: self.cluster.leader_of(coordinator.txn_log_partition(tid)),
            lambda: coordinator.init_producer_id(
                tid, self.config.transaction_timeout_ms
            ),
            cost=self._network.coordinator_cost(),
        )
        # A re-registration (e.g. recovery after a crash) starts from a
        # clean slate: any client-side remnants of a previous incarnation's
        # open transaction are dropped (the coordinator has aborted it).
        self._sequences.clear()
        self._pending.clear()
        self._in_transaction = False
        self._txn_registered_partitions = set()
        self._txn_unregistered = set()
        self._initialized_transactions = True

    def begin_transaction(self) -> None:
        self._require_txn_ready()
        if self._in_transaction:
            raise InvalidTxnStateError("a transaction is already in progress")
        self._in_transaction = True
        self._txn_registered_partitions = set()
        self._txn_unregistered = set()

    @property
    def transaction_has_work(self) -> bool:
        """True when the open transaction has sent or buffered anything —
        i.e. committing it would not be a no-op. Drivers use this to decide
        whether a commit-interval wake timer is worth arming."""
        return self._in_transaction and bool(
            self._pending or self._txn_registered_partitions or self._txn_unregistered
        )

    @property
    def has_buffered_records(self) -> bool:
        """True when unflushed sends are sitting in the client buffer."""
        return bool(self._pending)

    def send_offsets_to_transaction(
        self,
        offsets: Dict[TopicPartition, int],
        group_id: str,
        member_id: Optional[str] = None,
        generation: Optional[int] = None,
    ) -> None:
        """Fold the consumer's progress into the ongoing transaction.

        The offsets are appended to the consumer-offsets topic with this
        producer's id, so they commit or abort with the transaction — the
        atomic third leg of the read-process-write cycle (Section 4.2).

        Passing ``member_id``/``generation`` (the consumer's group metadata)
        enables group-generation fencing: a commit from a member that was
        kicked out of the group is rejected, which is how a zombie streams
        instance is fenced when per-thread producers are shared across
        tasks (Kafka 2.5+ exactly-once).
        """
        self._require_txn_ready()
        if not self._in_transaction:
            raise InvalidTxnStateError("no transaction in progress")
        group_coord = self.cluster.group_coordinator
        offsets_tp = group_coord.offsets_partition(group_id)
        self._register_txn_partition(offsets_tp)
        self._call_coordinator(
            "txn_offset_commit",
            lambda: self.cluster.leader_of(offsets_tp),
            lambda: group_coord.commit_offsets(
                group_id,
                offsets,
                member_id=member_id,
                generation=generation,
                producer_id=self.producer_id,
                producer_epoch=self.producer_epoch,
                transactional=True,
            ),
            cost=self._network.produce_cost(len(offsets)),
        )

    def commit_transaction(self) -> None:
        self._end_transaction(commit=True)

    def abort_transaction(self) -> None:
        self._end_transaction(commit=False)

    def _end_transaction(self, commit: bool) -> None:
        self._require_txn_ready()
        if not self._in_transaction:
            raise InvalidTxnStateError("no transaction in progress")
        self.flush()
        tid = self.config.transactional_id
        coordinator = self.cluster.txn_coordinator
        try:
            self._call_coordinator(
                "end_txn",
                lambda: self.cluster.leader_of(coordinator.txn_log_partition(tid)),
                lambda: coordinator.end_transaction(
                    tid, self.producer_id, self.producer_epoch, commit
                ),
                cost=self._network.coordinator_cost(),
            )
        finally:
            self._in_transaction = False
            self._txn_registered_partitions = set()

    def _require_txn_ready(self) -> None:
        if not self.transactional:
            raise InvalidTxnStateError("producer has no transactional_id")
        if not self._initialized_transactions:
            raise InvalidTxnStateError("init_transactions() has not been called")

    # -- metadata / leader routing ---------------------------------------------------

    def _check_routing_epoch(self) -> None:
        epoch = self.cluster.metadata_epoch
        if epoch != self._routing_epoch:
            self._metadata_cache.clear()
            self._leader_cache.clear()
            self._routing_epoch = epoch

    def _topic_metadata(self, topic: str) -> TopicMetadata:
        self._check_routing_epoch()
        meta = self._metadata_cache.get(topic)
        if meta is None:
            meta = self.cluster.topic_metadata(topic)
            self._metadata_cache[topic] = meta
        return meta

    def _leader_of(self, tp: TopicPartition) -> int:
        self._check_routing_epoch()
        leader = self._leader_cache.get(tp)
        if leader is None:
            leader = self.cluster.leader_of(tp)
            self._leader_cache[tp] = leader
        return leader

    # -- sending -------------------------------------------------------------------

    def send(
        self,
        topic: str,
        key: Any = None,
        value: Any = None,
        timestamp: Optional[float] = None,
        partition: Optional[int] = None,
        headers: Optional[Dict[str, Any]] = None,
    ) -> TopicPartition:
        """Buffer one record; batches flush when full or on ``flush()``.

        Returns the destination partition.
        """
        if self._closed:
            raise KafkaError("producer is closed")
        if self.transactional and not self._in_transaction:
            raise InvalidTxnStateError(
                "transactional producers must send within a transaction"
            )
        meta = self._topic_metadata(topic)
        if partition is None:
            partition = partition_for(key, meta.num_partitions)
        tp = TopicPartition(topic, partition)
        if self._in_transaction and tp not in self._txn_registered_partitions:
            self._txn_unregistered.add(tp)
        record_headers = dict(headers or {})
        if self._tracer.enabled and TRACE_ID_HEADER not in record_headers:
            # First send of a fresh record: root of its causal chain. Hops
            # (repartition, changelog, sink) keep the inherited id.
            record_headers[TRACE_ID_HEADER] = self._tracer.new_trace_id()
        bucket = self._pending.get(tp)
        if bucket is None:
            bucket = self._pending[tp] = _ColumnBuffer()
        bucket.keys.append(key)
        bucket.values.append(value)
        bucket.timestamps.append(
            self._clock.now if timestamp is None else timestamp
        )
        bucket.headers.append(record_headers)
        if len(bucket.keys) >= self.config.batch_max_records:
            self._register_pending_partitions()
            self._send_batch(tp, bucket)
            self._pending[tp] = _ColumnBuffer()
        return tp

    def send_columns(
        self,
        topic: str,
        partition: int,
        keys: List[Any],
        values: List[Any],
        timestamps: List[float],
        headers: List[Dict[str, Any]],
    ) -> TopicPartition:
        """Bulk-buffer a column chunk for one explicit partition.

        The batch-execution hot path lands here: sink and changelog chunks
        arrive as parallel columns and are appended by list extension —
        no per-record ``Record`` (or even per-record method call) exists
        between the operator and the broker log. Header dicts are taken by
        reference; callers hand over ownership.
        """
        if self._closed:
            raise KafkaError("producer is closed")
        if self.transactional and not self._in_transaction:
            raise InvalidTxnStateError(
                "transactional producers must send within a transaction"
            )
        tp = TopicPartition(topic, partition)
        if self._in_transaction and tp not in self._txn_registered_partitions:
            self._txn_unregistered.add(tp)
        bucket = self._pending.get(tp)
        if bucket is None:
            bucket = self._pending[tp] = _ColumnBuffer()
        bucket.keys.extend(keys)
        bucket.values.extend(values)
        bucket.timestamps.extend(timestamps)
        bucket.headers.extend(headers)
        if len(bucket.keys) >= self.config.batch_max_records:
            self._register_pending_partitions()
            self._send_batch(tp, bucket)
            self._pending[tp] = _ColumnBuffer()
        return tp

    def flush(self) -> None:
        """Send every buffered batch and await acknowledgements."""
        self._register_pending_partitions()
        for tp, bucket in list(self._pending.items()):
            if bucket:
                self._send_batch(tp, bucket)
        self._pending.clear()

    def _register_pending_partitions(self) -> None:
        if not self._txn_unregistered:
            return
        batch = sorted(self._txn_unregistered)
        self._register_txn_partitions(batch)
        self._txn_unregistered.clear()

    def _register_txn_partition(self, tp: TopicPartition) -> None:
        if tp in self._txn_registered_partitions:
            return
        self._register_txn_partitions([tp])

    def _register_txn_partitions(self, partitions: List[TopicPartition]) -> None:
        tid = self.config.transactional_id
        coordinator = self.cluster.txn_coordinator
        # One batched RPC; its cost grows only marginally with the number
        # of partitions registered. CONCURRENT_TRANSACTIONS (the previous
        # transaction's markers still landing) is retriable like any other
        # transient coordinator failure.
        cost = self._network.coordinator_cost() + 0.002 * len(partitions)
        self._call_coordinator(
            "add_partitions_to_txn",
            lambda: self.cluster.leader_of(coordinator.txn_log_partition(tid)),
            lambda: coordinator.add_partitions(
                tid, self.producer_id, self.producer_epoch, partitions
            ),
            cost=cost,
        )
        self._txn_registered_partitions.update(partitions)

    def _send_batch(self, tp: TopicPartition, bucket: _ColumnBuffer) -> None:
        base_sequence = NO_SEQUENCE
        if self.producer_id != -1:
            base_sequence = self._sequences.get(tp, 0)
        record_count = len(bucket.keys)
        # The slab takes ownership of the buffer's column lists; callers
        # replace the buffer after a send. Retries reuse the same slab (and
        # base sequence), so the broker can de-duplicate.
        batch = ColumnarSlab(
            keys=bucket.keys,
            values=bucket.values,
            timestamps=bucket.timestamps,
            headers=bucket.headers,
            producer_id=self.producer_id,
            producer_epoch=self.producer_epoch,
            base_sequence=base_sequence,
            is_transactional=self._in_transaction,
        )
        # Retriable failures (timeouts, leaderless partitions, ISR below
        # min) are ridden out with exponential backoff until either the
        # attempt cap or the delivery deadline is hit. Backoff advances the
        # virtual clock, so recovery scheduled on timers — a broker
        # restart, a fault rule expiring — happens *during* the wait.
        deadline = self._clock.now + self.config.delivery_timeout_ms
        backoff = ExponentialBackoff(
            self.config.retry_backoff_ms, self.config.retry_backoff_max_ms
        )
        attempts = 0
        send_started = self._clock.now if self._tracer.enabled else 0.0
        while True:
            try:
                leader = self._leader_of(tp)
                self._network.call(
                    "produce",
                    leader,
                    lambda: self.cluster.handle_produce(tp, batch, self.config.acks),
                    base_cost_ms=self._network.produce_cost(record_count),
                    src=self.config.client_id,
                )
                break
            except ProducerFencedError:
                raise
            except RetriableError:
                attempts += 1
                self.retries_performed += 1
                rec = self.cluster.recovery
                if rec is not None:
                    rec.note_detection(
                        "send_retry", client=self.config.client_id, tp=str(tp)
                    )
                remaining = deadline - self._clock.now
                if attempts > self.config.retries or remaining <= 0:
                    raise
                # Metadata refresh + backoff before the retry: the cached
                # route is suspect even if the cluster epoch is unchanged.
                self._leader_cache.pop(tp, None)
                self._clock.advance(min(backoff.next_delay_ms(), remaining))
        if base_sequence != NO_SEQUENCE:
            self._sequences[tp] = base_sequence + record_count
        if self._tracer.enabled:
            # Acked-produce latency, labeled per partition (includes any
            # retries/backoff this batch rode through).
            self.cluster.metrics.histogram(
                "produce_latency_ms", topic=tp.topic, partition=tp.partition
            ).observe(self._clock.now - send_started)
        self.records_sent += record_count
        self.batches_sent += 1

    def close(self) -> None:
        if self._closed:
            return
        if self._in_transaction:
            try:
                self.abort_transaction()
            except KafkaError:
                pass
        else:
            self.flush()
        self._closed = True
