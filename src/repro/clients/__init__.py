"""Client-side APIs: producer (idempotent/transactional), consumer, admin."""

from repro.clients.producer import Producer
from repro.clients.consumer import Consumer
from repro.clients.admin import AdminClient

__all__ = ["Producer", "Consumer", "AdminClient"]
