"""Discrete-event driver coordinating pollable actors on one SimClock.

Before this module existed every engine in the repro drove itself with a
blind polling loop: step, and if nothing happened, tick the clock 1 ms and
try again (``idle_advance_ms``). That wastes thousands of no-op cycles
between commit intervals and makes it impossible to run two engines — say a
Streams app and the checkpoint baseline — against one cluster on one
deterministic timeline.

The :class:`Driver` replaces those loops with standard discrete-event
scheduling. *Actors* (duck-typed: ``poll() -> int`` records processed, plus
an optional ``flush()`` for end-of-run commits) register with the driver;
time-driven behaviour (commit intervals, punctuations, checkpoint
intervals, async marker writes) registers *wake* timers on the shared
:class:`~repro.sim.clock.SimClock`. One driver cycle polls every actor;
when all of them report no progress the driver flushes pending work and
jumps the clock directly to the next wake deadline instead of creeping
toward it. Idle time is free, and the amount skipped is observable via
:attr:`Driver.idle_skipped_ms`.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.obs.tracer import NOOP_TRACER, Tracer
from repro.sim.clock import SimClock

# After the final flush, transaction markers written asynchronously (the
# coordinator schedules them a few network-RTTs out) must still land for
# committed output to become visible to read_committed consumers. The
# driver settles wake deadlines within this horizon after flushing.
SETTLE_HORIZON_MS = 50.0


class Driver:
    """Runs registered actors to completion on a shared virtual clock.

    An *actor* is any object with ``poll() -> int`` returning how many
    records it processed (0 = idle this cycle). Actors may also expose
    ``flush()`` — called when the driver finds every actor idle, before
    concluding the run — to commit open transactions / emit buffered
    output. Registration order is poll order, so runs are deterministic.
    """

    def __init__(self, clock: SimClock, tracer: Optional[Tracer] = None) -> None:
        self.clock = clock
        # Scheduler-level trace events (idle jumps, flush passes) land on
        # the same timeline as the components'; defaults to a no-op. An
        # explicit None check: Tracer defines __len__, so a tracer with no
        # spans yet is falsy and `tracer or NOOP_TRACER` would discard it.
        self.tracer = NOOP_TRACER if tracer is None else tracer
        self._actors: List[Any] = []
        # Observability: how much work the scheduler did and how much idle
        # time it skipped (the figure benches report these).
        self.cycles = 0
        self.records_processed = 0
        self.idle_jumps = 0
        self.idle_skipped_ms = 0.0
        self.flushes = 0

    # -- actor registry ---------------------------------------------------------------

    def register(self, actor: Any) -> Any:
        """Add an actor (idempotent); returns it for chaining."""
        if actor not in self._actors:
            self._actors.append(actor)
        return actor

    def unregister(self, actor: Any) -> None:
        if actor in self._actors:
            self._actors.remove(actor)

    @property
    def actors(self) -> List[Any]:
        return list(self._actors)

    # -- core cycle -------------------------------------------------------------------

    def poll_all(self) -> int:
        """One scheduler cycle: poll every actor once, in registration order."""
        self.cycles += 1
        processed = 0
        for actor in list(self._actors):
            processed += actor.poll()
        self.records_processed += processed
        return processed

    def flush_all(self) -> None:
        """Ask every actor to commit/emit pending work (if it supports it)."""
        self.flushes += 1
        if self.tracer.enabled:
            self.tracer.event(
                "driver.flush", "driver", "scheduler", category="driver"
            )
        for actor in list(self._actors):
            flush = getattr(actor, "flush", None)
            if flush is not None:
                flush()

    def _jump_to_next_wake(self, limit_ms: float = float("inf")) -> bool:
        """Advance the clock to the next wake deadline (capped at
        ``limit_ms``); returns False when there is nothing to jump to."""
        deadline = self.clock.next_wake_deadline()
        if deadline is None or deadline > limit_ms:
            return False
        skip = max(0.0, deadline - self.clock.now)
        if self.tracer.enabled and skip > 0:
            # Recorded as a span covering the skipped gap, so Perfetto shows
            # idle time as explicit blocks on the driver track.
            span = self.tracer.begin("driver.idle_jump", "driver", "scheduler",
                                     category="driver", skipped_ms=round(skip, 3))
            self.clock.advance_to(deadline)
            span.end()
        else:
            self.clock.advance_to(deadline)
        self.idle_jumps += 1
        self.idle_skipped_ms += skip
        return True

    def _settle(self) -> None:
        """Land near-term async effects (marker writes) after a flush."""
        horizon = self.clock.now + SETTLE_HORIZON_MS
        while self._jump_to_next_wake(limit_ms=horizon):
            pass

    # -- run loops --------------------------------------------------------------------

    def run_until_idle(self, max_cycles: int = 10_000, idle_jump_limit: int = 2) -> int:
        """Poll actors until no work remains, jumping idle gaps.

        Each cycle polls every actor. When a full cycle processes nothing,
        the driver flushes (commits buffered input downstream) and re-polls;
        if still nothing, it jumps the clock to the next wake deadline —
        a pending commit interval, punctuation, or in-flight marker write —
        and tries again. After ``idle_jump_limit`` consecutive unproductive
        jumps (or when no wake deadline exists) the run concludes with a
        final flush/poll/flush pass so deferred speculative commits and
        their cascading outcomes land. Returns total records processed.
        """
        total = 0
        idle_streak = 0
        for _ in range(max_cycles):
            processed = self.poll_all()
            if processed == 0:
                self.flush_all()
                self._settle()
                processed = self.poll_all()
            if processed == 0:
                if idle_streak >= idle_jump_limit or not self._jump_to_next_wake():
                    break
                idle_streak += 1
            else:
                idle_streak = 0
                total += processed
        # Final pass: a flush can unblock downstream actors (committed
        # markers make read_committed data visible; deferred speculative
        # commits resolve), so poll again and flush once more.
        for _ in range(2):
            self.flush_all()
            self._settle()
            total += self.poll_all()
        self.flush_all()
        self._settle()
        return total

    def run_for(self, duration_ms: float, max_cycles: int = 1_000_000) -> int:
        """Run actors until the clock has advanced ``duration_ms``.

        Idle gaps are jumped to the next wake deadline (or straight to the
        end of the window when no deadline lies within it) rather than
        crept through. Does not conclude with a flush: partial intervals
        stay uncommitted, exactly as a wall-clock run would leave them.
        """
        deadline = self.clock.now + duration_ms
        total = 0
        for _ in range(max_cycles):
            if self.clock.now >= deadline:
                break
            processed = self.poll_all()
            total += processed
            if processed == 0 and self.clock.now < deadline:
                if not self._jump_to_next_wake(limit_ms=deadline):
                    self.idle_skipped_ms += deadline - self.clock.now
                    self.clock.advance_to(deadline)
        return total

    # -- reporting --------------------------------------------------------------------

    def stats(self) -> dict:
        """Counters for benchmark reporting."""
        return {
            "cycles": self.cycles,
            "records_processed": self.records_processed,
            "idle_jumps": self.idle_jumps,
            "idle_skipped_ms": round(self.idle_skipped_ms, 3),
            "flushes": self.flushes,
        }
