"""Network RPC layer: latency cost model and fault injection.

Every client→broker and broker→broker interaction in the repro stack is a
synchronous Python call routed through :meth:`Network.call`. The network

* charges a virtual-time latency for the round trip (request + response),
  sized by the RPC kind — this is what makes throughput/latency benchmarks
  meaningful;
* can inject the failure scenarios of Section 2.1 of the paper, most
  importantly the *lost acknowledgement*: the remote operation **is applied**
  but the caller sees a :class:`~repro.errors.RequestTimeoutError` and will
  retry, producing a duplicate send that only idempotence can de-duplicate.

Latencies are deterministic: a seeded RNG adds bounded jitter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import BrokerUnavailableError, RequestTimeoutError
from repro.metrics.registry import MetricsRegistry
from repro.obs.tracer import NOOP_TRACER, Tracer
from repro.sim.clock import SimClock


@dataclass
class NetworkCosts:
    """Virtual-time cost model (milliseconds) for RPC kinds.

    The defaults are calibrated so that the Figure 5 benchmarks land in the
    same regime as the paper's i3.large testbed: a produce round trip below
    a millisecond (batched appends, page-cache writes), coordinator round
    trips of the same order, and per-partition transaction-marker writes
    that make end-to-end latency grow linearly with the number of output
    partitions.
    """

    rpc_base_ms: float = 0.25          # request/response framing + queueing
    produce_per_batch_ms: float = 0.15  # leader append of one batch
    produce_per_record_us: float = 1.0  # marginal per-record append cost (µs)
    fetch_ms: float = 0.20             # consumer/replica fetch round trip
    coordinator_ms: float = 2.0        # txn/group coordinator round trip
                                       # (replicated metadata update)
    marker_write_ms: float = 0.30      # one txn marker append to one partition
    jitter_frac: float = 0.10          # +/- fraction of uniform jitter

    def sample(self, rng: random.Random, base_ms: float) -> float:
        """Latency with deterministic jitter applied."""
        if base_ms <= 0:
            return 0.0
        jitter = base_ms * self.jitter_frac
        return base_ms + rng.uniform(-jitter, jitter)


@dataclass
class FaultRule:
    """Declarative fault to inject on matching RPCs.

    ``kind`` selects the failure mode:

    * ``"drop_ack"`` — apply the operation, then raise RequestTimeoutError
      to the caller (the paper's delayed/lost acknowledgement).
    * ``"drop_request"`` — do *not* apply the operation; raise
      RequestTimeoutError (classic lost request).
    * ``"delay"`` — apply normally but add ``delay_ms`` extra latency.
    * ``"slow"`` — gray broker: like ``delay``, but sustained for
      ``duration_ms`` of virtual time instead of a trigger count.

    Rules expire either by trigger count (``count``, the default) or — when
    ``duration_ms`` is set — by virtual time: the rule stays active from
    arming until ``duration_ms`` later, however many RPCs it hits.

    ``match_src`` matches the caller's identity (a client id, as passed to
    :meth:`Network.call`), so one client↔broker link can be severed or
    degraded while other paths to the same broker proceed.
    """

    KINDS = ("drop_ack", "drop_request", "delay", "slow")

    kind: str
    match_api: Optional[str] = None     # e.g. "produce"; None matches any
    match_dst: Optional[int] = None     # broker id; None matches any
    match_src: Optional[str] = None     # caller identity; None matches any
    count: int = 1                      # how many matching RPCs to affect
    delay_ms: float = 0.0
    duration_ms: Optional[float] = None  # time-bounded instead of count-bounded
    triggered: int = field(default=0, init=False)
    armed_at_ms: float = field(default=0.0, init=False)

    def expired(self, now: float) -> bool:
        if self.duration_ms is not None:
            return now >= self.armed_at_ms + self.duration_ms
        return self.triggered >= self.count

    def matches(self, api: str, dst: int, src: Optional[str] = None,
                now: float = 0.0) -> bool:
        if self.expired(now):
            return False
        if self.match_api is not None and self.match_api != api:
            return False
        if self.match_dst is not None and self.match_dst != dst:
            return False
        if self.match_src is not None and self.match_src != src:
            return False
        return True


class Network:
    """Routes RPCs, charges virtual latency, and injects faults."""

    def __init__(
        self,
        clock: SimClock,
        costs: Optional[NetworkCosts] = None,
        seed: int = 17,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.clock = clock
        self.costs = costs or NetworkCosts()
        self.rng = random.Random(seed)
        self._rules: List[FaultRule] = []
        self._down: set = set()
        self.rpc_counts: Dict[str, int] = {}
        self.charge_latency = True
        # Injected-fault observability: chaos runs report what was actually
        # injected per kind and per api through the shared registry.
        self.metrics = metrics or MetricsRegistry()
        # The cluster that owns this network replaces the no-op tracer with
        # its own; RPC spans then cover exactly the latency charged here.
        self.tracer: Tracer = NOOP_TRACER

    # -- fault control -------------------------------------------------------

    def add_fault(self, rule: FaultRule) -> FaultRule:
        """Arm a fault rule; returns it so tests can inspect ``triggered``.

        Unknown kinds are rejected here, before any RPC can match the rule
        — not at dispatch time, where the rule would already have counted a
        trigger and charged latency. Duration-bounded rules start their
        active window at arming time.
        """
        if rule.kind not in FaultRule.KINDS:
            raise ValueError(
                f"unknown fault kind: {rule.kind!r} (expected one of {FaultRule.KINDS})"
            )
        if rule.kind == "slow" and rule.duration_ms is None:
            raise ValueError("slow (gray-broker) rules need duration_ms")
        if rule.duration_ms is not None and rule.duration_ms <= 0:
            raise ValueError(f"duration_ms must be > 0, got {rule.duration_ms}")
        rule.armed_at_ms = self.clock.now
        self._rules.append(rule)
        return rule

    def clear_faults(self) -> None:
        self._rules.clear()

    def active_faults(self) -> List[FaultRule]:
        """Rules that can still trigger (prunes expired ones)."""
        now = self.clock.now
        self._rules = [r for r in self._rules if not r.expired(now)]
        return list(self._rules)

    def fault_counts(self) -> Dict[str, int]:
        """Injected-fault counters (``network.faults.*``) from the registry."""
        return {
            name: value
            for name, value in self.metrics.counters().items()
            if name.startswith("network.faults.")
        }

    def set_broker_down(self, broker_id: int, down: bool = True) -> None:
        """Mark a broker unreachable (RPCs raise BrokerUnavailableError)."""
        if down:
            self._down.add(broker_id)
        else:
            self._down.discard(broker_id)

    def is_down(self, broker_id: int) -> bool:
        return broker_id in self._down

    # -- RPC dispatch ----------------------------------------------------------

    def call(
        self,
        api: str,
        dst: int,
        fn: Callable[[], Any],
        base_cost_ms: Optional[float] = None,
        src: Optional[str] = None,
    ) -> Any:
        """Invoke ``fn`` as an RPC of kind ``api`` against broker ``dst``.

        Charges round-trip latency on the shared clock and applies the first
        matching fault rule. The *lost ack* fault applies ``fn`` first, then
        raises — exactly the ambiguity a real sender faces. ``src`` is the
        caller's identity (client id), matched by link-level fault rules.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._dispatch(api, dst, fn, base_cost_ms, src)
        handle = tracer.begin(
            api, f"broker-{dst}", api, category="rpc", src=src or ""
        )
        try:
            return self._dispatch(api, dst, fn, base_cost_ms, src)
        except Exception as exc:
            handle.add(error=type(exc).__name__)
            raise
        finally:
            handle.end()

    def _dispatch(
        self,
        api: str,
        dst: int,
        fn: Callable[[], Any],
        base_cost_ms: Optional[float],
        src: Optional[str],
    ) -> Any:
        self.rpc_counts[api] = self.rpc_counts.get(api, 0) + 1
        if dst in self._down:
            raise BrokerUnavailableError(f"broker {dst} is down ({api})")

        cost = self.costs.rpc_base_ms if base_cost_ms is None else base_cost_ms
        rule = self._first_match(api, dst, src)
        if rule is not None:
            rule.triggered += 1
            self._count_fault(rule.kind, api)
            if rule.kind == "drop_request":
                self._charge(cost)
                raise RequestTimeoutError(f"{api} to broker {dst}: request lost")
            if rule.kind == "drop_ack":
                result = fn()
                del result  # applied, but the ack never arrives
                self._charge(cost)
                raise RequestTimeoutError(f"{api} to broker {dst}: ack lost")
            else:  # "delay" / "slow" — kinds are validated in add_fault
                self._charge(rule.delay_ms)

        result = fn()
        self._charge(cost)
        return result

    def _count_fault(self, kind: str, api: str) -> None:
        self.metrics.counter("network.faults.injected").increment()
        self.metrics.counter(f"network.faults.kind.{kind}").increment()
        self.metrics.counter(f"network.faults.api.{api}").increment()

    def _first_match(
        self, api: str, dst: int, src: Optional[str] = None
    ) -> Optional[FaultRule]:
        now = self.clock.now
        for rule in self._rules:
            if rule.matches(api, dst, src, now):
                return rule
        return None

    def _charge(self, base_ms: float) -> None:
        if not self.charge_latency:
            return
        self.clock.advance(self.costs.sample(self.rng, base_ms))

    # -- cost helpers used by brokers/clients ----------------------------------

    def produce_cost(self, record_count: int) -> float:
        """Latency of one produce request carrying ``record_count`` records."""
        per_record = self.costs.produce_per_record_us / 1000.0
        return (
            self.costs.rpc_base_ms
            + self.costs.produce_per_batch_ms
            + per_record * record_count
        )

    def fetch_cost(self) -> float:
        return self.costs.rpc_base_ms + self.costs.fetch_ms

    def coordinator_cost(self) -> float:
        return self.costs.rpc_base_ms + self.costs.coordinator_ms

    def marker_cost(self, partition_count: int) -> float:
        """Cost of writing txn markers to ``partition_count`` partitions.

        Markers to partitions on the same broker are batched into one RPC in
        Kafka; we approximate with a per-partition append cost plus one base.
        """
        return self.costs.rpc_base_ms + self.costs.marker_write_ms * partition_count
