"""Simulation substrate: virtual clock, scheduler, network costs, faults."""

from repro.sim.clock import SimClock
from repro.sim.network import FaultRule, Network, NetworkCosts
from repro.sim.failures import FailureInjector
from repro.sim.scheduler import Driver

__all__ = [
    "SimClock",
    "Driver",
    "Network",
    "NetworkCosts",
    "FaultRule",
    "FailureInjector",
]
