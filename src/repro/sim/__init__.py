"""Simulation substrate: virtual clock, scheduler, network costs, faults,
chaos orchestration, and invariant checking."""

from repro.sim.clock import SimClock
from repro.sim.network import FaultRule, Network, NetworkCosts
from repro.sim.failures import FailureInjector
from repro.sim.scheduler import Driver
from repro.sim.chaos import ALL_KINDS, ChaosConfig, ChaosController
from repro.sim.invariants import (
    ChangelogStateEquivalence,
    CommittedOutputEquality,
    HighWatermarkMonotonic,
    Invariant,
    InvariantSuite,
    InvariantViolation,
    ReadCommittedIsolation,
    ReplicaConsistency,
    committed_records,
)

__all__ = [
    "SimClock",
    "Driver",
    "Network",
    "NetworkCosts",
    "FaultRule",
    "FailureInjector",
    "ALL_KINDS",
    "ChaosConfig",
    "ChaosController",
    "Invariant",
    "InvariantSuite",
    "InvariantViolation",
    "HighWatermarkMonotonic",
    "ReplicaConsistency",
    "ReadCommittedIsolation",
    "ChangelogStateEquivalence",
    "CommittedOutputEquality",
    "committed_records",
]
