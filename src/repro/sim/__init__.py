"""Simulation substrate: virtual clock, network cost model, fault injection."""

from repro.sim.clock import SimClock
from repro.sim.network import FaultRule, Network, NetworkCosts
from repro.sim.failures import FailureInjector

__all__ = ["SimClock", "Network", "NetworkCosts", "FaultRule", "FailureInjector"]
