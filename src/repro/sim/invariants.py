"""Continuous invariant checking for chaos runs.

Each :class:`Invariant` is a pure observer: it reads broker/log state
directly (no network calls, no clock advancement) so evaluating it never
perturbs the simulation it is judging. The :class:`InvariantSuite` bundles
checkers and is evaluated by the chaos controller at safe points between
actor cycles and once more at teardown.

The invariants encode the paper's core claims:

* acknowledged data survives failures — replicas agree below the high
  watermark, and the high watermark never moves backwards
  (:class:`HighWatermarkMonotonic`, :class:`ReplicaConsistency`);
* read-committed consumers never observe aborted or still-open
  transactional data (:class:`ReadCommittedIsolation`, Section 4.2.3);
* a state store is exactly the materialized view of its changelog
  (:class:`ChangelogStateEquivalence`, Section 4);
* the committed output of a faulty run equals the output of a fault-free
  run — exactly-once end to end (:class:`CommittedOutputEquality`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.broker.fetch import fetch
from repro.broker.partition import TopicPartition
from repro.config import READ_COMMITTED
from repro.errors import StateStoreError
from repro.log.record import Record


class InvariantViolation(AssertionError):
    """A safety property the paper guarantees was observed broken."""


class Invariant:
    """Base class: a named, repeatedly evaluable safety property."""

    name = "invariant"
    # Some properties only hold at quiescence (e.g. output equality while
    # transactions are still open mid-run); those set final_only.
    final_only = False

    def check(self, cluster, final: bool = False) -> None:
        raise NotImplementedError

    def _fail(self, message: str) -> None:
        raise InvariantViolation(f"[{self.name}] {message}")


class HighWatermarkMonotonic(Invariant):
    """Per-partition high watermarks never regress.

    The high watermark only advances once every in-sync replica holds the
    data, so a regression would mean acknowledged records were lost — the
    exact failure mode acks=all + min.insync.replicas exists to prevent.
    """

    name = "hw-monotonic"

    def __init__(self) -> None:
        self._last_hw: Dict[TopicPartition, int] = {}

    def check(self, cluster, final: bool = False) -> None:
        for tp, state in cluster.partition_states().items():
            if state.leader is None:
                continue
            hw = state.leader_log().high_watermark
            last = self._last_hw.get(tp)
            if last is not None and hw < last:
                self._fail(
                    f"{tp}: high watermark regressed {last} -> {hw}"
                )
            self._last_hw[tp] = hw


class ReplicaConsistency(Invariant):
    """ISR membership and replica agreement.

    * The ISR only contains live brokers, and the leader (when one exists)
      is an ISR member — leadership never falls to a replica that might be
      missing acknowledged records (clean election only).
    * Every in-sync replica stores byte-identical records below the high
      watermark: the acknowledged prefix is the same log everywhere.
    """

    name = "replica-consistency"

    def check(self, cluster, final: bool = False) -> None:
        alive = set(cluster.alive_brokers())
        for tp, state in cluster.partition_states().items():
            dead_in_isr = state.isr - alive
            if dead_in_isr:
                self._fail(f"{tp}: dead brokers {sorted(dead_in_isr)} in ISR")
            if state.leader is None:
                continue
            if state.leader not in state.isr:
                self._fail(f"{tp}: leader {state.leader} not in ISR {sorted(state.isr)}")
            leader_log = state.leader_log()
            hw = leader_log.high_watermark
            for broker_id in state.isr:
                if broker_id == state.leader:
                    continue
                follower = state.replicas[broker_id]
                if follower.log_end_offset < hw:
                    self._fail(
                        f"{tp}: in-sync replica {broker_id} ends at "
                        f"{follower.log_end_offset}, below HW {hw}"
                    )
                start = max(
                    leader_log.log_start_offset, follower.log_start_offset
                )
                leader_records = leader_log.read(start, up_to_offset=hw)
                follower_records = follower.read(start, up_to_offset=hw)
                if len(leader_records) != len(follower_records):
                    self._fail(
                        f"{tp}: replica {broker_id} holds "
                        f"{len(follower_records)} records below HW, leader "
                        f"holds {len(leader_records)}"
                    )
                for lr, fr in zip(leader_records, follower_records):
                    if (
                        lr.offset != fr.offset
                        or lr.key != fr.key
                        or lr.value != fr.value
                        or lr.producer_id != fr.producer_id
                        or lr.sequence != fr.sequence
                    ):
                        self._fail(
                            f"{tp}: replica {broker_id} diverges from the "
                            f"leader at offset {lr.offset} (below HW {hw})"
                        )


class ReadCommittedIsolation(Invariant):
    """No aborted or open-transaction data behind a read-committed fetch.

    Re-fetches every user partition with ``read_committed`` and verifies
    each returned record independently against the log's transactional
    bookkeeping. Catches regressions in LSO gating and aborted-range
    filtering — deliberately breaking the filter makes this checker raise
    (see the regression tests).
    """

    name = "read-committed-isolation"

    def check(self, cluster, final: bool = False) -> None:
        for topic in cluster.user_topics():
            for tp in cluster.partitions_for(topic):
                state = cluster.partition_state(tp)
                if state.leader is None:
                    continue
                log = state.leader_log()
                result = fetch(
                    log,
                    log.log_start_offset,
                    max_records=2**31,
                    isolation_level=READ_COMMITTED,
                )
                try:
                    self.verify_records(log, result.records)
                except InvariantViolation as exc:
                    self._fail(f"{tp}: {exc}")

    @staticmethod
    def verify_records(log, records: List[Record]) -> None:
        """Assert ``records`` (as delivered to a read-committed consumer
        of ``log``) contain no marker, aborted, or open-transaction data.

        Static so regression tests can feed it records fetched with the
        isolation filter deliberately disabled and watch it raise.
        """
        lso = log.last_stable_offset
        open_txns = log.open_transactions()
        for record in records:
            if record.is_control:
                raise InvariantViolation(
                    f"control marker at offset {record.offset} delivered"
                )
            if log.is_offset_aborted(record.producer_id, record.offset):
                raise InvariantViolation(
                    f"aborted record at offset {record.offset} "
                    f"(producer {record.producer_id}) delivered"
                )
            if record.is_transactional:
                first_open = open_txns.get(record.producer_id)
                if (
                    first_open is not None and record.offset >= first_open
                ) or record.offset >= lso:
                    raise InvariantViolation(
                        f"open-transaction record at offset {record.offset} "
                        f"(producer {record.producer_id}, LSO {lso}) delivered"
                    )


class ChangelogStateEquivalence(Invariant):
    """A restored store equals an independent replay of its changelog.

    Attached to an app via :meth:`attach`, the checker observes every
    changelog restore (task creation and migration) and immediately
    rebuilds the same store from the changelog itself, comparing contents.
    At teardown — once every transaction has committed — it re-verifies
    every live key-value store against its changelog.
    """

    name = "changelog-state-equivalence"

    def __init__(self) -> None:
        self._apps: List[Any] = []
        self.restores_verified = 0

    def attach(self, app) -> "ChangelogStateEquivalence":
        def listener(
            task_id, store_name, store, changelog, partition, next_offset,
            from_offset=0,
        ):
            self._on_restore(
                app.cluster, task_id, store_name, store, changelog, partition
            )

        app.restore_listener = listener
        self._apps.append(app)
        return self

    def _on_restore(
        self, cluster, task_id, store_name, store, changelog_topic, partition
    ) -> None:
        if not hasattr(store, "all"):    # window stores: no flat view
            return
        expected = self._replay(cluster, changelog_topic, partition)
        actual = dict(store.all())
        if expected != actual:
            self._fail(
                f"task {task_id} store {store_name!r}: restored contents "
                f"differ from changelog replay of {changelog_topic}-{partition} "
                f"({len(actual)} keys restored vs {len(expected)} replayed)"
            )
        self.restores_verified += 1

    @staticmethod
    def _replay(cluster, changelog_topic: str, partition: int) -> Dict[Any, Any]:
        """Independent read-committed replay: latest value per key, with
        ``None`` as a tombstone."""
        tp = TopicPartition(changelog_topic, partition)
        log = cluster.partition_state(tp).leader_log()
        result = fetch(
            log,
            log.log_start_offset,
            max_records=2**31,
            isolation_level=READ_COMMITTED,
        )
        view: Dict[Any, Any] = {}
        for record in result.records:
            if record.value is None:
                view.pop(record.key, None)
            else:
                view[record.key] = record.value
        return view

    def check(self, cluster, final: bool = False) -> None:
        # Mid-run, stores legitimately run ahead of their changelogs (the
        # hook's appends sit in an open transaction or producer buffer), so
        # equality only holds at quiescence.
        if not final:
            return
        for app in self._apps:
            for instance in app.instances:
                if not instance.alive:
                    continue
                for task in instance.tasks.values():
                    for spec in task.sub.stores:
                        if not spec.changelog:
                            continue
                        # Read through the queryable-state facade: the same
                        # surface interactive queries use, so the invariant
                        # also exercises the read path.
                        try:
                            view = task.queryable_store(spec.name)
                            actual = dict(view.all())
                        except StateStoreError:
                            continue  # store kind without a scan surface
                        expected = self._replay(
                            app.cluster,
                            spec.changelog_topic(app.config.application_id),
                            task.task_id.partition,
                        )
                        if expected != actual:
                            self._fail(
                                f"task {task.task_id} store {spec.name!r}: "
                                f"final contents differ from changelog "
                                f"replay ({len(actual)} keys vs "
                                f"{len(expected)} replayed)"
                            )


class RebalanceContinuity(Invariant):
    """Processing continuity through (incremental) rebalances.

    The cooperative protocol's availability claim, as safety properties on
    the coordinator's ownership bookkeeping:

    * no source partition is ever assigned to two group members at once —
      the whole point of withholding moved partitions until the old owner
      acks (KIP-429);
    * a partition absent from *every* member's assignment is exactly one
      mid-handover (tracked in the group's unreleased map) — rebalancing
      never silently drops a partition, so records keep flowing through
      every task that is not itself being moved;
    * no handover gets stuck: an unreleased claim clears within
      ``max_handover_ms`` of virtual time (the old owner polls, commits
      and acks; a crashed owner's claims are released on eviction), and
      none survive to quiescence.
    """

    name = "rebalance-continuity"

    def __init__(self, max_handover_ms: float = 2_000.0) -> None:
        self.max_handover_ms = max_handover_ms
        self._apps: List[Any] = []
        # (group, tp, old owner) -> virtual time the claim was first seen.
        self._first_seen: Dict[Tuple[str, TopicPartition, str], float] = {}

    def attach(self, app) -> "RebalanceContinuity":
        self._apps.append(app)
        return self

    def check(self, cluster, final: bool = False) -> None:
        coordinator = cluster.group_coordinator
        now = cluster.clock.now
        live_claims = set()
        for app in self._apps:
            group = app.config.application_id
            snapshot = coordinator.assignment_snapshot(group)
            owners: Dict[TopicPartition, str] = {}
            for member_id, tps in snapshot.items():
                for tp in tps:
                    if tp in owners:
                        self._fail(
                            f"{group}: {tp} assigned to both "
                            f"{owners[tp]} and {member_id}"
                        )
                    owners[tp] = member_id
            unreleased = coordinator.unreleased_partitions(group)
            if snapshot and not coordinator.rebalance_pending(group):
                for topic in sorted(app.all_source_topics):
                    for tp in cluster.partitions_for(topic):
                        if tp not in owners and tp not in unreleased:
                            self._fail(
                                f"{group}: {tp} is owned by nobody and "
                                f"not mid-handover — it stopped flowing"
                            )
            for tp, member_id in unreleased.items():
                claim = (group, tp, member_id)
                live_claims.add(claim)
                first = self._first_seen.setdefault(claim, now)
                if final:
                    self._fail(
                        f"{group}: handover of {tp} from {member_id} "
                        f"never completed (pending since t={first:.0f}ms)"
                    )
                if now - first > self.max_handover_ms:
                    self._fail(
                        f"{group}: handover of {tp} from {member_id} stuck "
                        f"for {now - first:.0f}ms"
                    )
        self._first_seen = {
            claim: first
            for claim, first in self._first_seen.items()
            if claim in live_claims
        }


class CommittedOutputEquality(Invariant):
    """Committed output under faults equals the fault-free golden output.

    The end-to-end exactly-once claim: the multiset of (partition, key,
    value) records visible to a read-committed consumer is identical
    whether or not brokers crashed, leaders churned, and acks were lost
    mid-run — no record lost, none duplicated. Comparison is as a
    multiset, not a sequence: Kafka orders records per producer per
    partition, and fault-shifted scheduling legitimately interleaves
    *different* tasks' appends differently. Final-only — mid-run the
    faulty timeline is legitimately behind the golden one.
    """

    name = "committed-output-equality"
    final_only = True

    def __init__(self, golden: Dict[str, List[Tuple[int, Any, Any]]]) -> None:
        self.golden = golden

    def check(self, cluster, final: bool = False) -> None:
        if not final:
            return
        actual = committed_records(cluster, sorted(self.golden))
        for topic in sorted(self.golden):
            want = sorted(self.golden[topic], key=repr)
            got = sorted(actual.get(topic, []), key=repr)
            if want == got:
                continue
            extra = _multiset_diff(got, want)
            missing = _multiset_diff(want, got)
            self._fail(
                f"{topic}: committed output differs from the fault-free "
                f"run — {len(got)} records vs {len(want)} "
                f"(missing {missing[:3]}, unexpected {extra[:3]})"
            )


class FinalStateEquality(Invariant):
    """At-least-once convergence: latest committed value per (partition,
    key) equals the golden run's.

    ALOS legitimately *duplicates* effects under crashes (Figure 1's
    window between flushed outputs and the offset commit), so multiset
    equality is the wrong bar — but it must never *lose* acknowledged
    updates, and for an idempotent aggregation (e.g. a running max) the
    re-derived value per key converges to the fault-free one despite the
    replays. Final-only, like the multiset checker.
    """

    name = "final-state-equality"
    final_only = True

    def __init__(self, golden: Dict[str, List[Tuple[int, Any, Any]]]) -> None:
        self.golden = golden

    @staticmethod
    def _latest(rows: List[Tuple[int, Any, Any]]) -> Dict[Tuple[int, Any], Any]:
        """Last value per (partition, key) — rows are in offset order per
        partition, so a plain overwrite fold is the changelog collapse."""
        view: Dict[Tuple[int, Any], Any] = {}
        for partition, key, value in rows:
            view[(partition, key)] = value
        return view

    def check(self, cluster, final: bool = False) -> None:
        if not final:
            return
        actual = committed_records(cluster, sorted(self.golden))
        for topic in sorted(self.golden):
            want = self._latest(self.golden[topic])
            got = self._latest(actual.get(topic, []))
            if want == got:
                continue
            missing = sorted(
                (k for k in want if got.get(k) != want[k]), key=repr
            )
            extra = sorted((k for k in got if k not in want), key=repr)
            self._fail(
                f"{topic}: final per-key state differs from the fault-free "
                f"run — {len(missing)} keys wrong/missing "
                f"(e.g. {missing[:3]}), {len(extra)} unexpected "
                f"(e.g. {extra[:3]})"
            )


class MirrorPrefixEquality(Invariant):
    """The mirrored committed log is a prefix-equal translation of its
    source (the cross-cluster extension of replica consistency).

    For every partition of every mirrored topic, the target's
    read-committed ``(key, value)`` sequence must equal the first
    ``len(target)`` records of the source's — the mirror may be *behind*
    (link cut, lag) but never reordered, duplicated, or divergent, and
    never ahead of committed source data. Holds continuously, including
    mid-outage; with ``require_complete_final=True`` the final check also
    demands the mirror fully drained (no residual lag at quiescence).

    Only valid for topics the mirror is the sole writer of on the target
    — an application appending its own records there (e.g. its output
    topic after a failover) legitimately diverges from the source.
    """

    name = "mirror-prefix-equality"

    def __init__(
        self,
        source,
        target,
        topics: List[str],
        require_complete_final: bool = False,
    ) -> None:
        self.source = source
        self.target = target
        self.topics = sorted(topics)
        self.require_complete_final = require_complete_final

    def check(self, cluster, final: bool = False) -> None:
        # The chaos controller passes its own (single) cluster; this
        # invariant spans two and ignores the argument.
        del cluster
        for topic in self.topics:
            if not self.target.has_topic(topic):
                continue  # nothing mirrored yet
            for tp in self.source.partitions_for(topic):
                src = self._committed(self.source, tp)
                dst = self._committed(self.target, tp)
                if len(dst) > len(src):
                    self._fail(
                        f"{tp}: target holds {len(dst)} committed records, "
                        f"ahead of the source's {len(src)}"
                    )
                if dst != src[: len(dst)]:
                    diverge = next(
                        i for i, (d, s) in enumerate(zip(dst, src)) if d != s
                    )
                    self._fail(
                        f"{tp}: mirrored log diverges from source at "
                        f"offset {diverge}: target {dst[diverge]!r} vs "
                        f"source {src[diverge]!r}"
                    )
                if final and self.require_complete_final and len(dst) != len(src):
                    self._fail(
                        f"{tp}: mirror not drained at quiescence — "
                        f"{len(dst)} of {len(src)} records mirrored"
                    )

    @staticmethod
    def _committed(cluster, tp: TopicPartition) -> List[Tuple[Any, Any]]:
        state = cluster.partition_state(tp)
        if state.leader is None:
            return []
        log = state.leader_log()
        result = fetch(
            log,
            log.log_start_offset,
            max_records=2**31,
            isolation_level=READ_COMMITTED,
        )
        return [(r.key, r.value) for r in result.records]


def _multiset_diff(left: List[Any], right: List[Any]) -> List[Any]:
    """Elements of ``left`` beyond their multiplicity in ``right``."""
    remaining = list(right)
    extra = []
    for item in left:
        if item in remaining:
            remaining.remove(item)
        else:
            extra.append(item)
    return extra


def committed_records(
    cluster, topics: Optional[List[str]] = None
) -> Dict[str, List[Tuple[int, Any, Any]]]:
    """Every topic's read-committed contents as (partition, key, value)
    triples in offset order — the canonical form both sides of a golden
    comparison use."""
    out: Dict[str, List[Tuple[int, Any, Any]]] = {}
    for topic in topics if topics is not None else cluster.user_topics():
        rows: List[Tuple[int, Any, Any]] = []
        for tp in cluster.partitions_for(topic):
            state = cluster.partition_state(tp)
            if state.leader is None:
                continue
            log = state.leader_log()
            result = fetch(
                log,
                log.log_start_offset,
                max_records=2**31,
                isolation_level=READ_COMMITTED,
            )
            rows.extend(
                (tp.partition, r.key, r.value) for r in result.records
            )
        out[topic] = rows
    return out


class InvariantSuite:
    """A bundle of invariants evaluated together at safe points."""

    def __init__(self, invariants: Optional[List[Invariant]] = None) -> None:
        self.invariants: List[Invariant] = (
            list(invariants)
            if invariants is not None
            else [
                HighWatermarkMonotonic(),
                ReplicaConsistency(),
                ReadCommittedIsolation(),
            ]
        )
        self.checks_performed = 0

    def add(self, invariant: Invariant) -> "InvariantSuite":
        self.invariants.append(invariant)
        return self

    def check_all(self, cluster, final: bool = False) -> None:
        for invariant in self.invariants:
            if invariant.final_only and not final:
                continue
            invariant.check(cluster, final=final)
        self.checks_performed += 1
