"""Failure-scenario orchestration (the scenarios of Section 2.1).

Convenience wrappers that arm the failure modes the paper enumerates:
storage-engine failure (broker crash), stream-processor failure (instance
crash/restart — driven by the streams runtime), lost inter-processor acks
(network fault rules), and zombie instances (two producers sharing one
transactional id).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.sim.network import FaultRule

if TYPE_CHECKING:  # pragma: no cover
    from repro.broker.cluster import Cluster


class FailureInjector:
    """Scenario helpers bound to one cluster."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster

    # -- the storage engine can fail -------------------------------------------------

    def crash_broker(self, broker_id: int) -> None:
        self.cluster.crash_broker(broker_id)

    def restart_broker(self, broker_id: int) -> None:
        self.cluster.restart_broker(broker_id)

    def crash_brokers(self, broker_ids: List[int]) -> None:
        for broker_id in broker_ids:
            self.cluster.crash_broker(broker_id)

    # -- the inter-processor RPC can fail ---------------------------------------------

    def drop_next_produce_ack(self, count: int = 1, broker_id: Optional[int] = None) -> FaultRule:
        """The append is applied but the acknowledgement is lost: the
        producer will retry, and only idempotence prevents a duplicate."""
        return self.cluster.network.add_fault(
            FaultRule(kind="drop_ack", match_api="produce", match_dst=broker_id, count=count)
        )

    def drop_next_produce_request(
        self, count: int = 1, broker_id: Optional[int] = None
    ) -> FaultRule:
        """The produce request never arrives; the retry is the first append."""
        return self.cluster.network.add_fault(
            FaultRule(
                kind="drop_request", match_api="produce", match_dst=broker_id, count=count
            )
        )

    def delay_rpcs(self, api: str, delay_ms: float, count: int = 1) -> FaultRule:
        return self.cluster.network.add_fault(
            FaultRule(kind="delay", match_api=api, count=count, delay_ms=delay_ms)
        )

    def slow_broker(
        self, broker_id: int, delay_ms: float, duration_ms: float
    ) -> FaultRule:
        """Gray-broker degradation: every RPC to ``broker_id`` pays an extra
        ``delay_ms`` for the next ``duration_ms`` of virtual time."""
        return self.cluster.network.add_fault(
            FaultRule(
                kind="slow",
                match_dst=broker_id,
                delay_ms=delay_ms,
                duration_ms=duration_ms,
            )
        )

    def sever_link(
        self, client_id: str, broker_id: int, duration_ms: float
    ) -> FaultRule:
        """Cut one client↔broker path: requests from ``client_id`` to
        ``broker_id`` are lost for ``duration_ms`` while every other path
        keeps working."""
        return self.cluster.network.add_fault(
            FaultRule(
                kind="drop_request",
                match_src=client_id,
                match_dst=broker_id,
                duration_ms=duration_ms,
            )
        )

    def clear(self) -> None:
        self.cluster.network.clear_faults()

    def heal(self) -> None:
        """Full recovery: clear every armed network fault *and* restart all
        crashed brokers (``clear()`` alone leaves brokers down)."""
        self.clear()
        for broker_id in sorted(self.cluster.brokers):
            self.cluster.restart_broker(broker_id)
