"""Declarative fault scenarios over the chaos engine.

Where :class:`~repro.sim.chaos.ChaosController` draws a *random* fault
timeline from a seed, this layer names specific failure shapes — one
broker crash, rolling crashes, a coordinator kill, instance loss, a gray
broker, a severed link — as :class:`Scenario` values: a scripted
``(fraction-of-horizon, kind)`` event list plus chaos-config overrides.
*When* each fault fires is fully declarative; *what* it targets is still
drawn from the controller's seeded RNG, so a scenario is deterministic
per seed while varying its victims across seeds.

:class:`ScenarioHarness` runs one grid cell end to end on a fresh
cluster: install a :class:`~repro.obs.recovery.RecoveryTracker`, arm the
script, run the horizon, quiesce, converge back to the golden output
(stamping the ``catchup`` phase boundary), and evaluate the invariant
suite — with teardown that leaves nothing armed, so one process can
sweep the whole (scenario × commit interval × state size × seed) grid.

:class:`BarrierAppAdapter` duck-types a
:class:`~repro.barriers.engine.BarrierEngine` as a chaos "app" so the
same scenarios drive the checkpoint baseline: ``instance_crash`` kills
the job, the replacement repair restores it from its last checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.recovery import RecoveryTracker
from repro.sim.chaos import ChaosConfig, ChaosController, validate_kinds
from repro.sim.invariants import (
    Invariant,
    InvariantSuite,
    InvariantViolation,
)


@dataclass(frozen=True)
class Scenario:
    """A named fault shape: scripted events + chaos-config overrides.

    ``script`` entries are ``(fraction, kind)`` with the fraction relative
    to the run's horizon, so one scenario scales to any cell duration.
    """

    name: str
    description: str
    script: Tuple[Tuple[float, str], ...]
    config_overrides: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.script:
            raise ValueError(f"scenario {self.name!r} has an empty script")
        validate_kinds(tuple(kind for _, kind in self.script))
        for fraction, kind in self.script:
            if not 0.0 <= fraction < 1.0:
                raise ValueError(
                    f"scenario {self.name!r}: event fraction {fraction} for "
                    f"{kind!r} must be in [0, 1)"
                )

    def kinds(self) -> Tuple[str, ...]:
        """The distinct fault kinds this scenario injects, script order."""
        return tuple(dict.fromkeys(kind for _, kind in self.script))

    def events_for(self, horizon_ms: float) -> List[Tuple[float, str]]:
        """Concrete ``(delay_ms, kind)`` events for a horizon."""
        return [(fraction * horizon_ms, kind) for fraction, kind in self.script]


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "single_broker_crash",
            "one broker crashes mid-run and restarts",
            ((0.3, "broker_crash"),),
        ),
        Scenario(
            "rolling_broker_crashes",
            "three spaced broker crashes — a rolling outage",
            ((0.2, "broker_crash"), (0.45, "broker_crash"), (0.7, "broker_crash")),
        ),
        Scenario(
            "txn_coordinator_kill",
            "the transaction coordinator's broker is killed",
            ((0.3, "txn_coordinator_kill"),),
        ),
        Scenario(
            "group_coordinator_kill",
            "the group coordinator's broker is killed",
            ((0.3, "group_coordinator_kill"),),
        ),
        Scenario(
            "instance_loss",
            "a processing instance crashes and is replaced",
            ((0.3, "instance_crash"),),
        ),
        Scenario(
            "gray_broker",
            "a broker turns slow (gray) without dying, twice",
            ((0.2, "gray_broker"), (0.55, "gray_broker")),
            {"gray_delay_ms": 8.0, "gray_duration_ms": 400.0},
        ),
        Scenario(
            "severed_link",
            "a client's link to one broker is cut, twice",
            ((0.2, "link_fault"), (0.55, "link_fault")),
            {"link_duration_ms": 300.0},
        ),
        Scenario(
            "mirror_link_partition",
            "the inter-cluster mirror link partitions mid-run and heals",
            ((0.3, "mirror_link_partition"),),
            {"mirror_partition_ms": 400.0},
        ),
        Scenario(
            "mirror_link_flap",
            "the inter-cluster link flaps — repeated short cuts and heals",
            ((0.25, "mirror_link_flap"),),
            {"mirror_flap_count": 3, "mirror_flap_ms": 80.0},
        ),
        Scenario(
            "mirror_region_stress",
            "a link partition while the source region also loses a broker",
            ((0.2, "mirror_link_partition"), (0.35, "broker_crash")),
            {"mirror_partition_ms": 300.0},
        ),
    )
}


def resolve_scenario(scenario) -> Scenario:
    """Accept a scenario name or a :class:`Scenario` value."""
    if isinstance(scenario, Scenario):
        return scenario
    try:
        return SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r} (known: {sorted(SCENARIOS)})"
        ) from None


@dataclass(frozen=True)
class CellSpec:
    """One cell of the recovery grid."""

    scenario: str
    commit_interval_ms: float
    state_size: int
    seed: int


def grid(
    scenarios: Optional[List[str]] = None,
    commit_intervals: Tuple[float, ...] = (20.0, 80.0),
    state_sizes: Tuple[int, ...] = (8, 40),
    seeds: Tuple[int, ...] = (7, 11, 23),
) -> Iterator[CellSpec]:
    """The full cartesian sweep, deterministic iteration order."""
    for name in scenarios if scenarios is not None else sorted(SCENARIOS):
        resolve_scenario(name)
        for interval in commit_intervals:
            for size in state_sizes:
                for seed in seeds:
                    yield CellSpec(name, interval, size, seed)


@dataclass
class CellResult:
    """Outcome of one harness run: what fired, when it converged, and the
    tracker's phase decomposition (None when no fault actually applied,
    e.g. a kill scenario with no crashable candidate)."""

    scenario: str
    seed: int
    faults_injected: int
    converged: bool
    converged_at_ms: Optional[float]
    recovery: Optional[Dict[str, Any]]
    # Fired SLO alerts (dicts; see obs/health.py), when the harness was
    # built with a HealthMonitor — None when health monitoring is off.
    alerts: Optional[List[Dict[str, Any]]] = None


class ScenarioHarness:
    """Run one declarative scenario as a single, self-cleaning cell.

    ``app`` is anything the chaos controller can drive: a
    :class:`~repro.streams.KafkaStreams` app or a
    :class:`BarrierAppAdapter`. The caller owns cluster/app construction
    (cells want fresh ones) and workload production; the harness owns
    chaos wiring, the recovery tracker, convergence, and teardown.
    """

    def __init__(
        self,
        cluster,
        app,
        scenario,
        seed: int,
        invariants: Optional[InvariantSuite] = None,
        horizon_ms: float = 3_000.0,
        chaos_overrides: Optional[Dict[str, Any]] = None,
        health=None,
        mirror_links: Optional[List[Any]] = None,
    ) -> None:
        self.cluster = cluster
        self.app = app
        self.scenario = resolve_scenario(scenario)
        self.seed = seed
        self.horizon_ms = horizon_ms
        overrides = dict(self.scenario.config_overrides)
        overrides.update(chaos_overrides or {})
        self.config = ChaosConfig(
            horizon_ms=horizon_ms, kinds=self.scenario.kinds(), **overrides
        )
        self.tracker = RecoveryTracker(cluster.clock).install(cluster)
        # Optional HealthMonitor (repro.obs.health): installed on the
        # cluster now (so chaos debug bundles can attach its report) and
        # registered as an actor at arm() time, right after the chaos
        # controller — alerts then evaluate at the same safe points as
        # fault injection. Streams apps only (the watermark tracker walks
        # sub-topologies).
        self.health = health
        if health is not None:
            health.install()
        self.chaos = ChaosController(
            cluster,
            apps=[app],
            seed=seed,
            config=self.config,
            invariants=invariants,
            mirror_links=mirror_links,
        )
        self._armed = False

    # -- lifecycle -----------------------------------------------------------

    def arm(self) -> int:
        """Register the controller and schedule the scenario's script."""
        if self._armed:
            raise RuntimeError("harness already armed")
        self._armed = True
        self.app.driver.register(self.chaos)
        if self.health is not None:
            self.app.driver.register(self.health)
        return self.chaos.schedule_script(
            self.scenario.events_for(self.horizon_ms)
        )

    def run(
        self,
        golden_invariant: Optional[Invariant] = None,
        converge_rounds: int = 40,
        converge_advance_ms: float = 100.0,
        workload=None,
        workload_slices: int = 10,
    ) -> CellResult:
        """Arm, run past the last scripted fault, converge, final-check,
        tear down.

        ``golden_invariant`` (final-only, e.g. CommittedOutputEquality or
        FinalStateEquality) defines convergence: the first drain round in
        which it passes stamps the catchup boundary, so the measured gap
        is fault → genuine convergence, not fault → end-of-horizon.
        Natural repairs (broker restarts, instance replacements,
        transaction-timeout fencing) play out on their own timers during
        the converge rounds; quiesce only mops up afterwards.

        ``workload``, when given, is called with the slice index before
        each of ``workload_slices`` equal slices of the window from start
        to the *last scripted fault* — production finishes as the final
        fault lands, so faults hit an actively-processing app and the
        measured gap is backlog drain plus replay, never waiting on the
        generator (benchmarks use this; tests usually pre-produce).
        Teardown (uninstalling the tracker and deregistering the
        controller) runs even on invariant violations, so a sweeping
        process survives a failing cell intact.
        """
        try:
            self.arm()
            last_fault_ms = max(
                delay for delay, _ in self.scenario.events_for(self.horizon_ms)
            )
            if workload is not None:
                slice_ms = max(last_fault_ms / workload_slices, 1.0)
                for index in range(workload_slices):
                    workload(index)
                    self.app.run_for(slice_ms)
                # Through the last fault's safe-point application.
                self.app.run_for(1.0)
            else:
                # Through the last scripted fault's safe-point application.
                self.app.run_for(last_fault_ms + 1.0)
            converged, converged_at = self._converge(
                golden_invariant, converge_rounds, converge_advance_ms
            )
            self.chaos.quiesce()
            if not converged:
                # Everything healed by force; one full drain to settle.
                converged, converged_at = self._converge(golden_invariant, 8, 400.0)
            self.chaos.final_check()
            summary = None
            if self.tracker.fault_at is not None and self.tracker.recovered_at is not None:
                self.tracker.verify_telescoping()
                summary = self.tracker.summary()
            alerts = None
            if self.health is not None:
                alerts = [a.to_dict() for a in self.health.alerts]
            return CellResult(
                scenario=self.scenario.name,
                seed=self.seed,
                faults_injected=self.chaos.faults_injected,
                converged=converged,
                converged_at_ms=converged_at,
                recovery=summary,
                alerts=alerts,
            )
        finally:
            self.teardown()

    def _converge(
        self,
        golden_invariant: Optional[Invariant],
        rounds: int,
        advance_ms: float,
    ) -> Tuple[bool, Optional[float]]:
        """Drive bounded rounds until the golden invariant holds.

        Each round runs ``advance_ms`` of virtual time (letting repair
        and transaction-reaper timers fire), drains to idle, and tests
        the invariant. The first passing round stamps ``note_recovered``
        — the end of the catchup phase.
        """
        for _ in range(rounds):
            self.app.run_for(advance_ms)
            self.app.run_until_idle(max_steps=50_000)
            if golden_invariant is not None:
                try:
                    golden_invariant.check(self.cluster, final=True)
                except InvariantViolation:
                    self.cluster.clock.advance(advance_ms)
                    continue
            elif self.cluster.clock.now < self._quiet_until():
                continue
            if self.tracker.fault_at is not None:
                self.tracker.note_recovered()
            return True, self.cluster.clock.now
        return False, None

    def _quiet_until(self) -> float:
        """Without a golden reference, call the cell recovered once the
        last fault is at least a second in the past — long enough for
        repair timers and transaction timeouts at the default scales."""
        last = self.tracker.last_fault_at
        return (last or 0.0) + 1_000.0

    def teardown(self) -> None:
        """Leave the cluster with nothing armed: quiesced chaos, no
        tracker, no registered controller."""
        if not self.chaos._stopped:
            self.chaos.quiesce()
        self.app.driver.unregister(self.chaos)
        if self.health is not None:
            self.app.driver.unregister(self.health)
            self.health.uninstall()
        RecoveryTracker.uninstall(self.cluster)


class _AdapterConfig:
    """The ``config.application_id`` surface chaos bookkeeping expects."""

    def __init__(self, application_id: str) -> None:
        self.application_id = application_id


class BarrierAppAdapter:
    """Duck-types a :class:`BarrierEngine` as a chaos app.

    The engine is a single-process job, so the adapter is simultaneously
    the "app" and its only "instance": ``crash_instance`` kills the job
    (state and the open sink transaction are lost) and the controller's
    replacement repair calls :meth:`add_instance`, which recovers the job
    from its last completed checkpoint — the supervisor restart.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.cluster = engine.cluster
        self.config = _AdapterConfig(engine.job_name)
        self.all_source_topics = {engine.source_topic}
        self.instance_id = 0
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.engine.alive

    @property
    def instances(self) -> List["BarrierAppAdapter"]:
        return [self]

    @property
    def driver(self):
        return self.engine.driver

    def crash_instance(self, instance) -> None:
        self.engine.crash()

    def add_instance(self) -> "BarrierAppAdapter":
        self.engine.recover()
        self.restarts += 1
        return self

    def client_ids(self) -> List[str]:
        """Link faults target the job's source and sink clients."""
        return [
            f"{self.engine.job_name}-source",
            f"{self.engine.job_name}-sink",
        ]

    def run_for(self, duration_ms: float) -> int:
        return self.engine.run_for(duration_ms)

    def run_until_idle(self, max_steps: int = 10_000) -> int:
        # The driver's idle protocol already calls the engine's flush()
        # (committing any open sink transaction via a checkpoint).
        return self.engine.driver.run_until_idle(max_cycles=max_steps)
