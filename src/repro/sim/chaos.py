"""Deterministic chaos engine.

A :class:`ChaosController` turns one integer seed into a reproducible fault
timeline over virtual time: rolling broker crash/restarts, leadership
churn, coordinator kills, streams-instance crashes and replacements,
lost-ack bursts, gray (slow) brokers, and severed client↔broker links.

Determinism is structural, not best-effort:

* the *schedule* (when faults fire) is drawn up front from a seeded RNG
  and armed as wake timers on the shared :class:`~repro.sim.clock.SimClock`;
* timer callbacks only *enqueue* events — the controller is a registered
  driver actor, and events are applied in :meth:`poll`, i.e. at the same
  safe points every run (never mid-record inside another actor);
* *what* each fault targets is drawn from the same RNG at apply time, so
  identical schedules walk identical RNG states.

Every applied event is recorded in :attr:`timeline`; two runs with the
same seed and config produce identical timelines, and — the point of the
exercise — identical committed output (see
:class:`~repro.sim.invariants.CommittedOutputEquality`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.broker.partition import (
    CONSUMER_OFFSETS_TOPIC,
    TRANSACTION_STATE_TOPIC,
    TopicPartition,
)
from repro.obs.debug import dump_debug_bundle
from repro.sim.failures import FailureInjector
from repro.sim.invariants import (
    InvariantSuite,
    InvariantViolation,
    RebalanceContinuity,
)

# Inter-cluster faults: these act on federation mirror links (WAN paths),
# not on any single cluster, and require ``mirror_links`` to be handed to
# the controller — with none registered they are skipped like any other
# fault with no viable target.
MIRROR_KINDS = (
    "mirror_link_partition",
    "mirror_link_flap",
)

# The default draw repertoire: every fault a single-cluster run can
# inject. Trim via ChaosConfig.kinds to focus a run.
DEFAULT_KINDS = (
    "broker_crash",
    "leader_churn",
    "txn_coordinator_kill",
    "group_coordinator_kill",
    "instance_crash",
    "ack_drop",
    "gray_broker",
    "link_fault",
)

# The full fault repertoire (the validation universe). Mirror kinds are
# opt-in: they only make sense with mirror_links, so keeping them out of
# DEFAULT_KINDS means federating a run never perturbs the seeded RNG walk
# of existing single-cluster timelines.
ALL_KINDS = DEFAULT_KINDS + MIRROR_KINDS


@dataclass
class ChaosConfig:
    """Knobs for one chaos run. All times are virtual milliseconds."""

    # Mean of the exponential inter-arrival distribution between faults.
    mean_fault_interval_ms: float = 400.0
    # Faults are only scheduled within this window from schedule() time.
    horizon_ms: float = 5_000.0
    # Crashed brokers restart after a uniform delay in this range.
    broker_recovery_min_ms: float = 150.0
    broker_recovery_max_ms: float = 600.0
    # Crashed streams instances are replaced after this delay.
    instance_replace_delay_ms: float = 200.0
    # Gray-broker degradation: extra per-RPC delay and how long it lasts.
    gray_delay_ms: float = 8.0
    gray_duration_ms: float = 250.0
    # Severed client↔broker link duration.
    link_duration_ms: float = 200.0
    # Inter-cluster link partition duration (mirror_link_partition) and
    # flap shape (mirror_link_flap: cut/heal cycles of this width each).
    mirror_partition_ms: float = 250.0
    mirror_flap_count: int = 3
    mirror_flap_ms: float = 60.0
    # Lost-acknowledgement burst length.
    ack_drop_count: int = 3
    # Never take down more brokers than this at once: with RF=3 and
    # min.insync.replicas=2 one dead broker keeps every partition writable,
    # so progress (not just safety) survives the run.
    max_dead_brokers: int = 1
    # Evaluate the invariant suite at most once per this much virtual time.
    invariant_check_interval_ms: float = 100.0
    kinds: Tuple[str, ...] = DEFAULT_KINDS
    # Optional per-kind draw weights for schedule(); kinds absent from the
    # mapping draw with weight 1.0. Keys must name members of ``kinds``.
    kind_weights: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        # Eager validation, mirroring Network.add_fault: a typo'd scenario
        # fails at construction, not hundreds of virtual milliseconds into
        # a run when the mistyped kind is finally drawn.
        validate_kinds(self.kinds)
        if self.kind_weights is not None:
            unknown = sorted(set(self.kind_weights) - set(self.kinds))
            if unknown:
                raise ValueError(
                    f"kind_weights for kinds not in this config's repertoire: "
                    f"{unknown} (kinds: {tuple(self.kinds)})"
                )
            bad = {k: w for k, w in self.kind_weights.items() if not w > 0}
            if bad:
                raise ValueError(f"kind_weights must be > 0, got {bad}")
        if self.mean_fault_interval_ms <= 0:
            raise ValueError("mean_fault_interval_ms must be > 0")
        if self.horizon_ms <= 0:
            raise ValueError("horizon_ms must be > 0")
        if not 0 < self.broker_recovery_min_ms <= self.broker_recovery_max_ms:
            raise ValueError(
                "broker recovery delays must satisfy "
                "0 < broker_recovery_min_ms <= broker_recovery_max_ms"
            )
        if self.max_dead_brokers < 1:
            raise ValueError("max_dead_brokers must be >= 1")
        if self.mirror_partition_ms <= 0:
            raise ValueError("mirror_partition_ms must be > 0")
        if self.mirror_flap_count < 1:
            raise ValueError("mirror_flap_count must be >= 1")
        if self.mirror_flap_ms <= 0:
            raise ValueError("mirror_flap_ms must be > 0")


def validate_kinds(kinds: Iterable[str]) -> Tuple[str, ...]:
    """Reject unknown or empty fault-kind lists up front; returns a tuple."""
    kinds = tuple(kinds)
    if not kinds:
        raise ValueError("at least one fault kind is required")
    unknown = sorted(set(kinds) - set(ALL_KINDS))
    if unknown:
        raise ValueError(
            f"unknown fault kind(s): {unknown} (expected members of {ALL_KINDS})"
        )
    return kinds


class ChaosController:
    """Seeded fault scheduler, driven as an actor at safe points.

    Usage::

        suite = InvariantSuite()
        chaos = ChaosController(cluster, apps=[app], seed=7, invariants=suite)
        app.driver.register(chaos)
        chaos.schedule()
        app.run_for(chaos.config.horizon_ms)
        chaos.quiesce()                  # stop injecting, apply repairs
        app.run_until_idle()             # drain and commit
        chaos.final_check()              # invariants, with debug dump on failure
    """

    def __init__(
        self,
        cluster,
        apps: Optional[List[Any]] = None,
        seed: int = 0,
        config: Optional[ChaosConfig] = None,
        invariants: Optional[InvariantSuite] = None,
        mirror_links: Optional[List[Any]] = None,
    ) -> None:
        self.cluster = cluster
        self.apps = list(apps or [])
        self.seed = seed
        self.config = config or ChaosConfig()
        self.invariants = invariants
        # Accept MirrorLink actors or bare InterClusterLinks; faults act on
        # the underlying WAN path either way, deduplicated by identity (two
        # mirrors over one path share its single up/down state).
        links = []
        for entry in mirror_links or []:
            link = getattr(entry, "link", entry)
            if not any(link is seen for seen in links):
                links.append(link)
        self.mirror_links = links
        if not self.mirror_links and set(self.config.kinds) <= set(MIRROR_KINDS):
            raise ValueError(
                "config selects only inter-cluster fault kinds "
                f"{tuple(self.config.kinds)} but no mirror_links were given: "
                "this run could never inject anything"
            )
        if self.invariants is not None and self.apps:
            # Rebalance continuity is checked on every chaos run with apps:
            # instance crashes and replacements are rebalance storms, and
            # partitions must never be double-owned or silently dropped
            # whichever protocol the group negotiated.
            if not any(
                isinstance(inv, RebalanceContinuity)
                for inv in self.invariants.invariants
            ):
                continuity = RebalanceContinuity()
                for app in self.apps:
                    continuity.attach(app)
                self.invariants.add(continuity)
        self.injector = FailureInjector(cluster)
        self.rng = random.Random(seed)

        # (virtual time, human-readable description) of every APPLIED event.
        self.timeline: List[Tuple[float, str]] = []
        # (start_ms, end_ms, kind) per applied fault. The end is known at
        # injection time because every repair delay is drawn/configured up
        # front; instantaneous blips (ack_drop, leader_churn) get
        # zero-width windows. The health chaos matrix checks every
        # disruptive window overlaps at least one fired SLO alert.
        self.fault_windows: List[Tuple[float, float, str]] = []
        self.faults_injected = 0
        self.faults_skipped = 0

        self._pending: List[str] = []
        self._event_timers: List[Any] = []
        # broker_id -> restart timer; instance repairs as (app, timer);
        # inter-cluster link repairs/flap toggles as (link, timer).
        self._broker_repairs: dict = {}
        self._instance_repairs: List[Tuple[Any, Any]] = []
        self._link_repairs: List[Tuple[Any, Any]] = []
        self._stopped = False
        self._last_check_ms = cluster.clock.now

    # -- scheduling -------------------------------------------------------------------

    def schedule(self) -> int:
        """Draw the fault timeline for the configured horizon and arm it.

        Returns the number of scheduled events. Callable once per run.
        """
        clock = self.cluster.clock
        cfg = self.config
        t = 0.0
        count = 0
        weights = None
        if cfg.kind_weights is not None:
            weights = [cfg.kind_weights.get(k, 1.0) for k in cfg.kinds]
        while True:
            t += self.rng.expovariate(1.0 / cfg.mean_fault_interval_ms)
            if t >= cfg.horizon_ms:
                break
            if weights is None:
                kind = self.rng.choice(cfg.kinds)
            else:
                kind = self.rng.choices(cfg.kinds, weights=weights, k=1)[0]
            # The callback only enqueues; poll() applies at a safe point.
            timer = clock.schedule(t, lambda k=kind: self._pending.append(k))
            self._event_timers.append(timer)
            count += 1
        return count

    def schedule_script(self, events: Iterable[Tuple[float, str]]) -> int:
        """Arm an explicit ``(delay_ms, kind)`` fault script instead of
        (or in addition to) a random timeline — the substrate of the
        declarative scenario grid (:mod:`repro.sim.scenarios`).

        Delays are relative to now. *When* each fault fires is fully
        scripted; *what* it targets is still drawn from the seeded RNG at
        apply time, so a scenario stays deterministic per seed while
        varying its victims across seeds. Scripted events ride the same
        enqueue-then-apply-at-safe-point machinery as random ones
        (timeline, repair timers, quiesce)."""
        clock = self.cluster.clock
        count = 0
        for delay_ms, kind in sorted(events):
            validate_kinds((kind,))
            if delay_ms < 0:
                raise ValueError(f"script delays must be >= 0, got {delay_ms}")
            timer = clock.schedule(
                delay_ms, lambda k=kind: self._pending.append(k)
            )
            self._event_timers.append(timer)
            count += 1
        return count

    # -- actor protocol (repro.sim.scheduler.Driver) -----------------------------------

    def poll(self) -> int:
        """Apply any due fault events, then maybe run the invariant suite.

        Always returns 0: injecting faults is not processing progress, so
        the controller never keeps an otherwise-idle driver spinning.
        """
        while self._pending:
            kind = self._pending.pop(0)
            if not self._stopped:
                self._apply(kind)
        if self.invariants is not None:
            now = self.cluster.clock.now
            if now - self._last_check_ms >= self.config.invariant_check_interval_ms:
                self.check_invariants(final=False)
                self._last_check_ms = now
        return 0

    # -- invariant checking with failure forensics ---------------------------------------

    def check_invariants(self, final: bool = False) -> None:
        """Run the invariant suite; on violation, dump a debug bundle
        (span log, Chrome trace, metrics, fault timeline) and re-raise
        with the bundle path appended to the assertion message."""
        if self.invariants is None:
            return
        try:
            self.invariants.check_all(self.cluster, final=final)
        except InvariantViolation as exc:
            path = dump_debug_bundle(
                f"chaos-seed{self.seed}",
                self.cluster.tracer,
                registries={"cluster": self.cluster.metrics},
                timeline=self.timeline,
                health=getattr(self.cluster, "health", None),
            )
            raise InvariantViolation(f"{exc} [debug bundle: {path}]") from exc

    def final_check(self) -> None:
        """The end-of-run invariant pass (committed-output equality etc.)."""
        self.check_invariants(final=True)

    # -- event application ---------------------------------------------------------------

    def _record(self, description: str) -> None:
        self.timeline.append((self.cluster.clock.now, description))
        self.faults_injected += 1
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.event(
                "chaos.fault", "chaos", "faults", category="chaos",
                description=description,
            )
        rec = self.cluster.recovery
        if rec is not None:
            rec.note_fault(description)

    def _record_repair(self, description: str) -> None:
        self.timeline.append((self.cluster.clock.now, description))
        tracer = self.cluster.tracer
        if tracer.enabled:
            tracer.event(
                "chaos.repair", "chaos", "repairs", category="chaos",
                description=description,
            )

    def _skip(self, kind: str) -> None:
        self.faults_skipped += 1

    def _note_window(self, kind: str, duration_ms: float) -> None:
        now = self.cluster.clock.now
        self.fault_windows.append((now, now + duration_ms, kind))

    def _apply(self, kind: str) -> None:
        handler = getattr(self, f"_apply_{kind}")
        handler()

    def _crashable_brokers(self) -> List[int]:
        dead = [
            b for b in sorted(self.cluster.brokers)
            if not self.cluster.is_broker_alive(b)
        ]
        if len(dead) >= self.config.max_dead_brokers:
            return []
        return self.cluster.alive_brokers()

    def _crash_and_schedule_restart(self, broker_id: int, label: str) -> None:
        cfg = self.config
        self.cluster.crash_broker(broker_id)
        delay = self.rng.uniform(
            cfg.broker_recovery_min_ms, cfg.broker_recovery_max_ms
        )
        timer = self.cluster.clock.schedule(
            delay, lambda b=broker_id: self._restart_broker(b)
        )
        self._broker_repairs[broker_id] = timer
        self._note_window(label, delay)
        self._record(f"{label}: crash broker {broker_id} (restart +{delay:.0f}ms)")

    def _restart_broker(self, broker_id: int) -> None:
        self._broker_repairs.pop(broker_id, None)
        self.cluster.restart_broker(broker_id)
        self._record_repair(f"repair: restart broker {broker_id}")

    def _apply_broker_crash(self) -> None:
        candidates = self._crashable_brokers()
        if not candidates:
            return self._skip("broker_crash")
        broker_id = self.rng.choice(candidates)
        self._crash_and_schedule_restart(broker_id, "broker_crash")

    def _coordinator_leaders(self, topic: str) -> List[int]:
        leaders = set()
        for tp, state in self.cluster.partition_states().items():
            if tp.topic == topic and state.leader is not None:
                leaders.add(state.leader)
        return sorted(leaders)

    def _apply_txn_coordinator_kill(self) -> None:
        self._kill_coordinator(TRANSACTION_STATE_TOPIC, "txn_coordinator_kill")

    def _apply_group_coordinator_kill(self) -> None:
        self._kill_coordinator(CONSUMER_OFFSETS_TOPIC, "group_coordinator_kill")

    def _kill_coordinator(self, topic: str, label: str) -> None:
        crashable = set(self._crashable_brokers())
        candidates = [b for b in self._coordinator_leaders(topic) if b in crashable]
        if not candidates:
            return self._skip(label)
        self._crash_and_schedule_restart(self.rng.choice(candidates), label)

    def _apply_leader_churn(self) -> None:
        candidates = []
        for topic in self.cluster.user_topics():
            for tp in self.cluster.partitions_for(topic):
                state = self.cluster.partition_state(tp)
                if state.leader is not None and len(state.isr) > 1:
                    candidates.append(tp)
        if not candidates:
            return self._skip("leader_churn")
        tp = self.rng.choice(candidates)
        new_leader = self.cluster.transfer_leadership(tp)
        self._note_window("leader_churn", 0.0)
        self._record(f"leader_churn: {tp} -> broker {new_leader}")

    def _apply_instance_crash(self) -> None:
        candidates = [
            (app, instance)
            for app in self.apps
            for instance in app.instances
            if instance.alive
        ]
        if not candidates:
            return self._skip("instance_crash")
        app, instance = candidates[self.rng.randrange(len(candidates))]
        app.crash_instance(instance)
        delay = self.config.instance_replace_delay_ms
        timer = self.cluster.clock.schedule(
            delay, lambda a=app: self._replace_instance(a)
        )
        self._instance_repairs.append((app, timer))
        self._note_window("instance_crash", delay)
        self._record(
            f"instance_crash: {app.config.application_id} instance "
            f"{instance.instance_id} (replace +{delay:.0f}ms)"
        )

    def _replace_instance(self, app) -> None:
        self._instance_repairs = [
            (a, t) for a, t in self._instance_repairs if not (a is app and t.fired)
        ]
        instance = app.add_instance()
        self._record_repair(
            f"repair: add instance {instance.instance_id} to "
            f"{app.config.application_id}"
        )

    def _apply_ack_drop(self) -> None:
        count = self.config.ack_drop_count
        self.injector.drop_next_produce_ack(count=count)
        self._note_window("ack_drop", 0.0)
        self._record(f"ack_drop: next {count} produce acks lost")

    def _apply_gray_broker(self) -> None:
        alive = self.cluster.alive_brokers()
        if not alive:
            return self._skip("gray_broker")
        broker_id = self.rng.choice(alive)
        cfg = self.config
        self.injector.slow_broker(broker_id, cfg.gray_delay_ms, cfg.gray_duration_ms)
        self._note_window("gray_broker", cfg.gray_duration_ms)
        self._record(
            f"gray_broker: broker {broker_id} +{cfg.gray_delay_ms:.0f}ms/rpc "
            f"for {cfg.gray_duration_ms:.0f}ms"
        )

    def _client_ids(self) -> List[str]:
        ids = []
        for app in self.apps:
            # Non-streams actors wrapped as chaos apps (e.g. the barrier
            # engine adapter) report their own client ids.
            custom = getattr(app, "client_ids", None)
            if custom is not None:
                ids.extend(custom())
                continue
            for instance in app.instances:
                if instance.alive:
                    ids.append(
                        f"{app.config.application_id}-producer-{instance.instance_id}"
                    )
        return ids

    def _apply_link_fault(self) -> None:
        clients = self._client_ids()
        alive = self.cluster.alive_brokers()
        if not clients or not alive:
            return self._skip("link_fault")
        client = self.rng.choice(clients)
        broker_id = self.rng.choice(alive)
        self.injector.sever_link(client, broker_id, self.config.link_duration_ms)
        self._note_window("link_fault", self.config.link_duration_ms)
        self._record(
            f"link_fault: {client} x broker {broker_id} severed "
            f"for {self.config.link_duration_ms:.0f}ms"
        )

    def _apply_mirror_link_partition(self) -> None:
        candidates = [link for link in self.mirror_links if link.up]
        if not candidates:
            return self._skip("mirror_link_partition")
        link = self.rng.choice(candidates)
        duration = self.config.mirror_partition_ms
        link.partition()
        timer = self.cluster.clock.schedule(
            duration, lambda l=link: self._heal_link(l)
        )
        self._link_repairs.append((link, timer))
        self._note_window("mirror_link_partition", duration)
        self._record(
            f"mirror_link_partition: link {link.name} cut "
            f"(heal +{duration:.0f}ms)"
        )

    def _apply_mirror_link_flap(self) -> None:
        """Cut/heal the link ``mirror_flap_count`` times at a fixed cadence
        — the restart-heavy regime that stresses checkpoint replay and
        exactly-once resumption rather than one long outage."""
        candidates = [link for link in self.mirror_links if link.up]
        if not candidates:
            return self._skip("mirror_link_flap")
        link = self.rng.choice(candidates)
        cfg = self.config
        link.partition()
        # Toggle i fires at i*flap_ms: odd toggles heal, even ones re-cut;
        # the last index is odd, so the flap always ends healed.
        toggles = cfg.mirror_flap_count * 2 - 1
        for i in range(1, toggles + 1):
            timer = self.cluster.clock.schedule(
                i * cfg.mirror_flap_ms,
                lambda l=link, up=(i % 2 == 1): self._toggle_link(l, up),
            )
            self._link_repairs.append((link, timer))
        window = toggles * cfg.mirror_flap_ms
        self._note_window("mirror_link_flap", window)
        self._record(
            f"mirror_link_flap: link {link.name} x{cfg.mirror_flap_count} "
            f"cuts of {cfg.mirror_flap_ms:.0f}ms over {window:.0f}ms"
        )

    def _toggle_link(self, link, up: bool) -> None:
        if up and not link.up:
            link.heal()
        elif not up and link.up:
            link.partition()

    def _heal_link(self, link) -> None:
        self._link_repairs = [
            (l, t) for l, t in self._link_repairs if not (l is link and t.fired)
        ]
        if not link.up:
            link.heal()
            self._record_repair(f"repair: heal link {link.name}")

    # -- teardown ---------------------------------------------------------------------

    def quiesce(self) -> None:
        """Stop injecting and repair everything still broken.

        Cancels unfired fault timers, clears armed network faults, restarts
        every dead broker, and applies outstanding instance replacements —
        so the subsequent ``run_until_idle`` drains on a healthy cluster.
        """
        self._stopped = True
        for timer in self._event_timers:
            timer.cancel()
        self._pending.clear()
        for timer in self._broker_repairs.values():
            timer.cancel()
        self._broker_repairs.clear()
        self.injector.heal()            # clears faults + restarts brokers
        for _link, timer in self._link_repairs:
            timer.cancel()
        self._link_repairs.clear()
        for link in self.mirror_links:
            if not link.up:
                link.heal()
                self._record_repair(f"repair: heal link {link.name}")
        for app, timer in self._instance_repairs:
            if not timer.fired:
                timer.cancel()
                self._replace_instance(app)
        self._instance_repairs.clear()
        # Make sure every app still has at least one instance to drain with.
        for app in self.apps:
            if not app.instances:
                self._replace_instance(app)
