"""Virtual time.

Everything in the repro stack runs against a :class:`SimClock` instead of
wall-clock time. The clock only moves when something advances it: the
network charges RPC latencies, drivers advance it between poll cycles, and
benchmarks advance it to model processing cost. This makes every run
deterministic and lets latency experiments finish in milliseconds of real
time.

Times are floats in **milliseconds**, matching the units the paper uses for
commit intervals and end-to-end latencies.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class SimClock:
    """A manually advanced virtual clock with one-shot timers.

    Timers fire (in timestamp order) whenever the clock is advanced past
    their deadline. They are used for transaction timeouts, group session
    timeouts, and streams commit intervals.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = float(start_ms)
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance(self, delta_ms: float) -> None:
        """Move time forward by ``delta_ms`` milliseconds, firing timers."""
        if delta_ms < 0:
            raise ValueError(f"cannot move time backwards: {delta_ms}")
        self.advance_to(self._now + delta_ms)

    def advance_to(self, deadline_ms: float) -> None:
        """Move time forward to ``deadline_ms``, firing due timers in order."""
        if deadline_ms < self._now:
            raise ValueError(
                f"cannot move time backwards: now={self._now}, to={deadline_ms}"
            )
        while self._timers and self._timers[0][0] <= deadline_ms:
            fire_at, _, callback = heapq.heappop(self._timers)
            # Fire the timer at its own deadline so callbacks observe a
            # consistent "now".
            self._now = max(self._now, fire_at)
            callback()
        self._now = deadline_ms

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> "Timer":
        """Schedule ``callback`` to run ``delay_ms`` from now.

        Returns a :class:`Timer` handle that can be cancelled.
        """
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        timer = Timer(self, self._now + delay_ms, callback)
        heapq.heappush(self._timers, (timer.deadline, next(self._seq), timer._fire))
        return timer

    def pending_timers(self) -> int:
        """Number of scheduled (possibly cancelled) timers; for tests."""
        return len(self._timers)


class Timer:
    """Handle for a scheduled callback; cancellable."""

    def __init__(self, clock: SimClock, deadline: float, callback: Callable[[], None]):
        self._clock = clock
        self.deadline = deadline
        self._callback: Optional[Callable[[], None]] = callback
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self._callback = None

    @property
    def cancelled(self) -> bool:
        return self._callback is None and not self.fired

    def _fire(self) -> None:
        if self._callback is None:
            return
        callback, self._callback = self._callback, None
        self.fired = True
        callback()
