"""Virtual time.

Everything in the repro stack runs against a :class:`SimClock` instead of
wall-clock time. The clock only moves when something advances it: the
network charges RPC latencies, drivers advance it between poll cycles, and
benchmarks advance it to model processing cost. This makes every run
deterministic and lets latency experiments finish in milliseconds of real
time.

Times are floats in **milliseconds**, matching the units the paper uses for
commit intervals and end-to-end latencies.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class SimClock:
    """A manually advanced virtual clock with one-shot timers.

    Timers fire (in timestamp order) whenever the clock is advanced past
    their deadline. They are used for transaction timeouts, group session
    timeouts, streams commit intervals, punctuations, and checkpoint
    intervals.

    Timers come in two flavours. *Wake* timers (the default) represent
    deadlines after which new work becomes possible — a commit interval
    elapsing, a punctuation firing, an async marker write landing — and are
    what :class:`~repro.sim.scheduler.Driver` jumps the clock to when every
    actor is idle. *Housekeeping* timers (``wake=False``) are defensive
    deadlines such as transaction timeouts and group session expiry: they
    still fire during any advance that crosses them, but an idle driver does
    not fast-forward time just to reach them (a fully idle simulation should
    terminate rather than spin through every session timeout).
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = float(start_ms)
        self._timers: List[Tuple[float, int, "Timer"]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance(self, delta_ms: float) -> None:
        """Move time forward by ``delta_ms`` milliseconds, firing timers."""
        if delta_ms < 0:
            raise ValueError(f"cannot move time backwards: {delta_ms}")
        self.advance_to(self._now + delta_ms)

    def advance_to(self, deadline_ms: float) -> None:
        """Move time forward to ``deadline_ms``, firing due timers in order."""
        if deadline_ms < self._now:
            raise ValueError(
                f"cannot move time backwards: now={self._now}, to={deadline_ms}"
            )
        while self._timers and self._timers[0][0] <= deadline_ms:
            fire_at, _, timer = heapq.heappop(self._timers)
            # Fire the timer at its own deadline so callbacks observe a
            # consistent "now".
            self._now = max(self._now, fire_at)
            timer._fire()
        # A callback may itself have advanced the clock (e.g. by charging
        # network latency); never rewind below wherever it left us.
        self._now = max(self._now, deadline_ms)

    def schedule(
        self, delay_ms: float, callback: Callable[[], None], wake: bool = True
    ) -> "Timer":
        """Schedule ``callback`` to run ``delay_ms`` from now.

        ``wake=False`` marks the timer as housekeeping: it fires normally
        when time passes its deadline, but idle drivers do not jump the
        clock forward just to reach it. Returns a :class:`Timer` handle
        that can be cancelled.
        """
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        timer = Timer(self, self._now + delay_ms, callback, wake=wake)
        heapq.heappush(self._timers, (timer.deadline, next(self._seq), timer))
        return timer

    def next_wake_deadline(self) -> Optional[float]:
        """Deadline of the earliest pending *wake* timer, or ``None``.

        Cancelled entries at the top of the heap are pruned as a side
        effect; cancelled or housekeeping entries deeper in are skipped
        without being removed.
        """
        while self._timers and self._timers[0][2].cancelled:
            heapq.heappop(self._timers)
        best: Optional[float] = None
        for deadline, _, timer in self._timers:
            if timer.cancelled or not timer.wake:
                continue
            if best is None or deadline < best:
                best = deadline
        return best

    def pending_timers(self) -> int:
        """Number of scheduled (possibly cancelled) timers; for tests."""
        return len(self._timers)


class Timer:
    """Handle for a scheduled callback; cancellable."""

    def __init__(
        self,
        clock: SimClock,
        deadline: float,
        callback: Callable[[], None],
        wake: bool = True,
    ):
        self._clock = clock
        self.deadline = deadline
        self.wake = wake
        self._callback: Optional[Callable[[], None]] = callback
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self._callback = None

    @property
    def cancelled(self) -> bool:
        return self._callback is None and not self.fired

    def _fire(self) -> None:
        if self._callback is None:
            return
        callback, self._callback = self._callback, None
        self.fired = True
        callback()
