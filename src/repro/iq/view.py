"""QueryableStoreView: the read-only facade every interactive query uses.

The state layer's contract with the query layers above it (Section 6.1's
queryable-state idea): a view exposes point reads, range scans, and window
scans over one store, plus the store's changelog ``position()`` watermark —
so every read carries an explicit staleness bound instead of an implicit
"whatever the store happened to contain". Mutations are rejected: queries
never write through this facade, which is what lets standby replicas and
committed shadows serve the same API as active stores.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import StateStoreError


class QueryableStoreView:
    """Read-only view over a key-value or window store."""

    def __init__(self, store: Any) -> None:
        self._store = store

    @property
    def name(self) -> str:
        return self._store.name

    def position(self) -> int:
        """Changelog offset watermark of the underlying store: every read
        from this view reflects the changelog up to (not including) it."""
        return self._store.position()

    # -- key-value reads -------------------------------------------------------

    def get(self, key: Any) -> Any:
        return self._require("get")(key)

    def range(
        self, from_key: Optional[Any] = None, to_key: Optional[Any] = None
    ) -> List[Tuple[Any, Any]]:
        """Entries with from_key <= key <= to_key (None = unbounded), in
        the store's scan order. Keys must be mutually comparable when a
        bound is given."""
        entries = self._require("all")()
        if from_key is None and to_key is None:
            return list(entries)
        return [
            (key, value)
            for key, value in entries
            if (from_key is None or key >= from_key)
            and (to_key is None or key <= to_key)
        ]

    def all(self) -> Iterator[Tuple[Any, Any]]:
        return self._require("all")()

    def approximate_num_entries(self) -> int:
        return self._require("approximate_num_entries")()

    # -- window reads ----------------------------------------------------------

    def fetch(self, key: Any, window_start: float) -> Any:
        return self._require("fetch")(key, window_start)

    def fetch_key_windows(self, key: Any) -> List[Tuple[float, Any]]:
        return self._require("fetch_key_windows")(key)

    def fetch_range(
        self, key: Any, from_start: float, to_start: float
    ) -> List[Tuple[float, Any]]:
        return self._require("fetch_range")(key, from_start, to_start)

    # -- mutations are rejected ------------------------------------------------

    def put(self, *args: Any, **kwargs: Any) -> None:
        raise StateStoreError(
            f"store {self.name!r}: QueryableStoreView is read-only"
        )

    put_many = put
    delete = put
    restore_put = put

    def _require(self, op: str):
        method = getattr(self._store, op, None)
        if method is None:
            raise StateStoreError(
                f"store {self.name!r} does not support {op!r} queries"
            )
        return method

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryableStoreView({self.name!r}, "
            f"position={self._store.position()})"
        )
