"""QueryRouter: the client-side half of interactive queries.

Routes each query to the owning instance (or an acceptable standby) using
:class:`~repro.iq.metadata.MetadataService`, retries retriable rejections
with capped-exponential backoff, and scatter-gathers range scans across
every partition of a store.

Latency is *modelled*, not simulated: queries are answered off the stream
threads (a real deployment serves them from a REST handler pool), so the
router never advances the cluster clock — it accumulates the per-hop and
backoff costs arithmetically and reports them through the
``iq_query_latency_ms`` histogram. Processing therefore proceeds
identically with or without a query workload riding along, which keeps the
chaos matrix deterministic. The one exception is the strong path: catching
a committed shadow up replays changelog records, and that replay charges
restore latency like any other restore.

Retry policy mirrors the producer's coordinator client: on
``NotOwnedError`` the carried hint becomes the fresh metadata, on
``StaleEpochError`` metadata is re-fetched, on ``StaleStoreError`` the next
candidate is tried; between full candidate sweeps the router sleeps a
capped-exponential backoff (modelled), and after ``max_attempts`` sweeps it
surfaces ``QueryUnavailableError``.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import (
    NotOwnedError,
    QueryError,
    QueryUnavailableError,
    StaleEpochError,
    StaleStoreError,
)
from repro.iq.server import BOUNDED, QUERY_LOCAL_COST_MS, QueryResult, STRONG
from repro.util import ExponentialBackoff

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.runtime.app import KafkaStreams


class QueryRouter:
    """Fans interactive queries out to the instances that can serve them."""

    def __init__(
        self,
        app: "KafkaStreams",
        max_attempts: int = 8,
        retry_backoff_ms: float = 2.0,
        retry_backoff_max_ms: float = 64.0,
    ) -> None:
        self.app = app
        self.cluster = app.cluster
        self.metadata = app.metadata_service
        self.max_attempts = max_attempts
        self.retry_backoff_ms = retry_backoff_ms
        self.retry_backoff_max_ms = retry_backoff_max_ms
        metrics = self.cluster.metrics
        self._latency = metrics.histogram("iq_query_latency_ms")
        self._freshness = metrics.gauge("freshness_lag")
        self._queries = metrics.counter("iq.queries")
        self._retries = metrics.counter("iq.retries")
        self._failures = metrics.counter("iq.failures")

    # -- public query surface --------------------------------------------------

    def get(
        self,
        store: str,
        key: Any,
        consistency: str = BOUNDED,
        max_staleness: float = float("inf"),
    ) -> QueryResult:
        partition = self.metadata.partition_for_key(store, key)
        result, cost = self._query_partition(
            store,
            partition,
            consistency,
            lambda server, epoch: server.get(
                store,
                key,
                partition,
                consistency=consistency,
                max_staleness=max_staleness,
                epoch=epoch,
            ),
        )
        self._observe(cost, result.staleness)
        return result

    def window_fetch(
        self,
        store: str,
        key: Any,
        from_start: Optional[float] = None,
        to_start: Optional[float] = None,
        consistency: str = BOUNDED,
        max_staleness: float = float("inf"),
    ) -> QueryResult:
        partition = self.metadata.partition_for_key(store, key)
        result, cost = self._query_partition(
            store,
            partition,
            consistency,
            lambda server, epoch: server.window_fetch(
                store,
                key,
                partition,
                from_start=from_start,
                to_start=to_start,
                consistency=consistency,
                max_staleness=max_staleness,
                epoch=epoch,
            ),
        )
        self._observe(cost, result.staleness)
        return result

    def range_query(
        self,
        store: str,
        from_key: Optional[Any] = None,
        to_key: Optional[Any] = None,
        consistency: str = BOUNDED,
        max_staleness: float = float("inf"),
    ) -> List[Tuple[Any, Any]]:
        """Scatter-gather scan over every partition of ``store``.

        Per-partition sub-queries fan out concurrently, so the reported
        latency is the slowest partition's, not the sum."""
        rows: List[Tuple[Any, Any]] = []
        worst_cost = 0.0
        worst_staleness = 0.0
        for meta in self.metadata.all_partitions(store):
            result, cost = self._query_partition(
                store,
                meta.partition,
                consistency,
                lambda server, epoch, p=meta.partition: server.range_scan(
                    store,
                    p,
                    from_key=from_key,
                    to_key=to_key,
                    consistency=consistency,
                    max_staleness=max_staleness,
                    epoch=epoch,
                ),
            )
            rows.extend(result.value)
            worst_cost = max(worst_cost, cost)
            worst_staleness = max(worst_staleness, result.staleness)
        self._observe(worst_cost, worst_staleness)
        return sorted(rows, key=lambda kv: repr(kv[0]))

    def all(
        self,
        store: str,
        consistency: str = BOUNDED,
        max_staleness: float = float("inf"),
    ) -> List[Tuple[Any, Any]]:
        return self.range_query(
            store, consistency=consistency, max_staleness=max_staleness
        )

    # -- routing core ----------------------------------------------------------

    def _query_partition(
        self, store: str, partition: int, consistency: str, call
    ) -> Tuple[QueryResult, float]:
        """Run ``call`` against candidate instances until one answers.

        Returns (result, modelled latency in ms). ``call`` receives the
        candidate's QueryServer and the routing epoch the router believes
        is current — the server rejects a stale one, which is how a router
        caching metadata across rebalances discovers it must re-route."""
        meta = self.metadata.partition_metadata(store, partition)
        backoff = ExponentialBackoff(
            self.retry_backoff_ms, self.retry_backoff_max_ms
        )
        hop_cost = self.cluster.network.costs.rpc_base_ms
        elapsed = 0.0
        last_error: Optional[QueryError] = None
        for sweep in range(self.max_attempts):
            if sweep:
                self._retries.increment()
                elapsed += backoff.next_delay_ms()
            refreshed = False
            for instance in meta.candidates(
                allow_standbys=consistency != STRONG
            ):
                elapsed += hop_cost + QUERY_LOCAL_COST_MS
                try:
                    return call(instance.query_server, meta.epoch), elapsed
                except NotOwnedError as exc:
                    last_error = exc
                    if exc.hint is not None:
                        meta = exc.hint
                        refreshed = True
                        break  # fresh ownership data: start a new sweep
                except StaleEpochError as exc:
                    last_error = exc
                    meta = self.metadata.partition_metadata(store, partition)
                    refreshed = True
                    break
                except StaleStoreError as exc:
                    last_error = exc  # next candidate may be fresher
            if not refreshed:
                meta = self.metadata.partition_metadata(store, partition)
        self._failures.increment()
        raise QueryUnavailableError(
            f"query for store {store!r} partition {partition} failed after "
            f"{self.max_attempts} attempts: {last_error}"
        )

    def _observe(self, cost_ms: float, staleness: float) -> None:
        self._queries.increment()
        self._latency.observe(cost_ms)
        self._freshness.set(staleness)
