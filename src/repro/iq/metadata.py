"""MetadataService: (store, key) -> owning instance + standbys, with epochs.

Built on the group coordinator's assignment snapshots — the same ownership
bookkeeping the rebalance protocol maintains — rather than a parallel
registry that could drift. Every answer is stamped with the group's
generation as a **routing epoch**: a router caching metadata revalidates it
against the epoch and re-routes on mismatch, mirroring the epoch-keyed
metadata caches the producer/consumer clients use for leadership.

During a cooperative rebalance a migrating task transiently has no owner in
the snapshot (its partitions sit in the coordinator's unreleased map); the
service then reports the assignor's *intended* destination, which is
exactly the hint a retriable ``NotOwnedError`` should carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.streams.runtime.task import TaskId
from repro.util import partition_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.runtime.app import KafkaStreams
    from repro.streams.runtime.instance import StreamsInstance


@dataclass
class KeyQueryMetadata:
    """Where a (store, partition) can be served, at a routing epoch.

    ``cluster`` names the region whose coordinator issued the epoch:
    after a region failover the application re-registers with another
    cluster's coordinator, and a cached answer naming the old region is
    stale no matter what its epoch says.
    """

    store: str
    partition: int
    epoch: int
    owner: Optional["StreamsInstance"] = None
    standbys: List["StreamsInstance"] = field(default_factory=list)
    cluster: Optional[str] = None

    def candidates(self, allow_standbys: bool = True) -> List["StreamsInstance"]:
        """Instances to try, owner first (the only strong-read target)."""
        result = [] if self.owner is None else [self.owner]
        if allow_standbys:
            result.extend(self.standbys)
        return result


class MetadataService:
    """Routing metadata for interactive queries against one application."""

    def __init__(self, app: "KafkaStreams") -> None:
        self.app = app

    @property
    def cluster(self):
        # Read through the app on every call: a region failover rebinds
        # ``app.cluster``, and routing must follow the live coordinator.
        return self.app.cluster

    # -- epochs ----------------------------------------------------------------

    def epoch(self) -> int:
        """The group generation doubles as the routing epoch: it bumps on
        every rebalance, which is precisely when ownership can move."""
        return self.cluster.group_coordinator.generation(
            self.app.config.application_id
        )

    # -- key/partition routing -------------------------------------------------

    def partition_for_key(self, store: str, key: Any) -> int:
        """The task partition holding ``key`` under the default
        partitioner (the one the topology's repartition step used)."""
        return partition_for(key, self.app.store_partition_count(store))

    def key_metadata(self, store: str, key: Any) -> KeyQueryMetadata:
        return self.partition_metadata(store, self.partition_for_key(store, key))

    def partition_metadata(self, store: str, partition: int) -> KeyQueryMetadata:
        sub_id = self.app.sub_id_for_store(store)
        if sub_id is None:
            raise KeyError(f"unknown store: {store!r}")
        task_id = TaskId(sub_id, partition)
        owner = self._owner_of(task_id)
        standbys = [
            instance
            for instance in self.app.instances
            if instance.alive
            and instance is not owner
            and task_id in instance.standby_tasks
        ]
        return KeyQueryMetadata(
            store=store,
            partition=partition,
            epoch=self.epoch(),
            owner=owner,
            standbys=standbys,
            cluster=getattr(self.cluster, "name", None),
        )

    def all_partitions(self, store: str) -> List[KeyQueryMetadata]:
        """Per-partition metadata for scatter-gather range queries."""
        return [
            self.partition_metadata(store, partition)
            for partition in range(self.app.store_partition_count(store))
        ]

    def _owner_of(self, task_id: TaskId) -> Optional["StreamsInstance"]:
        group = self.app.config.application_id
        snapshot = self.cluster.group_coordinator.assignment_snapshot(group)
        assignor = self.app.assignor
        owner_member: Optional[str] = None
        for member_id, tps in snapshot.items():
            if any(assignor.task_for(tp) == task_id for tp in tps):
                owner_member = member_id
                break
        if owner_member is None:
            # Mid-handover: route at the assignor's intended destination
            # (it is building — or already holds — the warm state).
            owner_member = assignor.intended_member(task_id)
        if owner_member is None:
            return None
        for instance in self.app.instances:
            if (
                instance.alive
                and instance.consumer.member_id == owner_member
            ):
                return instance
        return None
