"""QueryServer: the per-instance endpoint answering pull queries.

Each :class:`~repro.streams.runtime.instance.StreamsInstance` exposes one of
these — the simulated stand-in for the REST endpoint a real Kafka Streams
node runs. Two consistency levels (the menu of arxiv 1907.06250):

* **strong** — owner-only, committed-offset-bounded. Served from a
  *committed shadow*: an incrementally maintained replay of the store's
  changelog with read-committed isolation, so the answer is byte-identical
  to the committed changelog state by construction. The replay is bounded
  by the changelog's last stable offset, which is exactly the KIP-447
  fencing condition — data from transactions still in flight (or from a
  zombie's soon-to-be-aborted transaction) can never be served.
* **bounded_staleness** — served from the active store (staleness 0,
  uncommitted writes included) or from a standby replica whose lag behind
  the committed changelog end is within the caller-supplied
  ``max_staleness`` bound.

Queries against a task this instance does not (or no longer) host raise a
retriable :class:`~repro.errors.NotOwnedError` carrying fresh routing
metadata — during cooperative rebalances callers re-route instead of
blocking on the handover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from repro.errors import (
    NotOwnedError,
    StaleEpochError,
    StaleStoreError,
    StateStoreError,
)
from repro.streams.runtime.restore import restore_store
from repro.streams.runtime.task import TaskId

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.runtime.instance import StreamsInstance

# Consistency levels.
STRONG = "strong"
BOUNDED = "bounded_staleness"

# Modelled service cost of one locally-served query (spent as reported
# latency, not as simulation time: queries are answered off the processing
# thread, like the paper's separate verifier machine).
QUERY_LOCAL_COST_MS = 0.05


@dataclass
class QueryResult:
    """One served read, with its provenance and staleness bound."""

    value: Any
    position: int            # changelog watermark of the serving store
    staleness: float         # committed changelog end - position (>= 0)
    source: str              # "active" | "standby" | "committed"
    instance_id: int
    partition: int
    epoch: int
    # Completeness frontier of the store's upstream cone (event time):
    # every input record with an earlier timestamp is committed-processed.
    # +inf = complete through everything produced (see obs/watermarks.py).
    frontier: float = float("inf")


class QueryServer:
    """Answers interactive queries from one instance's tasks/standbys."""

    def __init__(self, instance: "StreamsInstance") -> None:
        self.instance = instance
        self.app = instance.app
        self.cluster = instance.cluster
        # (task_id, store) -> committed shadow store, advanced lazily by
        # replaying the changelog's committed prefix on each strong read.
        self._shadows: Dict[Tuple[TaskId, str], Any] = {}

    # -- public query surface --------------------------------------------------

    def get(
        self,
        store: str,
        key: Any,
        partition: int,
        consistency: str = BOUNDED,
        max_staleness: float = float("inf"),
        epoch: Optional[int] = None,
    ) -> QueryResult:
        view, meta = self._resolve(
            store, partition, consistency, max_staleness, epoch
        )
        return self._result(view.get(key), view, meta, store)

    def range_scan(
        self,
        store: str,
        partition: int,
        from_key: Optional[Any] = None,
        to_key: Optional[Any] = None,
        consistency: str = BOUNDED,
        max_staleness: float = float("inf"),
        epoch: Optional[int] = None,
    ) -> QueryResult:
        view, meta = self._resolve(
            store, partition, consistency, max_staleness, epoch
        )
        return self._result(view.range(from_key, to_key), view, meta, store)

    def window_fetch(
        self,
        store: str,
        key: Any,
        partition: int,
        from_start: Optional[float] = None,
        to_start: Optional[float] = None,
        consistency: str = BOUNDED,
        max_staleness: float = float("inf"),
        epoch: Optional[int] = None,
    ) -> QueryResult:
        """(window_start, value) rows for ``key``; bounds optional."""
        view, meta = self._resolve(
            store, partition, consistency, max_staleness, epoch
        )
        if from_start is None and to_start is None:
            rows = view.fetch_key_windows(key)
        else:
            rows = view.fetch_range(
                key,
                float("-inf") if from_start is None else from_start,
                float("inf") if to_start is None else to_start,
            )
        return self._result(rows, view, meta, store)

    # -- resolution ------------------------------------------------------------

    def _resolve(
        self,
        store: str,
        partition: int,
        consistency: str,
        max_staleness: float,
        epoch: Optional[int],
    ):
        from repro.iq.view import QueryableStoreView

        app = self.app
        group = app.config.application_id
        current_epoch = self.cluster.group_coordinator.generation(group)
        if epoch is not None and epoch != current_epoch:
            raise StaleEpochError(
                f"routing epoch {epoch} is stale (current {current_epoch})",
                epoch=current_epoch,
            )
        sub_id = app.sub_id_for_store(store)
        if sub_id is None:
            raise StateStoreError(f"unknown store: {store!r}")
        task_id = TaskId(sub_id, partition)
        instance = self.instance
        if not instance.alive:
            raise NotOwnedError(
                f"instance {instance.instance_id} is down",
                hint=self._hint(store, partition),
            )

        if consistency == STRONG:
            task = instance.tasks.get(task_id)
            if task is None:
                self._shadows.pop((task_id, store), None)
                raise NotOwnedError(
                    f"task {task_id!r} not active on instance "
                    f"{instance.instance_id} (strong reads are owner-only)",
                    hint=self._hint(store, partition),
                )
            shadow = self._committed_shadow(task_id, store)
            return (
                QueryableStoreView(shadow),
                ("committed", 0.0, current_epoch, partition),
            )

        if consistency != BOUNDED:
            raise StateStoreError(f"unknown consistency level: {consistency!r}")
        task = instance.tasks.get(task_id)
        if task is not None:
            view = task.queryable_store(store)
            return view, ("active", 0.0, current_epoch, partition)
        standby = instance.standby_tasks.get(task_id)
        view = None if standby is None else standby.queryable_store(store)
        if view is None:
            raise NotOwnedError(
                f"task {task_id!r} has neither an active task nor a "
                f"standby on instance {instance.instance_id}",
                hint=self._hint(store, partition),
            )
        staleness = self._staleness(task_id, store, view.position())
        if staleness > max_staleness:
            raise StaleStoreError(
                f"standby for {task_id!r} is {staleness:.0f} records behind "
                f"the committed changelog (bound {max_staleness:.0f})",
                staleness=staleness,
            )
        return view, ("standby", staleness, current_epoch, partition)

    def _result(self, value: Any, view, meta, store: str) -> QueryResult:
        source, staleness, epoch, partition = meta
        return QueryResult(
            value=value,
            position=view.position(),
            staleness=staleness,
            source=source,
            instance_id=self.instance.instance_id,
            partition=partition,
            epoch=epoch,
            # Memoized per virtual instant by the tracker, so serving it
            # per query costs one dict lookup on the warm path.
            frontier=self.app.completeness_frontier(store),
        )

    def _hint(self, store: str, partition: int):
        """Fresh routing metadata for a retriable rejection."""
        return self.app.metadata_service.partition_metadata(store, partition)

    # -- committed shadows (strong reads) --------------------------------------

    def _committed_shadow(self, task_id: TaskId, store: str):
        """The store's committed changelog state, caught up incrementally.

        Replaying with read-committed isolation bounds the shadow at the
        changelog's last stable offset, so open transactions never leak
        into strong reads (KIP-447's gate, applied to the read path); the
        incremental catch-up fetches only the suffix since the last strong
        query."""
        key = (task_id, store)
        shadow = self._shadows.get(key)
        spec = next(
            s
            for s in self.app.sub_topology(task_id.sub_id).stores
            if s.name == store
        )
        if not spec.changelog:
            # No changelog: the active store is the only copy; strong
            # degenerates to reading it directly.
            return self.instance.tasks[task_id].state_store(store)
        if shadow is None:
            from repro.streams.runtime.standby import StandbyTask

            shadow = StandbyTask._create_store(spec)
            self._shadows[key] = shadow
        restore_store(
            self.cluster,
            shadow,
            spec.changelog_topic(self.app.config.application_id),
            task_id.partition,
            from_offset=shadow.position(),
            kind="standby",
        )
        return shadow

    def _staleness(self, task_id: TaskId, store: str, position: int) -> float:
        from repro.broker.partition import TopicPartition
        from repro.config import READ_COMMITTED

        spec = next(
            (
                s
                for s in self.app.sub_topology(task_id.sub_id).stores
                if s.name == store and s.changelog
            ),
            None,
        )
        if spec is None:
            return 0.0
        tp = TopicPartition(
            spec.changelog_topic(self.app.config.application_id),
            task_id.partition,
        )
        end = self.cluster.end_offset(tp, READ_COMMITTED)
        return float(max(0, end - position))
