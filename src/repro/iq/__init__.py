"""Interactive queries: queryable state, routing metadata, and consistency.

The read path of the reproduction, layered the way Kafka Streams layers it:

* :mod:`repro.iq.view` — ``QueryableStoreView``, the read-only store facade
  with an explicit ``position()`` staleness watermark.
* :mod:`repro.iq.server` — ``QueryServer``, the per-instance endpoint
  serving strong (committed-offset-gated) and bounded-staleness reads.
* :mod:`repro.iq.metadata` — ``MetadataService``, epoch-stamped
  (store, key) → owner/standby routing built on assignment snapshots.
* :mod:`repro.iq.router` — ``QueryRouter``, the retrying, scatter-gathering
  client.
"""

from repro.iq.metadata import KeyQueryMetadata, MetadataService
from repro.iq.router import QueryRouter
from repro.iq.server import BOUNDED, STRONG, QueryResult, QueryServer
from repro.iq.view import QueryableStoreView

__all__ = [
    "BOUNDED",
    "STRONG",
    "KeyQueryMetadata",
    "MetadataService",
    "QueryResult",
    "QueryRouter",
    "QueryServer",
    "QueryableStoreView",
]
