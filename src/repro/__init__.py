"""repro — a reproduction of "Consistency and Completeness: Rethinking
Distributed Stream Processing in Apache Kafka" (SIGMOD 2021).

Public API layers:

* :mod:`repro.broker` / :mod:`repro.clients` — the simulated Kafka cluster
  (replicated logs, idempotence, transactions) and its clients;
* :mod:`repro.streams` — the Kafka-Streams-like processing library (DSL,
  tasks, state stores, exactly-once, revision processing);
* :mod:`repro.barriers` — the checkpoint-based baseline engine;
* :mod:`repro.sim` — virtual clock, network cost model, failure injection.
"""

from repro.broker.cluster import Cluster
from repro.broker.partition import TopicPartition
from repro.clients.admin import AdminClient
from repro.clients.consumer import Consumer
from repro.clients.producer import Producer
from repro.config import (
    AT_LEAST_ONCE,
    EXACTLY_ONCE,
    READ_COMMITTED,
    READ_UNCOMMITTED,
    BrokerConfig,
    ConsumerConfig,
    ProducerConfig,
    StreamsConfig,
)
from repro.sim.clock import SimClock
from repro.sim.failures import FailureInjector
from repro.sim.network import FaultRule, Network, NetworkCosts

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "TopicPartition",
    "Producer",
    "Consumer",
    "AdminClient",
    "BrokerConfig",
    "ProducerConfig",
    "ConsumerConfig",
    "StreamsConfig",
    "AT_LEAST_ONCE",
    "EXACTLY_ONCE",
    "READ_COMMITTED",
    "READ_UNCOMMITTED",
    "SimClock",
    "Network",
    "NetworkCosts",
    "FaultRule",
    "FailureInjector",
    "__version__",
]
