"""Time windows, windowed keys, and grace periods.

The per-operator *grace period* (Section 5) bounds how late an
out-of-order record may be and still revise a window's result. It controls
how much old state is retained for revisions — it does **not** delay
emission: results are emitted speculatively as soon as they change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

DEFAULT_GRACE_MS = 24 * 3600 * 1000.0


@dataclass(frozen=True)
class Window:
    """A half-open time interval [start, end)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"window end {self.end} must exceed start {self.start}")

    def contains(self, timestamp: float) -> bool:
        return self.start <= timestamp < self.end

    def __repr__(self) -> str:
        return f"[{self.start}, {self.end})"


@dataclass(frozen=True)
class Windowed:
    """A record key qualified by the window it belongs to.

    Windowed aggregate results are keyed by (original key, window), as in
    Figure 6 where results are "indexed by the window start time".
    """

    key: Any
    window: Window

    def __repr__(self) -> str:
        return f"Windowed({self.key!r}, {self.window})"


@dataclass(frozen=True)
class TimeWindows:
    """Fixed-size tumbling or hopping windows.

    ``TimeWindows.of(5000)`` gives 5-second tumbling windows, as in the
    paper's Figure 2 example; ``advance_by`` smaller than ``size_ms`` makes
    them hopping (overlapping).
    """

    size_ms: float
    advance_ms: float
    grace_ms: float = DEFAULT_GRACE_MS

    @classmethod
    def of(cls, size_ms: float) -> "TimeWindows":
        if size_ms <= 0:
            raise ValueError("window size must be positive")
        return cls(size_ms=size_ms, advance_ms=size_ms)

    def advance_by(self, advance_ms: float) -> "TimeWindows":
        if not 0 < advance_ms <= self.size_ms:
            raise ValueError("advance must be in (0, size]")
        return TimeWindows(self.size_ms, advance_ms, self.grace_ms)

    def grace(self, grace_ms: float) -> "TimeWindows":
        if grace_ms < 0:
            raise ValueError("grace must be >= 0")
        return TimeWindows(self.size_ms, self.advance_ms, grace_ms)

    def windows_for(self, timestamp: float) -> List[Window]:
        """Every window the record at ``timestamp`` falls into."""
        if timestamp < 0:
            raise ValueError("timestamps must be non-negative")
        windows = []
        first_start = (
            (timestamp // self.advance_ms) * self.advance_ms
        )
        start = first_start
        while start + self.size_ms > timestamp:
            if start >= 0:
                windows.append(Window(start, start + self.size_ms))
            start -= self.advance_ms
        windows.reverse()
        return windows

    @property
    def retention_ms(self) -> float:
        """How long window state is retained: size + grace."""
        return self.size_ms + self.grace_ms


@dataclass(frozen=True)
class SessionWindows:
    """Activity sessions: windows separated by an inactivity gap.

    Two records of one key belong to the same session when their
    timestamps are at most ``gap_ms`` apart; sessions therefore *merge*
    when a record bridges two of them. Merging is revision processing at
    its sharpest: the merged sessions' previously emitted results are
    retracted (Change with new=None) and the merged session's result is
    emitted.
    """

    gap_ms: float
    grace_ms: float = DEFAULT_GRACE_MS

    @classmethod
    def with_gap(cls, gap_ms: float) -> "SessionWindows":
        if gap_ms <= 0:
            raise ValueError("session gap must be positive")
        return cls(gap_ms=gap_ms)

    def grace(self, grace_ms: float) -> "SessionWindows":
        if grace_ms < 0:
            raise ValueError("grace must be >= 0")
        return SessionWindows(self.gap_ms, grace_ms)

    @property
    def retention_ms(self) -> float:
        return self.gap_ms + self.grace_ms


def session_window(first_ts: float, last_ts: float) -> Window:
    """The Window representing a session spanning [first_ts, last_ts].

    Sessions are closed intervals over event time; a single-event session
    has first == last, so the half-open Window is padded by one unit.
    """
    return Window(first_ts, max(last_ts, first_ts) + 1.0)
