"""Topology: the operator graph and its division into sub-topologies.

A topology is a DAG of source, processor, and sink nodes. Sub-topologies
(Section 3.2) are the connected components that remain after cutting the
graph at repartition topics: within a sub-topology records flow by direct
method calls; between sub-topologies they flow through a persistent,
ordered repartition topic in Kafka — the linearized communication channel
that removes backpressure and enables revision processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.broker.partition import changelog_topic, repartition_topic
from repro.errors import TopologyError
from repro.streams.processor import Processor


@dataclass
class StateStoreSpec:
    """Declaration of a state store attached to processor nodes.

    ``kind`` is "kv" or "window"; window stores carry a retention period
    (window size + grace) used for garbage collection. When ``changelog``
    is true every update is mirrored to a compacted changelog topic, making
    the store a disposable materialized view (Section 4).
    """

    name: str
    kind: str = "kv"
    retention_ms: float = 0.0
    changelog: bool = True

    def changelog_topic(self, application_id: str) -> str:
        return changelog_topic(application_id, self.name)


@dataclass
class SourceNode:
    name: str
    topics: List[str]
    children: List[str] = field(default_factory=list)


@dataclass
class ProcessorNode:
    name: str
    supplier: Callable[[], Processor]
    children: List[str] = field(default_factory=list)
    stores: List[str] = field(default_factory=list)


@dataclass
class SinkNode:
    name: str
    topic: str
    # partitioner(key, value, num_partitions) -> int; None = hash of key
    partitioner: Optional[Callable[[Any, Any, int], int]] = None
    children: List[str] = field(default_factory=list)   # always empty


@dataclass
class RepartitionTopicSpec:
    """An internal topic the app must create before running."""

    name: str
    num_partitions: Optional[int] = None    # None: match the upstream source


@dataclass
class SubTopology:
    """One schedulable unit: executed as one task per source partition."""

    sub_id: int
    nodes: Dict[str, Any]
    source_topics: Set[str]
    sink_topics: Set[str]
    stores: List[StateStoreSpec]

    def source_nodes(self) -> List[SourceNode]:
        return [n for n in self.nodes.values() if isinstance(n, SourceNode)]

    def sources_for_topic(self, topic: str) -> List[SourceNode]:
        return [n for n in self.source_nodes() if topic in n.topics]


class Topology:
    """The mutable operator graph; built directly or via the DSL."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Any] = {}
        self._stores: Dict[str, StateStoreSpec] = {}
        self._repartition_topics: Dict[str, RepartitionTopicSpec] = {}
        self._global_tables: Dict[str, Any] = {}   # store name -> spec
        self._node_seq = 0

    # -- construction -------------------------------------------------------------

    def unique_name(self, prefix: str) -> str:
        self._node_seq += 1
        return f"{prefix}-{self._node_seq:010d}"

    def add_source(self, name: str, topics: List[str]) -> str:
        self._check_new(name)
        if not topics:
            raise TopologyError(f"source {name} needs at least one topic")
        self._nodes[name] = SourceNode(name=name, topics=list(topics))
        return name

    def add_processor(
        self,
        name: str,
        supplier: Callable[[], Processor],
        parents: List[str],
        stores: Optional[List[str]] = None,
    ) -> str:
        self._check_new(name)
        store_names = list(stores or [])
        for store in store_names:
            if store not in self._stores and store not in self._global_tables:
                raise TopologyError(f"unknown state store: {store}")
        self._nodes[name] = ProcessorNode(
            name=name, supplier=supplier, stores=store_names
        )
        self._connect(parents, name)
        return name

    def add_sink(
        self,
        name: str,
        topic: str,
        parents: List[str],
        partitioner: Optional[Callable[[Any, Any, int], int]] = None,
    ) -> str:
        self._check_new(name)
        self._nodes[name] = SinkNode(name=name, topic=topic, partitioner=partitioner)
        self._connect(parents, name)
        return name

    def add_state_store(self, spec: StateStoreSpec) -> str:
        if spec.name in self._stores:
            raise TopologyError(f"duplicate state store: {spec.name}")
        self._stores[spec.name] = spec
        return spec.name

    def add_repartition_topic(
        self, name: str, num_partitions: Optional[int] = None
    ) -> str:
        self._repartition_topics[name] = RepartitionTopicSpec(name, num_partitions)
        return name

    def add_global_table(self, spec) -> str:
        """Register a global (fully replicated) table store."""
        if spec.store_name in self._stores or spec.store_name in self._global_tables:
            raise TopologyError(f"duplicate state store: {spec.store_name}")
        self._global_tables[spec.store_name] = spec
        return spec.store_name

    def global_tables(self) -> Dict[str, Any]:
        return dict(self._global_tables)

    def _check_new(self, name: str) -> None:
        if name in self._nodes:
            raise TopologyError(f"duplicate node name: {name}")

    def _connect(self, parents: List[str], child: str) -> None:
        if not parents:
            raise TopologyError(f"node {child} needs at least one parent")
        for parent in parents:
            node = self._nodes.get(parent)
            if node is None:
                raise TopologyError(f"unknown parent node: {parent}")
            if isinstance(node, SinkNode):
                raise TopologyError(f"cannot attach children to sink {parent}")
            node.children.append(child)

    # -- accessors -----------------------------------------------------------------

    def node(self, name: str):
        return self._nodes[name]

    def nodes(self) -> Dict[str, Any]:
        return dict(self._nodes)

    def stores(self) -> Dict[str, StateStoreSpec]:
        return dict(self._stores)

    def store(self, name: str) -> StateStoreSpec:
        return self._stores[name]

    def repartition_topics(self) -> Dict[str, RepartitionTopicSpec]:
        return dict(self._repartition_topics)

    def is_internal_topic(self, topic: str) -> bool:
        return topic in self._repartition_topics

    # -- sub-topology computation -----------------------------------------------------

    def sub_topologies(self) -> List[SubTopology]:
        """Connected components of the node graph.

        Repartition topics are not nodes, so a sink writing to one and the
        source reading from it fall into different components — exactly the
        cut the paper describes.
        """
        if not self._nodes:
            raise TopologyError("empty topology")
        parent_of: Dict[str, Set[str]] = {name: set() for name in self._nodes}
        for name, node in self._nodes.items():
            for child in node.children:
                parent_of[child].add(name)

        visited: Set[str] = set()
        components: List[Set[str]] = []
        for name in self._nodes:
            if name in visited:
                continue
            component: Set[str] = set()
            stack = [name]
            while stack:
                current = stack.pop()
                if current in component:
                    continue
                component.add(current)
                stack.extend(self._nodes[current].children)
                stack.extend(parent_of[current])
            visited |= component
            components.append(component)

        # Deterministic ordering: by smallest source topic name, with
        # components containing external sources first.
        def sort_key(component: Set[str]):
            topics = sorted(
                t
                for n in component
                if isinstance(self._nodes[n], SourceNode)
                for t in self._nodes[n].topics
            )
            return (topics[0] if topics else "~", min(component))

        components.sort(key=sort_key)

        subs: List[SubTopology] = []
        for sub_id, component in enumerate(components):
            nodes = {n: self._nodes[n] for n in sorted(component)}
            sources: Set[str] = set()
            sinks: Set[str] = set()
            store_names: Set[str] = set()
            for node in nodes.values():
                if isinstance(node, SourceNode):
                    sources.update(node.topics)
                elif isinstance(node, SinkNode):
                    sinks.add(node.topic)
                elif isinstance(node, ProcessorNode):
                    store_names.update(
                        s for s in node.stores if s not in self._global_tables
                    )
            if not sources:
                raise TopologyError(
                    f"sub-topology {sorted(component)} has no source node"
                )
            subs.append(
                SubTopology(
                    sub_id=sub_id,
                    nodes=nodes,
                    source_topics=sources,
                    sink_topics=sinks,
                    stores=[self._stores[s] for s in sorted(store_names)],
                )
            )
        return subs

    def describe(self) -> str:
        """Human-readable topology description (like Topology#describe)."""
        lines = []
        for sub in self.sub_topologies():
            lines.append(f"Sub-topology: {sub.sub_id}")
            for name, node in sub.nodes.items():
                if isinstance(node, SourceNode):
                    kind = f"Source: {name} (topics: {sorted(node.topics)})"
                elif isinstance(node, SinkNode):
                    kind = f"Sink: {name} (topic: {node.topic})"
                else:
                    stores = f" (stores: {node.stores})" if node.stores else ""
                    kind = f"Processor: {name}{stores}"
                children = (
                    f" --> {sorted(node.children)}" if node.children else ""
                )
                lines.append(f"  {kind}{children}")
        return "\n".join(lines)
