"""GlobalKTable: broadcast reference tables.

A global table is fully replicated to *every* instance (each one consumes
all partitions of the backing topic into a local store), so a stream can
join against it on an arbitrary join key — no co-partitioning, no
repartition topic. This matches the reference-data enrichment pattern of
the paper's Section 6.1 pipeline, where "less frequently updated reference
market data" topics feed the main processing path.

Unlike regular state stores, global stores are not changelogged (the
source topic *is* the changelog) and are not part of any task's
transactional state: they are read-only caches maintained outside the
read-process-write cycle, refreshed with read-committed reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, TYPE_CHECKING

from repro.broker.fetch import fetch
from repro.broker.partition import TopicPartition
from repro.config import READ_COMMITTED
from repro.streams.processor import Processor
from repro.streams.records import StreamRecord
from repro.streams.state.kv_store import InMemoryKeyValueStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.broker.cluster import Cluster
    from repro.streams.builder import StreamsBuilder


@dataclass(frozen=True)
class GlobalTableSpec:
    """Topology-level declaration of a global table."""

    store_name: str
    topic: str


class GlobalKTable:
    """DSL handle for a global table (join-only; no transformations)."""

    def __init__(self, builder: "StreamsBuilder", spec: GlobalTableSpec) -> None:
        self.builder = builder
        self.spec = spec

    @property
    def store_name(self) -> str:
        return self.spec.store_name


class GlobalStateStore:
    """Instance-side maintenance of one global table's full contents."""

    def __init__(self, cluster: "Cluster", spec: GlobalTableSpec) -> None:
        self.cluster = cluster
        self.spec = spec
        self.store = InMemoryKeyValueStore(spec.store_name)
        self._positions: Dict[TopicPartition, int] = {
            tp: 0 for tp in cluster.partitions_for(spec.topic)
        }
        self.records_applied = 0
        self.update()

    def update(self) -> int:
        """Pull newly committed records from every partition of the
        backing topic into the local copy."""
        applied = 0
        for tp, position in list(self._positions.items()):
            log = self.cluster.partition_state(tp).leader_log()
            result = fetch(
                log,
                max(position, log.log_start_offset),
                max_records=2**31,
                isolation_level=READ_COMMITTED,
            )
            for record in result.records:
                self.store.restore_put(record.key, record.value)
                applied += 1
            self._positions[tp] = result.next_offset
        self.records_applied += applied
        return applied


class GlobalTableJoinProcessor(Processor):
    """Stream–global-table join: look up an arbitrary join key computed
    from each stream record (no co-partitioning requirement)."""

    def __init__(
        self,
        store_name: str,
        key_selector: Callable[[Any, Any], Any],
        joiner: Callable[[Any, Any], Any],
        left_join: bool,
    ) -> None:
        self._store_name = store_name
        self._key_selector = key_selector
        self._joiner = joiner
        self._left_join = left_join

    def init(self, context) -> None:
        super().init(context)
        self._store = context.state_store(self._store_name)

    def process(self, record: StreamRecord) -> None:
        join_key = self._key_selector(record.key, record.value)
        table_value = None if join_key is None else self._store.get(join_key)
        if table_value is None and not self._left_join:
            return
        self.context.forward(
            record.with_value(self._joiner(record.value, table_value))
        )
