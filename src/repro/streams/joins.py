"""Join processors: stream-stream (windowed), stream-table, table-table.

The paper's Section 5 distinguishes joins by their *output type*:

* a **stream-stream left join outputs an append-only stream**, where an
  eagerly emitted ``(a, null)`` could never be revoked. These joins
  therefore hold non-joined results until the join window plus grace has
  elapsed in stream time — the only operators that delay emission.
* a **table-table join outputs a table**, so results are emitted
  speculatively and later out-of-order updates simply produce amendment
  Changes downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.streams.processor import Processor
from repro.streams.records import Change, StreamRecord

Joiner = Callable[[Any, Any], Any]


@dataclass(frozen=True)
class JoinWindows:
    """The temporal join predicate: right.ts in [left.ts − before, left.ts + after],
    with a grace period bounding how late records may still join."""

    before_ms: float
    after_ms: float
    grace_ms: float = 24 * 3600 * 1000.0

    @classmethod
    def of(cls, size_ms: float) -> "JoinWindows":
        if size_ms < 0:
            raise ValueError("join window must be >= 0")
        return cls(before_ms=size_ms, after_ms=size_ms)

    def grace(self, grace_ms: float) -> "JoinWindows":
        if grace_ms < 0:
            raise ValueError("grace must be >= 0")
        return JoinWindows(self.before_ms, self.after_ms, grace_ms)

    @property
    def retention_ms(self) -> float:
        return self.before_ms + self.after_ms + self.grace_ms


class StreamJoinSideProcessor(Processor):
    """One side of a windowed stream-stream join.

    Both sides share two window stores (one per side's record buffer). For
    left/outer joins, records that found no partner are tracked and the
    (value, null) result is emitted only once stream time passes their
    timestamp + window + grace — never eagerly, because the output stream
    is append-only and cannot be amended.
    """

    def __init__(
        self,
        this_store: str,
        other_store: str,
        windows: JoinWindows,
        joiner: Joiner,
        is_left_side: bool,
        emit_unmatched: bool,
    ) -> None:
        self._this_store_name = this_store
        self._other_store_name = other_store
        self._windows = windows
        self._joiner = joiner
        self._is_left = is_left_side
        self._emit_unmatched = emit_unmatched
        self.joined_results = 0
        self.unmatched_results = 0

    def init(self, context) -> None:
        super().init(context)
        self._this_store = context.state_store(self._this_store_name)
        self._other_store = context.state_store(self._other_store_name)

    def process(self, record: StreamRecord) -> None:
        if record.key is None:
            return
        ts = record.timestamp
        if self._is_left:
            lo, hi = ts - self._windows.before_ms, ts + self._windows.after_ms
        else:
            lo, hi = ts - self._windows.after_ms, ts + self._windows.before_ms

        # Buffer this record for the other side's future lookups. The store
        # value is a list of [value, matched] entries (several records may
        # share a key and timestamp).
        entries = self._this_store.fetch(record.key, ts) or []
        entry = [record.value, False]
        entries = list(entries) + [entry]
        self._this_store.put(record.key, ts, entries)

        matched = False
        other_windows = self._other_store.fetch_range(record.key, lo, hi)
        for other_ts, other_entries in other_windows:
            changed = False
            for other_entry in other_entries:
                matched = True
                changed = changed or not other_entry[1]
                other_entry[1] = True
                left_v, right_v = (
                    (record.value, other_entry[0])
                    if self._is_left
                    else (other_entry[0], record.value)
                )
                self.joined_results += 1
                self.context.forward(
                    StreamRecord(
                        key=record.key,
                        value=self._joiner(left_v, right_v),
                        timestamp=max(ts, other_ts),
                        headers=dict(record.headers),
                    )
                )
            if changed:
                # Persist the matched flags so recovery does not re-emit
                # spurious unmatched results.
                self._other_store.put(record.key, other_ts, other_entries)
        if matched:
            entry[1] = True
            self._this_store.put(record.key, ts, entries)

        self._flush_expired()

    def _flush_expired(self) -> None:
        """Emit (value, null) for this side's records whose join window has
        closed unmatched, then GC both buffers."""
        stream_time = self.context.stream_time
        close_before = stream_time - (
            self._windows.before_ms + self._windows.after_ms + self._windows.grace_ms
        )
        if self._emit_unmatched:
            for (key, ts), entries in list(self._this_store.all()):
                if ts >= close_before:
                    continue
                for value, was_matched in entries:
                    if was_matched:
                        continue
                    left_v, right_v = (
                        (value, None) if self._is_left else (None, value)
                    )
                    self.unmatched_results += 1
                    self.context.forward(
                        StreamRecord(
                            key=key,
                            value=self._joiner(left_v, right_v),
                            timestamp=ts,
                        )
                    )
        self._this_store.expire_before(close_before)

    def on_commit(self) -> None:
        self._flush_expired()


class StreamTableJoinProcessor(Processor):
    """Stream-table join: each stream record is enriched with the table's
    current value for its key (no windowing; the table side drives nothing)."""

    def __init__(self, table_store: str, joiner: Joiner, left_join: bool) -> None:
        self._table_store_name = table_store
        self._joiner = joiner
        self._left_join = left_join

    def init(self, context) -> None:
        super().init(context)
        self._table = context.state_store(self._table_store_name)

    def process(self, record: StreamRecord) -> None:
        if record.key is None:
            return
        table_value = self._table.get(record.key)
        if table_value is None and not self._left_join:
            return
        self.context.forward(
            record.with_value(self._joiner(record.value, table_value))
        )


class TableTableJoinProcessor(Processor):
    """One side of a table-table join.

    Output is a table, so results are emitted speculatively: a revision on
    either input produces an amendment Change downstream (the paper's
    (a, null) then (a, b) sequence, which is correct for tables).
    """

    def __init__(
        self,
        other_store: str,
        joiner: Joiner,
        this_is_left: bool,
        left_outer: bool,
        right_outer: bool,
    ) -> None:
        self._other_store_name = other_store
        self._joiner = joiner
        self._this_is_left = this_is_left
        self._left_outer = left_outer
        self._right_outer = right_outer

    def init(self, context) -> None:
        super().init(context)
        self._other = context.state_store(self._other_store_name)

    def _join(self, this_value: Any, other_value: Any) -> Optional[Any]:
        if self._this_is_left:
            left, right = this_value, other_value
        else:
            left, right = other_value, this_value
        if left is None and right is None:
            return None
        if left is None and not self._right_outer:
            return None
        if right is None and not self._left_outer:
            return None
        return self._joiner(left, right)

    def process(self, record: StreamRecord) -> None:
        change: Change = record.value
        other_value = self._other.get(record.key)
        new = self._join(change.new, other_value) if change.new is not None else (
            self._join(None, other_value)
        )
        old = self._join(change.old, other_value) if change.old is not None else (
            self._join(None, other_value) if other_value is not None else None
        )
        if new is None and old is None:
            return
        self.context.forward(record.with_value(Change(new, old)))
