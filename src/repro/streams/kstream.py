"""KStream: the record-stream half of the DSL.

A KStream is an append-only stream of independent records. Operations that
may change the record key (map, select_key, group_by) mark the stream as
*repartition required*: the next key-dependent operation (grouping, joins)
routes the data through an internal repartition topic so that all records
with the same key land in the same partition — the data-locality shuffle
of Figure 3.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.errors import TopologyError
from repro.streams.joins import (
    JoinWindows,
    StreamJoinSideProcessor,
    StreamTableJoinProcessor,
)
from repro.streams.processor import FusedStatelessProcessor, Processor
from repro.streams.records import StreamRecord
from repro.streams.topology import StateStoreSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.builder import StreamsBuilder
    from repro.streams.grouped import KGroupedStream
    from repro.streams.ktable import KTable


class _AbsorbProcessor(Processor):
    """Consumes records without forwarding; used to merge a table's
    sub-topology with a join's without leaking its Changes into the join."""

    def process(self, record: StreamRecord) -> None:
        return None


class _PassThroughProcessor(Processor):
    batch_aware = True

    def process(self, record: StreamRecord) -> None:
        self.context.forward(record)

    def process_batch(self, chunk) -> None:
        self.context.forward_chunk(chunk)


class _BranchProcessor(Processor):
    """Routes each record to the first child whose predicate matches."""

    def __init__(self, predicates, children) -> None:
        self._predicates = predicates
        self._children = children

    def process(self, record: StreamRecord) -> None:
        for predicate, child in zip(self._predicates, self._children):
            if predicate(record.key, record.value):
                self.context.forward(record, to=child)
                return


class KStream:
    """A stream node in the topology under construction."""

    def __init__(
        self,
        builder: "StreamsBuilder",
        node: str,
        source_topics: Set[str],
        repartition_required: bool,
    ) -> None:
        self.builder = builder
        self.node = node
        self.source_topics = set(source_topics)
        self.repartition_required = repartition_required

    # -- internals ---------------------------------------------------------------

    def _derive(self, node: str, repartition_required: Optional[bool] = None,
                source_topics: Optional[Set[str]] = None) -> "KStream":
        return KStream(
            builder=self.builder,
            node=node,
            source_topics=self.source_topics if source_topics is None else source_topics,
            repartition_required=(
                self.repartition_required
                if repartition_required is None
                else repartition_required
            ),
        )

    def _stateless(
        self,
        prefix: str,
        kind: str,
        fn: Callable,
        key_changed: bool = False,
    ) -> "KStream":
        """Add one stateless operator node. ``kind`` selects the fused
        operator semantics; ``fn`` is the user's (key, value)-level
        function — keeping it at that level (rather than a pre-baked
        record closure) is what lets the processor run it over whole
        column chunks without materializing records."""
        topo = self.builder.topology
        name = topo.unique_name(prefix)
        topo.add_processor(
            name,
            lambda kind=kind, fn=fn: FusedStatelessProcessor(kind, fn),
            parents=[self.node],
        )
        return self._derive(
            name,
            repartition_required=self.repartition_required or key_changed,
        )

    def repartition(self, num_partitions: Optional[int] = None,
                    name: Optional[str] = None) -> "KStream":
        """Route the stream through an internal repartition topic.

        Inserted automatically before key-based operations when the key may
        have changed; call explicitly to control partition counts (as in
        Figure 3, where the repartition topic has 3 partitions while the
        source topic has 2).
        """
        from repro.streams.builder import APP_ID_TOKEN

        topo = self.builder.topology
        base = name or topo.unique_name("KSTREAM-REPARTITION")
        topic = f"{APP_ID_TOKEN}-{base}-repartition"
        topo.add_repartition_topic(topic, num_partitions)
        sink = topo.unique_name("KSTREAM-SINK")
        topo.add_sink(sink, topic, parents=[self.node])
        source = topo.unique_name("KSTREAM-SOURCE")
        topo.add_source(source, [topic])
        return KStream(
            builder=self.builder,
            node=source,
            source_topics={topic},
            repartition_required=False,
        )

    def _maybe_repartition(self, num_partitions: Optional[int] = None) -> "KStream":
        if not self.repartition_required:
            return self
        return self.repartition(num_partitions)

    # -- stateless transforms -------------------------------------------------------

    def filter(self, predicate: Callable[[Any, Any], bool]) -> "KStream":
        """Keep records for which ``predicate(key, value)`` is true."""
        return self._stateless("KSTREAM-FILTER", "filter", predicate)

    def filter_not(self, predicate: Callable[[Any, Any], bool]) -> "KStream":
        return self._stateless("KSTREAM-FILTER", "filter_not", predicate)

    def map(self, mapper: Callable[[Any, Any], Tuple[Any, Any]]) -> "KStream":
        """Transform each record to a new (key, value); may change the key,
        so downstream key-based operations will repartition."""
        return self._stateless("KSTREAM-MAP", "map", mapper, key_changed=True)

    def map_values(self, mapper: Callable[[Any], Any]) -> "KStream":
        """Transform values only — key unchanged, no repartition needed."""
        return self._stateless("KSTREAM-MAPVALUES", "map_values", mapper)

    def flat_map(
        self, mapper: Callable[[Any, Any], Iterable[Tuple[Any, Any]]]
    ) -> "KStream":
        return self._stateless(
            "KSTREAM-FLATMAP", "flat_map", mapper, key_changed=True
        )

    def flat_map_values(self, mapper: Callable[[Any], Iterable[Any]]) -> "KStream":
        return self._stateless(
            "KSTREAM-FLATMAPVALUES", "flat_map_values", mapper
        )

    def select_key(self, selector: Callable[[Any, Any], Any]) -> "KStream":
        return self._stateless(
            "KSTREAM-KEY-SELECT", "select_key", selector, key_changed=True
        )

    def peek(self, action: Callable[[Any, Any], None]) -> "KStream":
        return self._stateless("KSTREAM-PEEK", "peek", action)

    def branch(self, *predicates: Callable[[Any, Any], bool]) -> List["KStream"]:
        """Split the stream: each record goes to the first branch whose
        predicate matches (unmatched records are dropped). Returns one
        KStream per predicate."""
        if not predicates:
            raise TopologyError("branch() needs at least one predicate")
        topo = self.builder.topology
        branch_node = topo.unique_name("KSTREAM-BRANCH")
        child_names = [
            topo.unique_name("KSTREAM-BRANCHCHILD") for _ in predicates
        ]
        topo.add_processor(
            branch_node,
            lambda preds=predicates, children=tuple(child_names): _BranchProcessor(
                preds, children
            ),
            parents=[self.node],
        )
        streams = []
        for child in child_names:
            topo.add_processor(child, _PassThroughProcessor, parents=[branch_node])
            streams.append(self._derive(child))
        return streams

    def to_table(self, store_name: Optional[str] = None) -> "KTable":
        """Materialize the stream directly as a table (KStream#toTable):
        each record is an upsert for its key; None values delete."""
        from repro.streams.ktable import KTable
        from repro.streams.table_ops import TableSourceProcessor
        from repro.streams.topology import StateStoreSpec

        stream = self._maybe_repartition()
        topo = self.builder.topology
        store = store_name or topo.unique_name("KSTREAM-TOTABLE-STORE")
        topo.add_state_store(StateStoreSpec(name=store, kind="kv"))
        node = topo.unique_name("KSTREAM-TOTABLE")
        topo.add_processor(
            node,
            lambda: TableSourceProcessor(store),
            parents=[stream.node],
            stores=[store],
        )
        return KTable(
            builder=self.builder,
            node=node,
            store_name=store,
            source_topics=stream.source_topics,
        )

    def merge(self, other: "KStream") -> "KStream":
        """Interleave two streams into one (no ordering guarantee between
        the inputs beyond per-partition order)."""
        topo = self.builder.topology
        name = topo.unique_name("KSTREAM-MERGE")
        topo.add_processor(
            name, _PassThroughProcessor, parents=[self.node, other.node]
        )
        return KStream(
            builder=self.builder,
            node=name,
            source_topics=self.source_topics | other.source_topics,
            repartition_required=self.repartition_required
            or other.repartition_required,
        )

    def process(
        self,
        supplier: Callable[[], Processor],
        stores: Iterable[str] = (),
        name: Optional[str] = None,
    ) -> "KStream":
        """Attach a custom Processor-API node (escape hatch from the DSL)."""
        topo = self.builder.topology
        node = name or topo.unique_name("KSTREAM-PROCESSOR")
        topo.add_processor(node, supplier, parents=[self.node], stores=list(stores))
        return self._derive(node)

    # -- output --------------------------------------------------------------------

    def to(
        self,
        topic: str,
        partitioner: Optional[Callable[[Any, Any, int], int]] = None,
    ) -> None:
        """Terminate the stream into a sink topic."""
        topo = self.builder.topology
        sink = topo.unique_name("KSTREAM-SINK")
        topo.add_sink(sink, topic, parents=[self.node], partitioner=partitioner)

    # -- grouping -------------------------------------------------------------------

    def group_by_key(self, num_partitions: Optional[int] = None) -> "KGroupedStream":
        """Group by the current key (repartitions only if the key changed)."""
        from repro.streams.grouped import KGroupedStream

        stream = self._maybe_repartition(num_partitions)
        return KGroupedStream(stream.builder, stream.node, stream.source_topics)

    def group_by(
        self,
        selector: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "KGroupedStream":
        return self.select_key(selector).group_by_key(num_partitions)

    # -- joins -----------------------------------------------------------------------

    def join(
        self,
        other,
        joiner: Callable[[Any, Any], Any],
        windows: Optional[JoinWindows] = None,
        key_selector: Optional[Callable[[Any, Any], Any]] = None,
    ) -> "KStream":
        """Inner join with another stream (windowed), a table, or a
        global table (the latter requires ``key_selector``)."""
        from repro.streams.global_table import GlobalKTable

        if isinstance(other, KStream):
            if windows is None:
                raise TopologyError("stream-stream joins require JoinWindows")
            return self._stream_join(other, joiner, windows, False, False)
        if isinstance(other, GlobalKTable):
            return self._global_join(other, joiner, key_selector, left_join=False)
        return self._table_join(other, joiner, left_join=False)

    def left_join(
        self,
        other,
        joiner: Callable[[Any, Any], Any],
        windows: Optional[JoinWindows] = None,
        key_selector: Optional[Callable[[Any, Any], Any]] = None,
    ) -> "KStream":
        from repro.streams.global_table import GlobalKTable

        if isinstance(other, KStream):
            if windows is None:
                raise TopologyError("stream-stream joins require JoinWindows")
            return self._stream_join(other, joiner, windows, True, False)
        if isinstance(other, GlobalKTable):
            return self._global_join(other, joiner, key_selector, left_join=True)
        return self._table_join(other, joiner, left_join=True)

    def _global_join(
        self, table, joiner, key_selector, left_join: bool
    ) -> "KStream":
        """Global tables are replicated everywhere: no repartition, no
        co-partitioning — the selector computes the lookup key per record."""
        from repro.streams.global_table import GlobalTableJoinProcessor

        if key_selector is None:
            raise TopologyError(
                "joining a GlobalKTable requires a key_selector(key, value)"
            )
        topo = self.builder.topology
        node = topo.unique_name("KSTREAM-GLOBALJOIN")
        store = table.store_name
        topo.add_processor(
            node,
            lambda: GlobalTableJoinProcessor(store, key_selector, joiner, left_join),
            parents=[self.node],
            stores=[store],
        )
        return self._derive(node)

    def outer_join(
        self,
        other: "KStream",
        joiner: Callable[[Any, Any], Any],
        windows: JoinWindows,
    ) -> "KStream":
        if not isinstance(other, KStream):
            raise TopologyError("outer joins are only defined stream-stream")
        return self._stream_join(other, joiner, windows, True, True)

    def _stream_join(
        self,
        other: "KStream",
        joiner: Callable[[Any, Any], Any],
        windows: JoinWindows,
        left_outer: bool,
        right_outer: bool,
    ) -> "KStream":
        left = self._maybe_repartition()
        right = other._maybe_repartition()
        topo = self.builder.topology

        left_store = topo.unique_name("KSTREAM-JOINTHIS-STORE")
        right_store = topo.unique_name("KSTREAM-JOINOTHER-STORE")
        for store in (left_store, right_store):
            topo.add_state_store(
                StateStoreSpec(
                    name=store, kind="window", retention_ms=windows.retention_ms
                )
            )

        left_node = topo.unique_name("KSTREAM-JOINTHIS")
        topo.add_processor(
            left_node,
            lambda: StreamJoinSideProcessor(
                this_store=left_store,
                other_store=right_store,
                windows=windows,
                joiner=joiner,
                is_left_side=True,
                emit_unmatched=left_outer,
            ),
            parents=[left.node],
            stores=[left_store, right_store],
        )
        right_node = topo.unique_name("KSTREAM-JOINOTHER")
        topo.add_processor(
            right_node,
            lambda: StreamJoinSideProcessor(
                this_store=right_store,
                other_store=left_store,
                windows=windows,
                joiner=joiner,
                is_left_side=False,
                emit_unmatched=right_outer,
            ),
            parents=[right.node],
            stores=[left_store, right_store],
        )
        merge = topo.unique_name("KSTREAM-JOINMERGE")
        topo.add_processor(
            merge, _PassThroughProcessor, parents=[left_node, right_node]
        )
        return KStream(
            builder=self.builder,
            node=merge,
            source_topics=left.source_topics | right.source_topics,
            repartition_required=False,
        )

    def _table_join(self, table: "KTable", joiner, left_join: bool) -> "KStream":
        stream = self._maybe_repartition()
        topo = self.builder.topology
        store = table.require_materialized()
        # The absorbing edge merges the table's sub-topology with the
        # stream's so the join task hosts the table's store, without the
        # table's Changes reaching the join processor.
        absorb = topo.unique_name("KTABLE-JOIN-ABSORB")
        topo.add_processor(absorb, _AbsorbProcessor, parents=[table.node])
        join = topo.unique_name("KSTREAM-JOIN-TABLE")
        topo.add_processor(
            join,
            lambda: StreamTableJoinProcessor(store, joiner, left_join),
            parents=[stream.node, absorb],
            stores=[store],
        )
        return KStream(
            builder=self.builder,
            node=join,
            source_topics=stream.source_topics | table.source_topics,
            repartition_required=False,
        )
