"""KTable: the evolving-table half of the DSL.

A KTable node forwards :class:`~repro.streams.records.Change` values — the
amendment semantics of Section 5. Because a later update can always
overwrite an earlier one downstream, table operators emit speculatively and
revisions propagate as further Changes.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Set, Tuple, TYPE_CHECKING

from repro.streams.joins import TableTableJoinProcessor
from repro.streams.kstream import KStream, _PassThroughProcessor
from repro.streams.suppress import Suppressed, SuppressProcessor
from repro.streams.table_ops import (
    TableFilterProcessor,
    TableGroupByMapProcessor,
    TableMapValuesProcessor,
    TableMaterializeProcessor,
    TableToStreamProcessor,
)
from repro.streams.topology import StateStoreSpec
from repro.streams.windows import TimeWindows

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.builder import StreamsBuilder
    from repro.streams.grouped import KGroupedTable


class KTable:
    """A table node in the topology under construction."""

    def __init__(
        self,
        builder: "StreamsBuilder",
        node: str,
        store_name: Optional[str],
        source_topics: Set[str],
        windows: Optional[TimeWindows] = None,
    ) -> None:
        self.builder = builder
        self.node = node
        self.store_name = store_name
        self.source_topics = set(source_topics)
        self.windows = windows

    # -- materialization ------------------------------------------------------------

    def require_materialized(self) -> str:
        """Store name backing this table, adding a materialization node if
        the table was derived without one (needed by joins)."""
        if self.store_name is not None:
            return self.store_name
        topo = self.builder.topology
        store = topo.unique_name("KTABLE-MATERIALIZED-STORE")
        topo.add_state_store(StateStoreSpec(name=store, kind="kv"))
        node = topo.unique_name("KTABLE-MATERIALIZE")
        topo.add_processor(
            node,
            lambda: TableMaterializeProcessor(store),
            parents=[self.node],
            stores=[store],
        )
        self.node = node
        self.store_name = store
        return store

    def _derive(self, node: str, store_name: Optional[str] = None) -> "KTable":
        return KTable(
            builder=self.builder,
            node=node,
            store_name=store_name,
            source_topics=self.source_topics,
            windows=self.windows,
        )

    # -- transforms --------------------------------------------------------------------

    def filter(self, predicate: Callable[[Any, Any], bool]) -> "KTable":
        """Keep rows matching the predicate; rows that stop matching are
        retracted downstream (Change.new becomes None)."""
        topo = self.builder.topology
        node = topo.unique_name("KTABLE-FILTER")
        topo.add_processor(
            node, lambda: TableFilterProcessor(predicate), parents=[self.node]
        )
        return self._derive(node)

    def map_values(self, mapper: Callable[[Any, Any], Any]) -> "KTable":
        """Transform row values; ``mapper(key, value)`` applies to both the
        new and old side of every Change."""
        topo = self.builder.topology
        node = topo.unique_name("KTABLE-MAPVALUES")
        topo.add_processor(
            node, lambda: TableMapValuesProcessor(mapper), parents=[self.node]
        )
        return self._derive(node)

    def suppress(self, suppressed: Suppressed) -> "KTable":
        """Buffer intermediate revisions and emit consolidated results
        (Section 5's suppress operator)."""
        topo = self.builder.topology
        grace = self.windows.grace_ms if self.windows is not None else 0.0
        node = topo.unique_name("KTABLE-SUPPRESS")
        topo.add_processor(
            node,
            lambda: SuppressProcessor(suppressed, grace_ms=grace),
            parents=[self.node],
        )
        return self._derive(node)

    def to_stream(
        self, key_mapper: Optional[Callable[[Any], Any]] = None
    ) -> KStream:
        """The table's changelog as a record stream of new values."""
        topo = self.builder.topology
        node = topo.unique_name("KTABLE-TOSTREAM")
        topo.add_processor(node, TableToStreamProcessor, parents=[self.node])
        stream = KStream(
            builder=self.builder,
            node=node,
            source_topics=self.source_topics,
            repartition_required=False,
        )
        if key_mapper is not None:
            stream = stream.select_key(lambda k, v: key_mapper(k))
        return stream

    # -- re-grouping -----------------------------------------------------------------------

    def group_by(
        self,
        selector: Callable[[Any, Any], Tuple[Any, Any]],
        num_partitions: Optional[int] = None,
    ) -> "KGroupedTable":
        """Re-key the table for re-aggregation; records flow through a
        repartition topic carrying both accumulations and retractions."""
        from repro.streams.builder import APP_ID_TOKEN
        from repro.streams.grouped import KGroupedTable

        topo = self.builder.topology
        select = topo.unique_name("KTABLE-GROUPBY-SELECT")
        topo.add_processor(
            select, lambda: TableGroupByMapProcessor(selector), parents=[self.node]
        )
        base = topo.unique_name("KTABLE-REPARTITION")
        topic = f"{APP_ID_TOKEN}-{base}-repartition"
        topo.add_repartition_topic(topic, num_partitions)
        sink = topo.unique_name("KTABLE-SINK")
        topo.add_sink(sink, topic, parents=[select])
        source = topo.unique_name("KTABLE-SOURCE")
        topo.add_source(source, [topic])
        return KGroupedTable(self.builder, source, {topic})

    # -- joins -------------------------------------------------------------------------------

    def join(self, other: "KTable", joiner: Callable[[Any, Any], Any]) -> "KTable":
        return self._table_join(other, joiner, left_outer=False, right_outer=False)

    def left_join(self, other: "KTable", joiner: Callable[[Any, Any], Any]) -> "KTable":
        return self._table_join(other, joiner, left_outer=True, right_outer=False)

    def outer_join(self, other: "KTable", joiner: Callable[[Any, Any], Any]) -> "KTable":
        return self._table_join(other, joiner, left_outer=True, right_outer=True)

    def _table_join(
        self,
        other: "KTable",
        joiner: Callable[[Any, Any], Any],
        left_outer: bool,
        right_outer: bool,
    ) -> "KTable":
        topo = self.builder.topology
        this_store = self.require_materialized()
        other_store = other.require_materialized()

        this_side = topo.unique_name("KTABLE-JOINTHIS")
        topo.add_processor(
            this_side,
            lambda: TableTableJoinProcessor(
                other_store, joiner, True, left_outer, right_outer
            ),
            parents=[self.node],
            stores=[other_store],
        )
        other_side = topo.unique_name("KTABLE-JOINOTHER")
        topo.add_processor(
            other_side,
            lambda: TableTableJoinProcessor(
                this_store, joiner, False, left_outer, right_outer
            ),
            parents=[other.node],
            stores=[this_store],
        )
        merge = topo.unique_name("KTABLE-JOINMERGE")
        topo.add_processor(
            merge, _PassThroughProcessor, parents=[this_side, other_side]
        )
        return KTable(
            builder=self.builder,
            node=merge,
            store_name=None,
            source_topics=self.source_topics | other.source_topics,
            windows=self.windows or other.windows,
        )
