"""Serializers/deserializers.

The simulated broker stores Python objects directly, so serdes are not
needed for transport; they exist for API fidelity, for measuring
serialization cost in benchmarks, and for the windowed-key encoding used
in changelog topics.
"""

from __future__ import annotations

import json
from typing import Any, Callable, NamedTuple

from repro.errors import SerializationError
from repro.streams.windows import Window, Windowed


class Serde(NamedTuple):
    """A serializer/deserializer pair."""

    serialize: Callable[[Any], Any]
    deserialize: Callable[[Any], Any]


def _identity(x: Any) -> Any:
    return x


IDENTITY_SERDE = Serde(_identity, _identity)


def _json_ser(value: Any) -> str:
    try:
        return json.dumps(value, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"not JSON-serializable: {value!r}") from exc


def _json_de(data: Any) -> Any:
    if data is None:
        return None
    try:
        return json.loads(data)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"not valid JSON: {data!r}") from exc


JSON_SERDE = Serde(_json_ser, _json_de)


def _string_ser(value: Any) -> str:
    if value is None:
        return None
    return str(value)


STRING_SERDE = Serde(_string_ser, _identity)


def _int_ser(value: Any) -> int:
    if value is None:
        return None
    return int(value)


INT_SERDE = Serde(_int_ser, _int_ser)


def windowed_key_serialize(windowed: Windowed) -> tuple:
    """Encode a windowed key for changelog/sink topics as a plain tuple
    (key, window_start, window_end) — hashable and order-friendly."""
    return (windowed.key, windowed.window.start, windowed.window.end)


def windowed_key_deserialize(encoded: tuple) -> Windowed:
    key, start, end = encoded
    return Windowed(key, Window(start, end))


WINDOWED_KEY_SERDE = Serde(windowed_key_serialize, windowed_key_deserialize)
