"""Kafka-Streams-like stream processing library (the paper's core system).

Build a topology with :class:`StreamsBuilder`, then run it with
:class:`KafkaStreams` against a :class:`~repro.broker.cluster.Cluster`::

    builder = StreamsBuilder()
    (builder.stream("pageview-events")
        .filter(lambda k, v: v["period"] >= 30_000)
        .map(lambda k, v: (v["category"], v))
        .group_by_key()
        .windowed_by(TimeWindows.of(5_000))
        .count()
        .to_stream()
        .to("pageview-windowed-counts"))
    app = KafkaStreams(builder.build(), cluster, StreamsConfig(...))
"""

from repro.streams.builder import StreamsBuilder
from repro.streams.records import Change, StreamRecord
from repro.streams.windows import SessionWindows, TimeWindows, Window, Windowed
from repro.streams.suppress import Suppressed
from repro.streams.joins import JoinWindows
from repro.streams.queries import StateCatalog
from repro.streams.runtime.app import KafkaStreams

__all__ = [
    "StreamsBuilder",
    "KafkaStreams",
    "StreamRecord",
    "Change",
    "TimeWindows",
    "SessionWindows",
    "Window",
    "Windowed",
    "JoinWindows",
    "Suppressed",
    "StateCatalog",
]
