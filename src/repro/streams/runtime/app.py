"""KafkaStreams: the application handle.

Creates internal topics (repartition + changelog), validates
co-partitioning, registers the task-aware assignor with the group
coordinator, and manages instances. Driving is cooperative: ``step()``
runs one poll-process-commit cycle on every live instance (no real
threads; the virtual clock supplies time).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set

from repro.broker.cluster import Cluster
from repro.broker.partition import TopicPartition
from repro.config import StreamsConfig
from repro.errors import TopologyError
from repro.sim.scheduler import Driver
from repro.streams.builder import resolve_topic
from repro.streams.runtime.assignor import StreamsAssignor
from repro.streams.runtime.instance import StreamsInstance
from repro.streams.runtime.task import TaskId
from repro.streams.topology import SubTopology, Topology


class KafkaStreams:
    """Run a :class:`Topology` against a :class:`Cluster`."""

    def __init__(
        self,
        topology: Topology,
        cluster: Cluster,
        config: Optional[StreamsConfig] = None,
    ) -> None:
        self.topology = topology
        self.cluster = cluster
        self.config = config or StreamsConfig()
        self.config.validate()
        self.instances: List[StreamsInstance] = []
        self._instance_seq = 0
        # Observer hook fired after every changelog restore, with
        # (task_id, store_name, store, changelog_topic, partition,
        # next_offset, from_offset). Invariant checkers attach here to
        # verify the restored store equals an independent changelog replay.
        self.restore_listener = None
        # Task unavailability windows: task_id -> virtual time of the last
        # commit before the task closed anywhere. Closed again by the first
        # record the task processes after reopening; the gap lands in the
        # rebalance_unavailability_ms histogram.
        self._task_unavailable_since: Dict[TaskId, float] = {}
        # Interactive queries: routing metadata, the client router, and the
        # live store-update listener registry (push queries subscribe here;
        # the shared dict means stores rebuilt after a migration re-attach
        # the same listeners).
        self._metadata_service = None
        self._query_router = None
        self._store_listeners: Dict[str, List[Any]] = {}

        self._sub_topologies: Dict[int, SubTopology] = {
            sub.sub_id: sub for sub in topology.sub_topologies()
        }
        self._repartition_topics: Set[str] = set()
        for spec in topology.global_tables().values():
            cluster.topic_metadata(spec.topic)   # must already exist
        self._create_repartition_topics()
        self._task_counts = self._validate_copartitioning()
        self._create_changelog_topics()

        task_partitions: Dict[TaskId, List[TopicPartition]] = {}
        for sub in self._sub_topologies.values():
            for partition in range(self._task_counts[sub.sub_id]):
                task_id = TaskId(sub.sub_id, partition)
                task_partitions[task_id] = [
                    TopicPartition(self.resolve_topic(topic), partition)
                    for topic in sorted(sub.source_topics)
                ]
        self.assignor = StreamsAssignor(task_partitions)
        self.assignor.bind(self)
        cluster.group_coordinator.set_assignor(
            self.config.application_id, self.assignor
        )

        self.all_source_topics: Set[str] = {
            self.resolve_topic(topic)
            for sub in self._sub_topologies.values()
            for topic in sub.source_topics
        }

        # The app is itself an actor (poll/flush); its private driver backs
        # run_until_idle/run_for. Co-scheduling with other engines works by
        # registering the app with an external Driver instead.
        self._driver = Driver(cluster.clock, tracer=cluster.tracer)
        self._driver.register(self)

        # Lazy completeness-watermark tracker (repro.obs.watermarks);
        # built on first use so apps that never ask pay nothing.
        self._watermarks = None

    # -- topic management ---------------------------------------------------------------

    def resolve_topic(self, name: str) -> str:
        return resolve_topic(name, self.config.application_id)

    def is_repartition_topic(self, resolved_name: str) -> bool:
        return resolved_name in self._repartition_topics

    def _default_partitions(self) -> int:
        counts = [
            self.cluster.topic_metadata(topic).num_partitions
            for sub in self._sub_topologies.values()
            for topic in sub.source_topics
            if not self.topology.is_internal_topic(topic)
            and self.cluster.has_topic(topic)
        ]
        return max(counts) if counts else 1

    def _create_repartition_topics(self) -> None:
        default = self._default_partitions()
        for name, spec in self.topology.repartition_topics().items():
            physical = self.resolve_topic(name)
            self._repartition_topics.add(physical)
            if not self.cluster.has_topic(physical):
                self.cluster.create_topic(
                    physical, spec.num_partitions or default
                )

    def _validate_copartitioning(self) -> Dict[int, int]:
        """Every source topic of a sub-topology must exist and have the
        same partition count — that count is the sub-topology's task count."""
        task_counts: Dict[int, int] = {}
        for sub in self._sub_topologies.values():
            counts = {}
            for topic in sorted(sub.source_topics):
                physical = self.resolve_topic(topic)
                counts[physical] = self.cluster.topic_metadata(physical).num_partitions
            distinct = set(counts.values())
            if len(distinct) != 1:
                raise TopologyError(
                    f"sub-topology {sub.sub_id}: source topics are not "
                    f"co-partitioned: {counts}"
                )
            task_counts[sub.sub_id] = distinct.pop()
        return task_counts

    def _create_changelog_topics(self) -> None:
        for sub in self._sub_topologies.values():
            for spec in sub.stores:
                if not spec.changelog:
                    continue
                topic = spec.changelog_topic(self.config.application_id)
                if not self.cluster.has_topic(topic):
                    self.cluster.create_topic(
                        topic, self._task_counts[sub.sub_id], compacted=True
                    )

    def sub_topology(self, sub_id: int) -> SubTopology:
        return self._sub_topologies[sub_id]

    def task_ids(self) -> List[TaskId]:
        return sorted(
            TaskId(sub_id, p)
            for sub_id, count in self._task_counts.items()
            for p in range(count)
        )

    # -- rebalance availability accounting ---------------------------------------------------

    def note_task_closed(self, task_id: TaskId, since_ms: float) -> None:
        """Open an unavailability window for ``task_id`` at ``since_ms``
        (the last commit before it closed). The earliest close wins when a
        task bounces through several instances before reopening."""
        self._task_unavailable_since.setdefault(task_id, since_ms)

    def first_process_listener_for(self, task_id: TaskId):
        """One-shot callback closing the unavailability window when a
        reopened task processes its first record; None when no window is
        open (initial startup is not a rebalance outage)."""
        since = self._task_unavailable_since.pop(task_id, None)
        if since is None:
            return None

        def listener() -> None:
            self.cluster.metrics.histogram(
                "rebalance_unavailability_ms",
                app=self.config.application_id,
            ).observe(self.cluster.clock.now - since)

        return listener

    # -- instance lifecycle -----------------------------------------------------------------

    def add_instance(self) -> StreamsInstance:
        instance = StreamsInstance(self, self._instance_seq)
        self._instance_seq += 1
        self.instances.append(instance)
        return instance

    def start(self, num_instances: int = 1) -> "KafkaStreams":
        for _ in range(num_instances):
            self.add_instance()
        return self

    def remove_instance(self, instance: StreamsInstance) -> None:
        """Graceful shutdown of one instance (commits, leaves the group)."""
        instance.close(commit=True)
        self.instances.remove(instance)

    def crash_instance(self, instance: StreamsInstance) -> None:
        """Abrupt failure: no commit, no abort. The group coordinator
        notices (modelled as an immediate session timeout) and rebalances;
        a dangling transaction stays open until fenced or timed out."""
        instance.crash()
        if instance.consumer.member_id is not None:
            # The eviction below models the session timeout firing, so it
            # counts as the coordinator *detecting* the dead instance.
            rec = self.cluster.recovery
            if rec is not None:
                rec.note_detection(
                    "session_expired",
                    group=self.config.application_id,
                    member=instance.consumer.member_id,
                )
            self.cluster.group_coordinator.leave_group(
                self.config.application_id, instance.consumer.member_id
            )
        self.instances.remove(instance)

    def close(self) -> None:
        for instance in list(self.instances):
            self.remove_instance(instance)

    # -- region failover ----------------------------------------------------------------------

    def migrate_to(self, cluster: Cluster, planned: bool = True) -> None:
        """Move this application to another cluster (region failover).

        With ``planned=True`` every instance commits and leaves the group
        first, so its final source offsets are exact; a *planned* caller
        should additionally wait for the mirror to drain
        (``MirrorLink.drained()``) and push one last group sync before
        restarting instances, which makes the move lossless end to end.
        With ``planned=False`` instances crash in place — the source
        region is presumed lost — and the application resumes from the
        last offsets the mirror managed to sync, reprocessing at most the
        unsynced tail.

        The handle is rebound but **no instances are started**: callers
        decide when the new region is ready (mirror drained, offsets
        synced) and then call :meth:`add_instance` / :meth:`start` as on
        day one. Instances restore state from the mirrored changelog
        topics and resume input from the translated committed offsets the
        mirror published to the new region's group coordinator.
        """
        if cluster is self.cluster:
            return
        if cluster.clock is not self.cluster.clock:
            raise ValueError(
                "migration requires clusters sharing one clock "
                "(a Federation provides this)"
            )
        for instance in list(self.instances):
            if planned:
                self.remove_instance(instance)
            else:
                self.crash_instance(instance)
        self.cluster = cluster
        # Re-run day-one topic setup against the new region. Mirrored
        # topics (sources, repartition, changelogs) already exist there
        # with identical partition counts; anything missing is created
        # empty, and a partition-count mismatch is a real topology error.
        for spec in self.topology.global_tables().values():
            cluster.topic_metadata(spec.topic)
        self._create_repartition_topics()
        new_counts = self._validate_copartitioning()
        if new_counts != self._task_counts:
            raise TopologyError(
                f"task counts changed across migration: "
                f"{self._task_counts} -> {new_counts}"
            )
        self._create_changelog_topics()
        cluster.group_coordinator.set_assignor(
            self.config.application_id, self.assignor
        )
        # Region-scoped lazy singletons are rebuilt on next use; open
        # unavailability windows reference the old region's rebalances.
        self._metadata_service = None
        self._query_router = None
        self._watermarks = None
        self._task_unavailable_since.clear()

    # -- driving ------------------------------------------------------------------------------

    def step(self) -> int:
        """One cooperative cycle across all instances; returns records
        processed. Transaction timeouts no longer need a per-cycle sweep:
        the coordinator's own timers reap timed-out transactions whenever
        virtual time passes their deadlines."""
        processed = 0
        for instance in list(self.instances):
            processed += instance.step()
        return processed

    # Actor protocol (repro.sim.scheduler.Driver): the whole app is one
    # pollable work source, so a single driver can co-schedule several
    # apps — or an app, the checkpoint baseline, and a ksql query —
    # against one cluster.
    def poll(self) -> int:
        return self.step()

    def flush(self) -> None:
        self.commit_all()

    @property
    def driver(self) -> Driver:
        """The app's private driver (scheduler stats live here)."""
        return self._driver

    def run_until_idle(self, max_steps: int = 10_000) -> int:
        """Drive the app until no work remains; returns records processed.

        Discrete-event semantics: when a cycle processes nothing, pending
        work is committed and the clock jumps straight to the next due
        timer (commit interval, punctuation, in-flight transaction
        markers) instead of creeping forward in 1 ms idle ticks. Always
        finishes with commits on every instance so all outputs are visible
        to read-committed consumers.
        """
        return self._driver.run_until_idle(max_cycles=max_steps)

    def run_for(self, duration_ms: float) -> int:
        """Drive the app until ``duration_ms`` of virtual time passes,
        jumping idle gaps to the next due timer."""
        return self._driver.run_for(duration_ms)

    def commit_all(self) -> None:
        from repro.errors import TaskMigratedError

        for instance in self.instances:
            if instance.alive and instance.tasks:
                try:
                    instance.commit()
                except TaskMigratedError:
                    instance._handle_migration()

    # -- interactive queries ----------------------------------------------------------------------

    def sub_id_for_store(self, store_name: str) -> Optional[int]:
        """The sub-topology owning ``store_name``, or None if unknown."""
        for sub in self._sub_topologies.values():
            if any(spec.name == store_name for spec in sub.stores):
                return sub.sub_id
        return None

    def store_partition_count(self, store_name: str) -> int:
        """How many task partitions ``store_name`` is sharded across."""
        sub_id = self.sub_id_for_store(store_name)
        if sub_id is None:
            raise KeyError(f"unknown store: {store_name!r}")
        return self._task_counts[sub_id]

    @property
    def watermarks(self):
        """The app's completeness-watermark tracker (lazy singleton)."""
        if self._watermarks is None:
            from repro.obs.watermarks import WatermarkTracker

            self._watermarks = WatermarkTracker(self)
        return self._watermarks

    def completeness_frontier(self, store_name: Optional[str] = None) -> float:
        """The event-time completeness frontier (see obs/watermarks.py).

        Every input record with a timestamp strictly below the returned
        value is committed-processed; ``COMPLETE`` (+inf) means no
        backlog at all. With ``store_name``, only the store's upstream
        cone counts — the IQ layer serves this next to ``position()``.
        """
        return self.watermarks.frontier(store=store_name)

    @property
    def metadata_service(self):
        """(store, key) -> owner/standby routing with epochs (lazy)."""
        if self._metadata_service is None:
            from repro.iq.metadata import MetadataService

            self._metadata_service = MetadataService(self)
        return self._metadata_service

    def query_router(self, **kwargs: Any):
        """The app-local interactive-query client (lazy singleton). Extra
        kwargs (retry/backoff tuning) only apply on first construction."""
        if self._query_router is None:
            from repro.iq.router import QueryRouter

            self._query_router = QueryRouter(self, **kwargs)
        return self._query_router

    @property
    def store_listeners(self) -> Dict[str, List[Any]]:
        """Live registry handed to every StreamTask at construction."""
        return self._store_listeners

    def add_store_listener(self, store_name: str, listener) -> None:
        """Subscribe ``listener(key, value)`` to every update of
        ``store_name`` — on stores alive now *and* on any rebuilt later
        (push queries survive task migrations). Changelog-restore replays
        do not fire listeners; only live writes do."""
        self._store_listeners.setdefault(store_name, []).append(listener)
        for instance in self.instances:
            for task in instance.tasks.values():
                store = task.stores().get(store_name)
                if store is not None and hasattr(store, "add_listener"):
                    store.add_listener(listener)

    def remove_store_listener(self, store_name: str, listener) -> None:
        """Unsubscribe ``listener`` from registry and live stores (a push
        query closing)."""
        listeners = self._store_listeners.get(store_name)
        if listeners is not None and listener in listeners:
            listeners.remove(listener)
        for instance in self.instances:
            for task in instance.tasks.values():
                store = task.stores().get(store_name)
                if store is not None and hasattr(store, "remove_listener"):
                    store.remove_listener(listener)

    def store_contents(self, store_name: str) -> Dict[Any, Any]:
        """Merge a store's entries across all tasks hosting it (the
        interactive-query surface used by state catalogs, Section 6.1),
        read through the read-only queryable-state facade."""
        merged: Dict[Any, Any] = {}
        sub_id = self.sub_id_for_store(store_name)
        for instance in self.instances:
            for task_id, task in instance.tasks.items():
                if task_id.sub_id != sub_id:
                    continue
                view = task.queryable_store(store_name)
                merged.update(dict(view.all()))
        return merged

    def metric_total(self, attr: str) -> int:
        """Sum a numeric attribute over all live processors (e.g.
        ``dropped_records``)."""
        total = 0
        for instance in self.instances:
            for task in instance.tasks.values():
                for processor in task.processors().values():
                    total += getattr(processor, attr, 0)
        return total
