"""State restoration: replaying changelog topics.

State stores are disposable materialized views (Section 4): when a task is
(re)created on an instance, each of its changelog-backed stores is rebuilt
by replaying the corresponding changelog topic partition with a
read-committed view, so uncommitted or aborted transactional writes never
enter the restored state — the restored store is exactly the state at the
last committed transaction.

Restores can be *throttled*: ``max_records`` caps one replay round so a
mass restore after instance loss is spread across polls instead of
monopolising the instance (see ``StreamsConfig.restore_max_records_per_poll``).
The caller tracks the returned ``next_offset`` and calls again until the
replay reports completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.broker.fetch import fetch
from repro.broker.partition import TopicPartition
from repro.config import READ_COMMITTED

if TYPE_CHECKING:  # pragma: no cover
    from repro.broker.cluster import Cluster

# Modelled cost of replaying one changelog record into a store during
# restoration. Charged (together with one fetch round trip) only when the
# cluster's network charges latency at all, so recovery time is
# proportional to how far behind the restore starts — the quantity
# lag-aware task placement (KIP-441) exists to minimise.
RESTORE_APPLY_COST_MS_PER_RECORD = 0.02

_UNBOUNDED = 2**31


def restore_store(
    cluster: "Cluster",
    store,
    changelog_topic: str,
    partition: int,
    from_offset: int = 0,
    max_records: int = 0,
    kind: str = "task",
):
    """Replay committed changelog records into ``store`` starting at
    ``from_offset``; returns (records_applied, next_offset, complete).

    Passing a standby task's position as ``from_offset`` turns a full
    rebuild into an incremental catch-up. ``max_records > 0`` bounds one
    round (restore throttling); ``complete`` reports whether the store
    reached the committed end of the changelog. ``kind`` labels the
    replay for recovery-phase tracking: active-task rebuilds ("task")
    and checkpoint reloads count toward the restore phase, steady-state
    standby catch-up ("standby") does not. The store must expose
    ``restore_put(key, value)``.
    """
    tp = TopicPartition(changelog_topic, partition)
    tracer = cluster.tracer
    if not tracer.enabled:
        return _replay(cluster, store, tp, from_offset, max_records, kind)
    with tracer.begin(
        "restore",
        "restore",
        str(tp),
        category="restore",
        store=store.name,
        from_offset=from_offset,
        kind=kind,
    ) as span:
        applied, next_offset, complete = _replay(
            cluster, store, tp, from_offset, max_records, kind
        )
        span.add(applied=applied, next_offset=next_offset, complete=complete)
    return applied, next_offset, complete


def _replay(
    cluster: "Cluster",
    store,
    tp: TopicPartition,
    from_offset: int,
    max_records: int,
    kind: str,
):
    log = cluster.partition_state(tp).leader_log()
    result = fetch(
        log,
        max(from_offset, log.log_start_offset),
        max_records=max_records if max_records > 0 else _UNBOUNDED,
        isolation_level=READ_COMMITTED,
    )
    applied = 0
    for record in result.records:
        store.restore_put(record.key, record.value)
        applied += 1
    # The replay pins the store's position watermark to the exact next
    # offset of the committed prefix — the staleness bound every
    # interactive-query read from this store (standby or restored active)
    # reports.
    rebase = getattr(store, "rebase_position", None)
    if rebase is not None:
        rebase(result.next_offset)
    if applied and cluster.network.charge_latency:
        cluster.clock.advance(
            cluster.network.fetch_cost()
            + applied * RESTORE_APPLY_COST_MS_PER_RECORD
        )
    complete = result.next_offset >= log.last_stable_offset
    rec = cluster.recovery
    if rec is not None and kind != "standby":
        rec.note_restore(kind, records=applied, complete=complete, store=store.name)
    return applied, result.next_offset, complete
