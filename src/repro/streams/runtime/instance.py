"""StreamsInstance: one deployed copy of the application.

Owns an embedded consumer (a group member) and embedded producer(s), hosts
the tasks assigned to it, and drives their read-process-write cycles. In
exactly-once mode every output — sink records, changelog appends, and the
source-offset commit — happens inside one transaction per commit interval;
in at-least-once mode offsets are committed non-transactionally after the
outputs are flushed, which is precisely the window in which a crash causes
duplicated effects (Figure 1).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.broker.partition import TopicPartition
from repro.clients.consumer import Consumer
from repro.clients.producer import Producer
from repro.config import (
    READ_COMMITTED,
    READ_SPECULATIVE,
    READ_UNCOMMITTED,
    ConsumerConfig,
    ProducerConfig,
    StreamsConfig,
)
from repro.errors import (
    CommitFailedError,
    IllegalGenerationError,
    MaxBlockTimeoutError,
    ProducerFencedError,
    RetriableError,
    TaskMigratedError,
    UnknownMemberError,
)
# (ProducerFencedError is both caught around commits — wrapped as
# TaskMigratedError — and around the processing loop directly.)
from repro.streams.runtime.task import StreamTask, TaskId
from repro.util import ExponentialBackoff

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.runtime.app import KafkaStreams

# Modelled CPU cost of processing one record through a sub-topology.
PROCESS_COST_MS_PER_RECORD = 0.008


class StreamsInstance:
    """One application instance (modelled as a single stream thread)."""

    def __init__(self, app: "KafkaStreams", instance_id: int) -> None:
        self.app = app
        self.instance_id = instance_id
        self.config: StreamsConfig = app.config
        self.cluster = app.cluster
        self.tasks: Dict[TaskId, StreamTask] = {}
        self.standby_tasks: Dict[TaskId, Any] = {}
        self.alive = True
        self.commits_performed = 0
        self.commits_deferred = 0      # speculative commits awaiting upstream
        self.speculation_rollbacks = 0
        self.records_processed = 0
        # Graceful degradation under sustained coordinator loss: when a
        # blocking client call burns its whole timeout budget, this
        # instance sheds polls for a bounded, exponentially growing pause
        # instead of immediately re-blocking (see _enter_degraded).
        self._degraded_until: Optional[float] = None
        self._degraded_backoff = ExponentialBackoff(
            app.config.degraded_pause_ms, app.config.degraded_pause_max_ms
        )
        self.degraded_pauses = 0

        if self.config.speculative:
            isolation = READ_SPECULATIVE
        elif self.config.eos_enabled:
            isolation = READ_COMMITTED
        else:
            isolation = READ_UNCOMMITTED
        # Columnar batch execution: poll ColumnarBatches and push column
        # chunks through batch-capable tasks. Speculative mode needs
        # per-record transaction-dependency tracking, so it stays scalar.
        self._batch_mode = self.config.batch_execution and not self.config.speculative
        self.consumer = Consumer(
            self.cluster,
            ConsumerConfig(
                client_id=f"{self.config.application_id}-consumer-{instance_id}",
                group_id=self.config.application_id,
                isolation_level=isolation,
                auto_offset_reset="earliest",
                max_poll_records=self.config.max_poll_records,
                session_timeout_ms=self.config.session_timeout_ms,
                rebalance_protocol=self.config.rebalance_protocol,
                hedged_fetch=self.config.hedged_fetch,
            ),
        )
        # The pipeline's own consumer stamps `__t_fetched` on records (when
        # tracing is on) so e2e latency decomposes into stages; downstream
        # verifier consumers leave the stamps alone.
        self.consumer.stage_stamping = True
        self._tracer = self.cluster.tracer
        self._trace_pid = f"streams-{self.config.application_id}"
        self._trace_tid = f"instance-{instance_id}"
        self._task_producers: Dict[TaskId, Producer] = {}
        self._thread_producer: Optional[Producer] = None
        if not self.config.eos_per_task_producer:
            self._thread_producer = self._make_producer(
                transactional_id=(
                    f"{self.config.application_id}-{instance_id}"
                    if self.config.eos_enabled
                    else None
                )
            )
        self._txn_open = False
        self._last_commit_ms = self.cluster.clock.now
        # Commit-interval deadline as a clock timer: the callback only sets
        # a flag; the commit itself runs at the safe points in step() (never
        # mid-record, where it could split a transaction). The timer is a
        # *wake* timer, so an idle driver jumps straight to the next commit
        # deadline instead of creeping toward it 1 ms at a time.
        self._commit_due = False
        self._commit_timer = None
        # Wake timer for the earliest wall-clock punctuation across tasks.
        self._punct_timer = None
        # Global tables: one full local replica per instance.
        from repro.streams.global_table import GlobalStateStore

        self.global_state = {
            name: GlobalStateStore(self.cluster, spec)
            for name, spec in app.topology.global_tables().items()
        }
        # The group coordinator's session timer probes this when the
        # session deadline passes: a live instance (whose background
        # heartbeat thread would have kept the session fresh in real time)
        # is not evicted just because discrete-event time jumped; a crashed
        # one is.
        self.consumer.liveness_probe = lambda: self.alive
        # Incremental rebalance listener: the consumer diffs each new
        # assignment and reports which partitions were revoked, added, and
        # retained, so only the revoked tasks are committed and closed.
        self.consumer.rebalance_callback = self._on_assignment_change
        self.consumer.subscribe(sorted(app.all_source_topics))
        # Revocation barrier: before any rebalance hands partitions to
        # another member, this instance commits its in-flight work.
        self.cluster.group_coordinator.set_rebalance_listener(
            self.config.application_id,
            self.consumer.member_id,
            self._on_rebalance_revoke,
        )
        # Interactive-query endpoint (the modelled REST handler); lazily
        # imported so repro.streams does not depend on repro.iq at import.
        from repro.iq.server import QueryServer

        self.query_server = QueryServer(self)

    def _on_rebalance_revoke(self) -> None:
        if not self.alive or not self.tasks:
            return
        try:
            self.commit()
        except TaskMigratedError:
            self._handle_migration()

    def _on_assignment_change(self, revoked, added, retained) -> None:
        """React to an assignment diff from the consumer.

        Tasks whose partitions were truly lost (revoked and not re-granted)
        are committed and closed here, *during* the poll that adopted the
        new assignment; retained tasks are untouched and keep processing.
        Added partitions are paused until :meth:`_sync_tasks` has sought
        them to the committed offset of their new task — records fetched
        before the task exists would otherwise be silently dropped.
        """
        if not self.alive:
            return
        lost_tps = set(revoked) - set(added)
        lost_tasks = {
            self.app.assignor.task_for(tp)
            for tp in lost_tps
            if self.app.assignor.task_for(tp) in self.tasks
        }
        metrics = self.cluster.metrics
        if lost_tasks:
            metrics.counter(
                "tasks_revoked_total", app=self.config.application_id
            ).increment(len(lost_tasks))
            if any(
                self.tasks[t].has_pending_commit() for t in lost_tasks
            ):
                # A commit failure here means this member was fenced; let
                # the error surface through poll() to the migration path.
                self.commit()
            for task_id in sorted(lost_tasks):
                self.app.note_task_closed(task_id, self._last_commit_ms)
                self.tasks.pop(task_id).close()
                producer = self._task_producers.pop(task_id, None)
                if producer is not None:
                    producer.close()
        retained_tasks = len(self.tasks)
        if retained_tasks:
            metrics.counter(
                "tasks_retained_total", app=self.config.application_id
            ).increment(retained_tasks)
        for tp in lost_tps:
            self.consumer.resume(tp)   # drop stale pause state

    def _make_producer(self, transactional_id: Optional[str]) -> Producer:
        producer = Producer(
            self.cluster,
            ProducerConfig(
                client_id=f"{self.config.application_id}-producer-{self.instance_id}",
                transactional_id=transactional_id,
                transaction_timeout_ms=self.config.transaction_timeout_ms,
                max_block_ms=self.config.producer_max_block_ms,
            ),
        )
        if transactional_id is not None:
            producer.init_transactions()
        return producer

    # -- producers per mode ------------------------------------------------------------

    def producer_for(self, task_id: TaskId) -> Producer:
        if self._thread_producer is not None:
            return self._thread_producer
        producer = self._task_producers.get(task_id)
        if producer is None:
            producer = self._make_producer(
                f"{self.config.application_id}-{task_id}"
            )
            self._task_producers[task_id] = producer
        return producer

    def transactional_producer_count(self) -> int:
        """Metric for the Section 6.1 insight: EOS coordination overhead
        scales with producers — per thread (v2) vs per task (v1)."""
        if not self.config.eos_enabled:
            return 0
        if self._thread_producer is not None:
            return 1
        return len(self._task_producers)

    # -- the poll/process/commit cycle ----------------------------------------------------

    def step(self) -> int:
        """One cycle: poll, sync task set, process, maybe commit.

        Returns the number of records processed.
        """
        if not self.alive:
            return 0
        if self._degraded_until is not None:
            if self.cluster.clock.now < self._degraded_until:
                self.cluster.metrics.counter(
                    "streams.degraded_shed_polls",
                    app=self.config.application_id,
                ).increment()
                return 0
            self._degraded_until = None
        try:
            for global_store in self.global_state.values():
                global_store.update()
            if self._batch_mode:
                batches = self.consumer.poll_batches()
            else:
                records = self.consumer.poll()
            if self.consumer.take_partitions_lost():
                # We were kicked from the group (zombie scenario): nothing
                # processed since the last commit may survive.
                raise TaskMigratedError("partitions lost: member was kicked")
            self._sync_tasks()
            if self._batch_mode:
                self._route_batches(batches)
            else:
                self._route(records)
            restored = self._drive_restores()
            if self._tracer.enabled:
                # Post-route queue depths, one labeled gauge per task; the
                # telemetry reporter turns these into time series.
                metrics = self.cluster.metrics
                for task_id, task in self.tasks.items():
                    metrics.gauge(
                        "task_queue_depth", task=repr(task_id)
                    ).set(task.buffered())
            if self.config.eos_enabled:
                self._ensure_transactions()
            # Process one record per task per round: tasks interleave
            # finely, as in the real stream thread's loop, so a task with a
            # deep buffer does not starve others (and does not flood
            # repartition topics with long out-of-order timestamp runs).
            # In batch mode the unit of interleaving is one column chunk
            # per task per round instead — commit boundaries land on chunk
            # boundaries, with identical committed output.
            batch_mode = self._batch_mode
            processed = 0
            while True:
                round_count = 0
                for task in self.tasks.values():
                    if batch_mode and task.batch_capable:
                        round_count += task.process_next_chunk()
                    else:
                        round_count += task.process_batch(1)
                if round_count == 0:
                    break
                processed += round_count
                self.cluster.clock.advance(round_count * PROCESS_COST_MS_PER_RECORD)
                if self._commit_interval_elapsed():
                    self.commit()
                    if self.config.eos_enabled:
                        self._ensure_transactions()
            self.records_processed += processed
            if self.config.speculative and processed:
                # Make in-flight (uncommitted) writes visible to
                # read_speculative downstreams promptly, like a real
                # producer's linger-based sending — not only at commit.
                for producer in self._all_producers():
                    if producer._in_transaction:
                        producer.flush()
            now = self.cluster.clock.now
            for task in self.tasks.values():
                task.punctuate_wall_clock(now)
            for standby in self.standby_tasks.values():
                standby.update()
            if self._commit_interval_elapsed():
                self.commit()
            self._arm_timers()
            return processed + restored
        except TaskMigratedError:
            self._handle_migration()
            return 0
        except ProducerFencedError:
            # A newer incarnation (or the transaction reaper) fenced this
            # instance's producer mid-processing.
            self._handle_migration()
            return 0
        except (MaxBlockTimeoutError, RetriableError):
            # Sustained coordinator/broker loss: a blocking call burned its
            # whole timeout budget. Degrade gracefully — shed polls for a
            # bounded pause — instead of spinning straight back into
            # another full-length block.
            self._enter_degraded()
            return 0

    def _sync_tasks(self) -> None:
        """Create tasks for newly assigned partitions, close removed ones.

        Revoked tasks are *committed* before closing (the rebalance-listener
        behaviour of Kafka Streams): their uncommitted sends already sit in
        this instance's ongoing transaction, so dropping them without a
        commit would later commit that data without its input offsets and
        break exactly-once.
        """
        assigned_tasks: Dict[TaskId, List[TopicPartition]] = {}
        for tp in self.consumer.assignment():
            task_id = self.app.assignor.task_for(tp)
            assigned_tasks.setdefault(task_id, []).append(tp)

        removed = [t for t in self.tasks if t not in assigned_tasks]
        if removed:
            self.commit()
            for task_id in removed:
                self.app.note_task_closed(task_id, self._last_commit_ms)
                self.tasks.pop(task_id).close()
                producer = self._task_producers.pop(task_id, None)
                if producer is not None:
                    producer.close()

        to_create = [t for t in sorted(assigned_tasks) if t not in self.tasks]
        coordinator = self.cluster.group_coordinator
        if to_create and not coordinator.offsets_stable(
            self.config.application_id
        ):
            # The previous owner's offset commit is still materialising
            # (transaction markers in flight): reading "last committed"
            # now could adopt the offsets of the commit *before* it.
            # Pause the new partitions and retry on a later poll — the
            # KIP-447 UNSTABLE_OFFSET_COMMIT backoff. (Anything already
            # fetched for them is dropped by _route; the seek below
            # re-fetches it once the task exists.)
            for task_id in to_create:
                for tp in assigned_tasks[task_id]:
                    self.consumer.pause(tp)
            self._sync_standbys()
            return

        for task_id in to_create:
            partitions = assigned_tasks[task_id]
            # Partitions paused by an earlier deferral had records fetched
            # and dropped before the pause took hold: rewind them to the
            # committed offset so nothing is lost. Never-paused partitions
            # keep their poll positions — their fetched records are routed
            # right after this sync, and a rewind would duplicate them.
            paused = [tp for tp in partitions if tp in self.consumer._paused]
            if paused:
                committed = coordinator.fetch_committed(
                    self.config.application_id, paused
                )
                for tp in paused:
                    offset = committed.get(tp)
                    if offset is not None:
                        self.consumer.seek(tp, offset)
                    else:
                        self.consumer.seek_to_beginning(tp)
                    self.consumer.resume(tp)
            producer = self.producer_for(task_id)
            standby_state = None
            standby = self.standby_tasks.pop(task_id, None)
            if standby is not None:
                standby.update()              # final catch-up before promotion
                standby_state = standby.handoff()
            task = StreamTask(
                task_id=task_id,
                sub_topology=self.app.sub_topology(task_id.sub_id),
                application_id=self.config.application_id,
                cluster=self.cluster,
                producer=producer,
                resolve=self.app.resolve_topic,
                standby_state=standby_state,
                global_stores={
                    name: gs.store for name, gs in self.global_state.items()
                },
                track_speculation=self.config.speculative,
                restore_listener=self._notify_restore,
                store_listeners=self.app.store_listeners,
                restore_budget_per_poll=self.config.restore_max_records_per_poll,
            )
            task.first_process_listener = self.app.first_process_listener_for(
                task_id
            )
            self.tasks[task_id] = task
        self._sync_standbys()

    def _sync_standbys(self) -> None:
        """Maintain warm shadow stores for stateful tasks owned elsewhere.

        At most ``num_standby_replicas`` standbys exist per stateful task:
        each non-owner instance ranks itself against the other candidates
        by rendezvous hashing of the task id, and hosts the standby only
        when it lands in the top N. Every instance evaluates the same
        deterministic ranking, so the replica set needs no coordination.
        On top of the configured replicas, this instance also shadows any
        **warmup** tasks the assignor earmarked for it — standbys built
        solely so a pending migration can complete without a cold restore.
        """
        from repro.streams.runtime.standby import StandbyTask
        from repro.util import stable_hash

        warmups = self.app.assignor.warmup_tasks_for(self.consumer.member_id)
        replicas = self.config.num_standby_replicas
        wanted = set()
        for task_id in self.app.task_ids():
            if task_id in self.tasks:
                continue
            sub = self.app.sub_topology(task_id.sub_id)
            if not any(spec.changelog for spec in sub.stores):
                continue
            if task_id in warmups:
                wanted.add(task_id)
                continue
            if replicas <= 0:
                continue
            candidates = [
                inst
                for inst in self.app.instances
                if inst.alive and task_id not in inst.tasks
            ]
            ranked = sorted(
                candidates,
                key=lambda inst: (
                    stable_hash(f"{task_id!r}:{inst.instance_id}"),
                    inst.instance_id,
                ),
            )
            if self in ranked[:replicas]:
                wanted.add(task_id)
        for task_id in list(self.standby_tasks):
            if task_id not in wanted:
                del self.standby_tasks[task_id]
        for task_id in sorted(wanted):
            if task_id not in self.standby_tasks:
                self.standby_tasks[task_id] = StandbyTask(
                    task_id=task_id,
                    sub_topology=self.app.sub_topology(task_id.sub_id),
                    application_id=self.config.application_id,
                    cluster=self.cluster,
                )

    def _drive_restores(self) -> int:
        """Throttled changelog replay: spread one poll's restore budget
        across restoring tasks, smallest lag first, so tasks close to
        completion come online soonest and a mass restore after instance
        loss cannot monopolize the thread (live tasks keep processing
        between rounds). Returns records applied this round."""
        restoring = [t for t in self.tasks.values() if t.is_restoring]
        if not restoring:
            return 0
        budget = self.config.restore_max_records_per_poll
        restoring.sort(key=lambda t: t.restore_remaining())
        applied = 0
        for task in restoring:
            if budget <= 0:
                break
            step = task.restore_step(budget)
            budget -= step
            applied += step
        if applied == 0 and any(t.is_restoring for t in restoring):
            # Changelog leaders unavailable (mid-failover): wake shortly
            # to retry instead of letting an idle driver stall forever.
            self.cluster.clock.schedule(10.0, lambda: None)
        return applied

    def _enter_degraded(self) -> None:
        """Bounded pause after a blocking client call exhausted its
        timeout budget (sustained coordinator loss). Each consecutive
        entry grows the pause up to ``degraded_pause_max_ms``; the first
        successful commit resets it. Shed polls are accounted in metrics
        so the degradation is observable rather than silent."""
        pause = self._degraded_backoff.next_delay_ms()
        self._degraded_until = self.cluster.clock.now + pause
        self.degraded_pauses += 1
        self.cluster.metrics.counter(
            "streams.degraded_pauses", app=self.config.application_id
        ).increment()
        rec = self.cluster.recovery
        if rec is not None:
            rec.note_detection(
                "degraded_pause", instance=self.instance_id, pause_ms=pause
            )
        # Wake timer: an idle driver jumps to the end of the pause.
        self.cluster.clock.schedule(pause, lambda: None)

    def _notify_restore(
        self,
        task_id,
        store_name,
        store,
        changelog_topic,
        partition,
        next_offset,
        from_offset=0,
    ) -> None:
        """Forward a completed changelog restore to the app-level observer
        (read at call time so listeners attached after start() still see
        restores from later task migrations). ``from_offset`` tells the
        listener where the replay started — nonzero when a standby handoff
        turned the rebuild into an incremental catch-up."""
        listener = self.app.restore_listener
        if listener is not None:
            listener(
                task_id,
                store_name,
                store,
                changelog_topic,
                partition,
                next_offset,
                from_offset,
            )

    def _route(self, records) -> None:
        by_tp: Dict[TopicPartition, list] = {}
        for record in records:
            tp = TopicPartition(record.headers["__topic"], record.headers["__partition"])
            by_tp.setdefault(tp, []).append(record)
        for tp, batch in by_tp.items():
            task_id = self.app.assignor.task_for(tp)
            task = self.tasks.get(task_id)
            if task is not None:
                task.add_records(tp, batch)

    def _route_batches(self, batches) -> None:
        """Hand fetched ColumnarBatches to their tasks — already grouped
        per partition by the fetch, so routing is per batch, not per
        record. Batches for partitions without a live task are dropped,
        like scalar records; task creation seeks back to the committed
        offset, so nothing is lost."""
        for batch in batches:
            tp = TopicPartition(batch.topic, batch.partition)
            task = self.tasks.get(self.app.assignor.task_for(tp))
            if task is not None:
                task.add_batch(tp, batch)

    def _ensure_transactions(self) -> None:
        if self._thread_producer is not None:
            if not self._thread_producer._in_transaction:
                self._thread_producer.begin_transaction()
                self._txn_open = True
            return
        for producer in self._task_producers.values():
            if not producer._in_transaction:
                producer.begin_transaction()

    # -- deadline timers -------------------------------------------------------------------------

    def _commit_interval_elapsed(self) -> bool:
        return self._commit_due or (
            self.cluster.clock.now - self._last_commit_ms
            >= self.config.commit_interval_ms
        )

    def _on_commit_timer(self) -> None:
        self._commit_timer = None
        self._commit_due = True

    def _has_uncommitted_work(self) -> bool:
        if any(task.has_pending_commit() for task in self.tasks.values()):
            return True
        return any(
            p.transaction_has_work or p.has_buffered_records
            for p in self._all_producers()
        )

    def _arm_timers(self) -> None:
        """(Re-)register this instance's next deadlines as wake timers.

        Called at the end of every step. The commit timer is armed only
        while there is uncommitted work — an idle instance has nothing to
        commit, so arming would just keep an idle driver spinning through
        empty commit intervals.
        """
        clock = self.cluster.clock
        if self._has_uncommitted_work():
            deadline = self._last_commit_ms + self.config.commit_interval_ms
            timer = self._commit_timer
            if timer is None or timer.fired or timer.cancelled or timer.deadline != deadline:
                if timer is not None:
                    timer.cancel()
                self._commit_timer = clock.schedule(
                    max(0.0, deadline - clock.now), self._on_commit_timer
                )
        elif self._commit_timer is not None:
            self._commit_timer.cancel()
            self._commit_timer = None

        deadline = None
        for task in self.tasks.values():
            fire = task.next_wall_punctuation()
            if fire is not None and (deadline is None or fire < deadline):
                deadline = fire
        timer = self._punct_timer
        if deadline is None:
            if timer is not None:
                timer.cancel()
                self._punct_timer = None
            return
        if timer is None or timer.fired or timer.cancelled or timer.deadline != deadline:
            if timer is not None:
                timer.cancel()
            # The callback is empty: the timer exists so the driver jumps
            # to the punctuation deadline; the next step() then fires the
            # punctuator at its exact scheduled time.
            self._punct_timer = clock.schedule(
                max(0.0, deadline - clock.now), lambda: None
            )

    def _cancel_timers(self) -> None:
        for attr in ("_commit_timer", "_punct_timer"):
            timer = getattr(self, attr)
            if timer is not None:
                timer.cancel()
                setattr(self, attr, None)
        self._commit_due = False

    # -- commit ---------------------------------------------------------------------------------

    def commit(self) -> None:
        """Commit all tasks' progress (Figure 4's full cycle).

        In speculative mode the commit is gated on the upstream outcome:
        deferred while a consumed upstream transaction is still open,
        rolled back (cascading) if one aborted.
        """
        if not self.tasks:
            self._last_commit_ms = self.cluster.clock.now
            self._commit_due = False
            return
        if self.config.speculative:
            status = self._speculation_status()
            if status == "aborted":
                self._rollback_speculation()
                return
            if status == "pending":
                self.commits_deferred += 1
                return
        try:
            if self._tracer.enabled:
                with self._tracer.begin(
                    "instance.commit",
                    self._trace_pid,
                    self._trace_tid,
                    category="commit",
                    mode="eos" if self.config.eos_enabled else "alos",
                    tasks=len(self.tasks),
                ):
                    if self.config.eos_enabled:
                        self._commit_eos()
                    else:
                        self._commit_alos()
            elif self.config.eos_enabled:
                self._commit_eos()
            else:
                self._commit_alos()
        except (
            ProducerFencedError,
            IllegalGenerationError,
            UnknownMemberError,
            CommitFailedError,
        ) as exc:
            raise TaskMigratedError(str(exc)) from exc
        self.commits_performed += 1
        self._degraded_backoff.reset()
        self._last_commit_ms = self.cluster.clock.now
        self._commit_due = False

    def _commit_eos(self) -> None:
        if self._thread_producer is not None:
            # One transaction groups every task on this instance.
            for task in self.tasks.values():
                task.prepare_commit()
            offsets: Dict[TopicPartition, int] = {}
            for task in self.tasks.values():
                offsets.update(task.pending_offsets())
            producer = self._thread_producer
            if not producer._in_transaction:
                if not offsets:
                    return
                producer.begin_transaction()
            if offsets:
                producer.send_offsets_to_transaction(
                    offsets,
                    self.config.application_id,
                    member_id=self.consumer.member_id,
                    generation=self.consumer.generation,
                )
            producer.commit_transaction()
            for task in self.tasks.values():
                task.mark_committed()
            self._purge_repartition(offsets)
            return
        # One transaction per task (EOS v1).
        for task_id, task in sorted(self.tasks.items()):
            producer = self.producer_for(task_id)
            task.prepare_commit()
            offsets = task.pending_offsets()
            if not producer._in_transaction and not offsets:
                continue
            if not producer._in_transaction:
                producer.begin_transaction()
            if offsets:
                producer.send_offsets_to_transaction(
                    offsets, self.config.application_id
                )
            producer.commit_transaction()
            task.mark_committed()
            self._purge_repartition(offsets)

    def _commit_alos(self) -> None:
        producer = self._thread_producer
        offsets: Dict[TopicPartition, int] = {}
        for task in self.tasks.values():
            task.prepare_commit()
            offsets.update(task.pending_offsets())
        producer.flush()
        if offsets:
            self.consumer.commit_sync(offsets)
            for task in self.tasks.values():
                task.mark_committed()
            self._purge_repartition(offsets)

    def _purge_repartition(self, offsets: Dict[TopicPartition, int]) -> None:
        """Ask the brokers to delete fully processed repartition records —
        downstream sub-topologies have consumed them (Section 3.2)."""
        for tp, offset in offsets.items():
            if self.app.is_repartition_topic(tp.topic):
                self.cluster.delete_records(tp, offset)

    def _speculation_status(self) -> str:
        own_pids = {p.producer_id for p in self._all_producers()}
        worst = "clean"
        for task in self.tasks.values():
            status = task.speculation_status(ignore_pids=own_pids)
            if status == "aborted":
                return "aborted"
            if status == "pending":
                worst = "pending"
        return worst

    def _rollback_speculation(self) -> None:
        """Cascading rollback: an upstream transaction we consumed aborted.

        Abort our own (shared) transaction — which retracts every derived
        output and changelog append of this interval — discard all task
        state, and resume from the last committed offsets. The aborted
        upstream records are filtered by the read_speculative isolation on
        re-read, so the re-speculation converges.
        """
        self.speculation_rollbacks += 1
        for producer in self._all_producers():
            if producer._in_transaction:
                try:
                    producer.abort_transaction()
                except Exception:
                    pass
        for task in self.tasks.values():
            task.close()
        self.tasks.clear()
        self._reset_positions_to_committed()
        self._last_commit_ms = self.cluster.clock.now
        self._commit_due = False

    def _reset_positions_to_committed(self) -> None:
        """Rewind the consumer to the group's committed offsets — records
        fetched into now-discarded tasks must be re-fetched."""
        coordinator = self.cluster.group_coordinator
        committed = coordinator.fetch_committed(
            self.config.application_id, self.consumer.assignment()
        )
        for tp, offset in committed.items():
            if offset is not None:
                self.consumer.seek(tp, offset)
            else:
                self.consumer.seek_to_beginning(tp)

    def _handle_migration(self) -> None:
        """This instance lost its tasks (fenced / kicked): abort, drop all
        task state, and rejoin — the tasks restart elsewhere from the last
        committed transaction."""
        for producer in self._all_producers():
            if producer._in_transaction:
                try:
                    producer.abort_transaction()
                except Exception:
                    pass
        # Re-register transactional producers: a fenced or timed-out epoch
        # is unusable; registration hands this incarnation a fresh one
        # (Kafka Streams recreates its producers after TaskMigrated).
        for producer in self._all_producers():
            if producer.transactional:
                try:
                    producer.init_transactions()
                except Exception:
                    pass
        for task_id, task in self.tasks.items():
            self.app.note_task_closed(task_id, self._last_commit_ms)
            task.close()
        self.tasks.clear()
        if self.consumer.member_id is not None:
            # Release any partitions the coordinator is still waiting on
            # this member to hand over — its state is gone, so the last
            # committed offsets are the correct handover point.
            self.cluster.group_coordinator.rebalance_ack(
                self.config.application_id, self.consumer.member_id
            )
        self.consumer.subscribe(sorted(self.app.all_source_topics))
        self._reset_positions_to_committed()

    def _all_producers(self) -> List[Producer]:
        producers = list(self._task_producers.values())
        if self._thread_producer is not None:
            producers.append(self._thread_producer)
        return producers

    # -- lifecycle --------------------------------------------------------------------------------

    def close(self, commit: bool = True) -> None:
        """Graceful shutdown: commit progress and leave the group."""
        if not self.alive:
            return
        if commit and self.tasks:
            try:
                self.commit()
            except TaskMigratedError:
                pass
        for task_id, task in self.tasks.items():
            self.app.note_task_closed(task_id, self._last_commit_ms)
            task.close()
        self.tasks.clear()
        for producer in self._all_producers():
            producer.close()
        self.consumer.close()
        self._cancel_timers()
        self.alive = False

    def crash(self) -> None:
        """Abrupt failure: nothing is committed or aborted; any open
        transaction dangles until fenced or timed out. The group
        coordinator eventually notices via session expiry (the dead
        instance no longer heartbeats and fails its liveness probe)."""
        self.alive = False
        for task_id in self.tasks:
            self.app.note_task_closed(task_id, self._last_commit_ms)
        self.tasks.clear()
        self._cancel_timers()
