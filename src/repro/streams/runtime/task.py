"""StreamTask: the smallest parallel unit of work (Section 3.3).

A task executes one sub-topology for one partition. Input records from its
source topic partitions are chosen in timestamp order, traverse the fused
processor graph synchronously, update the task's state stores (mirrored to
changelog topics), and emit output records to sink topic partitions —
the read-process-write cycle of Section 4.2.

Tasks are stateless to lose: both their inputs and outputs live in Kafka
logs, so a task can be closed on one instance and recreated on another by
replaying its changelogs (see :mod:`repro.streams.runtime.restore`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional

from repro.broker.partition import TopicPartition
from repro.errors import RetriableError, TopologyError
from repro.log.record import Record
from repro.obs.stages import EMITTED_AT_HEADER, PROCESSED_AT_HEADER
from repro.obs.tracer import TRACE_ID_HEADER
from repro.streams.processor import (
    PUNCTUATION_STREAM_TIME,
    PUNCTUATION_WALL_CLOCK,
    Processor,
    ProcessorContext,
)
from repro.streams.records import ColumnChunk, StreamRecord
from repro.streams.runtime.record_queue import PartitionGroup
from repro.streams.runtime.restore import restore_store
from repro.streams.state.kv_store import InMemoryKeyValueStore
from repro.streams.state.window_store import InMemoryWindowStore
from repro.streams.topology import (
    ProcessorNode,
    SinkNode,
    SourceNode,
    StateStoreSpec,
    SubTopology,
)
from repro.util import partition_for


class TaskId(NamedTuple):
    sub_id: int
    partition: int

    def __repr__(self) -> str:
        return f"{self.sub_id}_{self.partition}"


class StreamTask:
    """One running task on one instance."""

    def __init__(
        self,
        task_id: TaskId,
        sub_topology: SubTopology,
        application_id: str,
        cluster,
        producer,
        resolve: Callable[[str], str],
        standby_state: Optional[Dict[str, Any]] = None,
        global_stores: Optional[Dict[str, Any]] = None,
        track_speculation: bool = False,
        restore_listener: Optional[Callable] = None,
        store_listeners: Optional[Dict[str, List[Callable]]] = None,
        restore_budget_per_poll: int = 0,
    ) -> None:
        # (tp, producer_id) -> [min offset, max offset] consumed from that
        # producer's (possibly still open) transaction — the commit
        # dependencies of speculative processing.
        self._track_speculation = track_speculation
        self.speculative_deps: Dict[Any, List[int]] = {}
        # standby_state: store name -> (warm store, changelog position),
        # handed over by a StandbyTask for incremental restoration.
        self._standby_state = standby_state or {}
        # Instance-wide read-only global-table stores, shared by tasks.
        self._global_stores = global_stores or {}
        self.task_id = task_id
        self.sub = sub_topology
        self.application_id = application_id
        self.cluster = cluster
        self.producer = producer
        self.resolve = resolve
        self.stream_time = float("-inf")
        self.records_processed = 0
        self.restored_records = 0
        self._restore_listener = restore_listener
        # Throttled restoration: with a positive budget, changelog replay
        # is deferred and spread across polls (restore_step) instead of
        # blocking task construction, so a mass restore after instance
        # loss cannot starve live tasks on the same instance.
        self._restore_budget = restore_budget_per_poll
        self._pending_restores: List[Dict[str, Any]] = []
        # Live registry of store update listeners (push-query
        # subscriptions), shared with the app: stores built later — e.g.
        # after a task migration — attach the same subscriptions.
        self._store_listeners = store_listeners or {}
        # One-shot hook fired when this task processes its first record —
        # set by the instance only for tasks reopening after a revocation,
        # so per-task unavailability windows close at the exact virtual
        # time processing resumes (zero overhead otherwise).
        self.first_process_listener: Optional[Callable[[], None]] = None
        self._tracer = cluster.tracer
        # Trace track: one process per application, one lane per task.
        self._trace_pid = f"streams-{application_id}"
        self._trace_tid = repr(task_id)
        # Trace id of the record currently being processed; the changelog
        # hook has no record context, so it propagates this instead.
        self._current_trace: Optional[str] = None

        self.partitions = sorted(
            TopicPartition(resolve(topic), task_id.partition)
            for topic in sub_topology.source_topics
        )
        self._queues = PartitionGroup(self.partitions)
        # Committed progress only covers fully processed records.
        self._consumed: Dict[TopicPartition, int] = {}
        # Event-time watermark bookkeeping: the max processed record
        # timestamp per input partition. The task's low watermark is the
        # min across partitions — every record at or below it has been
        # processed (per partition, up to reordering within the grace
        # period), which is what the completeness frontier reports.
        self._processed_ts: Dict[TopicPartition, float] = {}

        # topic (resolved) -> source node children
        self._source_children: Dict[str, List[str]] = {}
        for node in sub_topology.source_nodes():
            for topic in node.topics:
                self._source_children.setdefault(resolve(topic), []).extend(
                    node.children
                )
        # Memoized per-partition child lists: the processing loop looks
        # children up once per record, so it gets a direct tp -> children
        # mapping instead of a topic-name hop.
        self._children_by_tp: Dict[TopicPartition, List[str]] = {
            tp: self._source_children.get(tp.topic, []) for tp in self.partitions
        }
        # Sink routing cache (resolved topic, partition count) per sink
        # topic, valid for one cluster metadata epoch.
        self._sink_routes: Dict[str, tuple] = {}
        self._sink_routes_epoch = -1
        # Default-partitioner memo per (topic, partition count): key -> partition.
        self._sink_partition_cache: Dict[tuple, Dict[Any, int]] = {}

        self._stores: Dict[str, Any] = {}
        self._build_stores()
        self._punctuations: List[Any] = []
        self._processors: Dict[str, Processor] = {}
        self._build_processors()
        # Columnar eligibility is all-or-nothing per task: every processor
        # must take whole chunks, no punctuator may need per-record stream
        # time, and speculation tracking needs per-record producer ids.
        # Decided once, after processors initialized (a caching aggregate
        # only knows its capability post-init).
        self.batch_capable = (
            not self._track_speculation
            and not self._punctuations
            and all(p.batch_aware for p in self._processors.values())
        )
        metrics = cluster.metrics
        self._batch_fastpath = metrics.counter("streams.batch_fastpath_total")
        self._batch_fallback = metrics.counter("streams.batch_fallback_total")

    # -- construction ---------------------------------------------------------------

    def _build_stores(self) -> None:
        for spec in self.sub.stores:
            handed = self._standby_state.get(spec.name)
            if handed is not None:
                store, from_offset = handed
            else:
                store, from_offset = self._create_store(spec), 0
            self._stores[spec.name] = store
            listeners = self._store_listeners.get(spec.name)
            if listeners and hasattr(store, "add_listener"):
                for listener in listeners:
                    store.add_listener(listener)
            if spec.changelog:
                changelog = spec.changelog_topic(self.application_id)
                if self._restore_budget > 0:
                    # Deferred: restore_step replays in bounded rounds;
                    # hooks/listeners attach when the replay completes.
                    self._pending_restores.append({
                        "spec": spec,
                        "store": store,
                        "changelog": changelog,
                        "from_offset": from_offset,
                        "next_offset": from_offset,
                    })
                    continue
                applied, next_offset, _complete = restore_store(
                    self.cluster,
                    store,
                    changelog,
                    self.task_id.partition,
                    from_offset=from_offset,
                )
                self.restored_records += applied
                self._finish_restore_setup(spec, store, changelog,
                                           next_offset, from_offset)

    def _finish_restore_setup(
        self, spec: StateStoreSpec, store, changelog: str,
        next_offset: int, from_offset: int,
    ) -> None:
        store.set_update_hook(self._changelog_hook(spec))
        if hasattr(store, "set_bulk_update_hook"):
            store.set_bulk_update_hook(self._changelog_bulk_hook(spec))
        if self._restore_listener is not None:
            self._restore_listener(
                self.task_id,
                spec.name,
                store,
                changelog,
                self.task_id.partition,
                next_offset,
                from_offset,
            )

    # -- throttled restoration ---------------------------------------------------

    @property
    def is_restoring(self) -> bool:
        """True while throttled changelog replays are outstanding; the
        task buffers input but does not process until they complete."""
        return bool(self._pending_restores)

    def restore_remaining(self) -> int:
        """Committed changelog records still to replay (the restore lag).
        Leaderless changelog partitions count as unknown-large so they
        sort last in smallest-lag-first prioritization."""
        total = 0
        for item in self._pending_restores:
            tp = TopicPartition(item["changelog"], self.task_id.partition)
            try:
                log = self.cluster.partition_state(tp).leader_log()
            except RetriableError:
                total += 2**31
                continue
            total += max(0, log.last_stable_offset - item["next_offset"])
        return total

    def restore_step(self, budget: int) -> int:
        """Replay up to ``budget`` changelog records across this task's
        pending restores; returns records applied. Completed stores get
        their changelog hooks and fire the restore listener, exactly as
        an unthrottled build would."""
        applied_total = 0
        still: List[Dict[str, Any]] = []
        for item in self._pending_restores:
            if budget <= 0:
                still.append(item)
                continue
            try:
                applied, next_offset, complete = restore_store(
                    self.cluster,
                    item["store"],
                    item["changelog"],
                    self.task_id.partition,
                    from_offset=item["next_offset"],
                    max_records=budget,
                )
            except RetriableError:
                # Changelog leaderless mid-crash; retry on a later poll.
                still.append(item)
                continue
            item["next_offset"] = next_offset
            applied_total += applied
            budget -= applied
            self.restored_records += applied
            if complete:
                self._finish_restore_setup(
                    item["spec"], item["store"], item["changelog"],
                    next_offset, item["from_offset"],
                )
            else:
                still.append(item)
        self._pending_restores = still
        return applied_total

    def _create_store(self, spec: StateStoreSpec):
        if spec.kind == "kv":
            return InMemoryKeyValueStore(spec.name)
        if spec.kind == "window":
            return InMemoryWindowStore(spec.name, retention_ms=spec.retention_ms)
        raise TopologyError(f"unknown store kind: {spec.kind}")

    def _changelog_hook(self, spec: StateStoreSpec):
        topic = spec.changelog_topic(self.application_id)
        partition = self.task_id.partition

        store_name = spec.name

        def on_update(key: Any, value: Any) -> None:
            tracer = self._tracer
            if not tracer.enabled:
                self.producer.send(
                    topic,
                    key=key,
                    value=value,
                    timestamp=max(self.stream_time, 0.0),
                    partition=partition,
                )
                return
            trace = self._current_trace or ""
            tracer.event(
                "store.put",
                self._trace_pid,
                self._trace_tid,
                category="state",
                store=store_name,
                changelog=topic,
                trace=trace,
            )
            # Propagate the triggering record's trace id onto the changelog
            # append so the causal chain survives the state-store hop.
            self.producer.send(
                topic,
                key=key,
                value=value,
                timestamp=max(self.stream_time, 0.0),
                partition=partition,
                headers={TRACE_ID_HEADER: trace} if trace else None,
            )

        return on_update

    def _changelog_bulk_hook(self, spec: StateStoreSpec):
        """Columnar twin of :meth:`_changelog_hook`: one chunk's worth of
        store puts becomes a single column slab on the changelog topic.
        Traced runs fall back to the scalar hook so per-put store events
        and trace propagation stay intact."""
        topic = spec.changelog_topic(self.application_id)
        partition = self.task_id.partition
        scalar_hook = self._changelog_hook(spec)

        def on_update_many(items) -> None:
            if self._tracer.enabled:
                for key, value in items:
                    scalar_hook(key, value)
                return
            timestamp = self.stream_time
            if timestamp < 0.0:
                timestamp = 0.0
            self.producer.send_columns(
                topic,
                partition,
                [key for key, _ in items],
                [value for _, value in items],
                [timestamp] * len(items),
                [{} for _ in items],
            )

        return on_update_many

    def _build_processors(self) -> None:
        for name, node in self.sub.nodes.items():
            if not isinstance(node, ProcessorNode):
                continue
            processor = node.supplier()
            context = ProcessorContext(
                task=self,
                node_name=name,
                children=list(node.children),
                store_names=list(node.stores),
            )
            processor.init(context)
            self._processors[name] = processor

    # -- record intake -------------------------------------------------------------------

    def add_records(self, tp: TopicPartition, records: List[Record]) -> None:
        if self._track_speculation:
            for r in records:
                if r.is_transactional and r.producer_id >= 0:
                    span = self.speculative_deps.setdefault(
                        (tp, r.producer_id), [r.offset, r.offset]
                    )
                    span[0] = min(span[0], r.offset)
                    span[1] = max(span[1], r.offset)
        topic = tp.topic
        partition = tp.partition
        stream_records = [
            StreamRecord(
                key=r.key,
                value=r.value,
                timestamp=r.timestamp,
                # Copy only when there is something to copy — an empty
                # headers dict is never shared with the log's record.
                headers=dict(r.headers) if r.headers else {},
                offset=r.offset,
                topic=topic,
                partition=partition,
            )
            for r in records
        ]
        self._queues.add_records(tp, stream_records)

    def add_batch(self, tp: TopicPartition, batch) -> None:
        """Intake a :class:`~repro.log.columnar.ColumnarBatch`.

        On the fast path the batch's columns are enqueued as-is (plus the
        ``__topic`` / ``__partition`` routing headers the scalar consumer
        injects, merged per record — the only per-record allocation).
        Non-batch-capable tasks materialize scalar records instead, so a
        mixed topology runs each task in its best mode.
        """
        count = batch.valid_count
        if count == 0:
            return
        topic = tp.topic
        partition = tp.partition
        if not self.batch_capable:
            self._batch_fallback.increment(count)
            stream_records = [
                StreamRecord(
                    key=r.key,
                    value=r.value,
                    timestamp=r.timestamp,
                    headers={
                        **r.headers,
                        "__topic": topic,
                        "__partition": partition,
                    },
                    offset=r.offset,
                    topic=topic,
                    partition=partition,
                )
                for r in batch.iter_records()
            ]
            self._queues.add_records(tp, stream_records)
            return
        self._batch_fastpath.increment(count)
        headers = [
            {**h, "__topic": topic, "__partition": partition}
            for h in batch.headers()
        ]
        self._queues.add_columns(
            tp,
            batch.keys(),
            batch.values(),
            batch.timestamps(),
            headers,
            batch.offsets(),
        )

    def buffered(self) -> int:
        return self._queues.buffered()

    def low_watermark(self) -> float:
        """The task's event-time low watermark: the min, across input
        partitions, of the max processed record timestamp. ``-inf``
        until every input partition has processed at least one record
        (an idle partition holds the whole task's watermark down, same
        as stream-time merging on multi-input joins)."""
        if len(self._processed_ts) < len(self.partitions):
            return float("-inf")
        return min(self._processed_ts.values())

    # -- processing -------------------------------------------------------------------------

    def process_batch(self, max_records: int = 2**31) -> int:
        """Process up to ``max_records`` buffered records in timestamp order."""
        if self._pending_restores:
            return 0
        processed = 0
        while processed < max_records:
            item = self._queues.next_record()
            if item is None:
                break
            tp, record = item
            self.stream_time = max(self.stream_time, record.timestamp)
            if record.timestamp > self._processed_ts.get(tp, float("-inf")):
                self._processed_ts[tp] = record.timestamp
            children = self._children_by_tp.get(tp)
            if children is None:
                children = self._source_children[tp.topic]
                self._children_by_tp[tp] = children
            traced = self._tracer.enabled
            if traced:
                record.headers[PROCESSED_AT_HEADER] = self.cluster.clock.now
                self._current_trace = record.headers.get(TRACE_ID_HEADER)
                handle = self._tracer.begin(
                    "task.process",
                    self._trace_pid,
                    self._trace_tid,
                    category="task",
                    topic=tp.topic,
                    offset=record.offset,
                    trace=self._current_trace or "",
                )
            for child in children:
                self.process_at(child, record)
            if traced:
                handle.end()
                self._current_trace = None
            self._consumed[tp] = record.offset + 1
            self.records_processed += 1
            processed += 1
            if self.first_process_listener is not None:
                listener, self.first_process_listener = (
                    self.first_process_listener, None
                )
                listener()
            self._punctuate(PUNCTUATION_STREAM_TIME, self.stream_time)
        return processed

    def process_next_chunk(self) -> int:
        """Process one column chunk through the fused graph (batch mode).

        Returns the number of records processed. One tracing span covers
        the whole chunk (per-batch span mode); stream time is published to
        the task only after the chunk is dispatched — batch-aware
        processors that need finer-grained stream time (windowed
        aggregates) track it internally from the pre-chunk value, exactly
        replaying the scalar per-record advance.
        """
        if self._pending_restores:
            return 0
        item = self._queues.next_chunk()
        if item is None:
            return 0
        tp, chunk, last_offset = item
        count = len(chunk)
        children = self._children_by_tp.get(tp)
        if children is None:
            children = self._source_children[tp.topic]
            self._children_by_tp[tp] = children
        if self._tracer.enabled:
            with self._tracer.begin(
                "task.process_chunk",
                self._trace_pid,
                self._trace_tid,
                category="task",
                topic=tp.topic,
                records=count,
            ):
                for child in children:
                    self.process_chunk_at(child, chunk)
        else:
            for child in children:
                self.process_chunk_at(child, chunk)
        max_ts = max(chunk.timestamps)
        if max_ts > self.stream_time:
            self.stream_time = max_ts
        if max_ts > self._processed_ts.get(tp, float("-inf")):
            self._processed_ts[tp] = max_ts
        self._consumed[tp] = last_offset + 1
        self.records_processed += count
        if self.first_process_listener is not None:
            listener, self.first_process_listener = (
                self.first_process_listener, None
            )
            listener()
        return count

    def process_chunk_at(self, node_name: str, chunk: ColumnChunk) -> None:
        """Columnar twin of :meth:`process_at`: deliver a whole chunk to a
        node (batch-aware processor or sink)."""
        node = self.sub.nodes[node_name]
        if isinstance(node, SinkNode):
            self._send_chunk_to_sink(node, chunk)
            return
        self._processors[node_name].process_batch(chunk)

    def _send_chunk_to_sink(self, node: SinkNode, chunk: ColumnChunk) -> None:
        """Partition a chunk and hand the column slabs straight to the
        producer — per-partition record order is preserved, and no Record
        objects exist until the broker appends the slab to its log."""
        topic, num_partitions = self._sink_route(node)
        keys = chunk.keys
        partitioner = node.partitioner
        if num_partitions == 1 and partitioner is None:
            self.producer.send_columns(
                topic, 0, keys, chunk.values, chunk.timestamps, chunk.headers
            )
            return
        buckets: Dict[int, List[int]] = {}
        if partitioner is None:
            # Keys repeat heavily under any keyed workload; memoize the
            # default partitioner per (topic, partition-count) so the hash
            # runs once per distinct key, not once per record.
            cache = self._sink_partition_cache.get((topic, num_partitions))
            if cache is None:
                cache = self._sink_partition_cache[(topic, num_partitions)] = {}
            cache_get = cache.get
            for i, key in enumerate(keys):
                partition = cache_get(key)
                if partition is None:
                    partition = cache[key] = partition_for(key, num_partitions)
                buckets.setdefault(partition, []).append(i)
        else:
            values = chunk.values
            for i, key in enumerate(keys):
                buckets.setdefault(
                    partitioner(key, values[i], num_partitions), []
                ).append(i)
        values = chunk.values
        timestamps = chunk.timestamps
        headers = chunk.headers
        for partition, idx in buckets.items():
            self.producer.send_columns(
                topic,
                partition,
                [keys[i] for i in idx],
                [values[i] for i in idx],
                [timestamps[i] for i in idx],
                [headers[i] for i in idx],
            )

    def punctuate_wall_clock(self, now_ms: float) -> None:
        """Fire wall-clock punctuators (called by the instance's loop)."""
        self._punctuate(PUNCTUATION_WALL_CLOCK, now_ms)

    def register_punctuation(self, punctuation) -> None:
        self._punctuations.append(punctuation)

    def _punctuate(self, punctuation_type: str, now: float) -> None:
        if self._pending_restores:
            return
        for punctuation in self._punctuations:
            if punctuation.punctuation_type == punctuation_type:
                punctuation.maybe_fire(now)

    def process_at(self, node_name: str, record: StreamRecord) -> None:
        """Deliver a record to a node (processor or sink) — the fused
        direct call between operators of one sub-topology."""
        node = self.sub.nodes[node_name]
        if isinstance(node, SinkNode):
            self._send_to_sink(node, record)
            return
        if self._tracer.enabled:
            with self._tracer.begin(
                f"process.{node_name}",
                self._trace_pid,
                self._trace_tid,
                category="task",
            ):
                self._processors[node_name].process(record)
            return
        self._processors[node_name].process(record)

    def _sink_route(self, node: SinkNode) -> tuple:
        """(resolved topic, partition count) for a sink, cached per cluster
        metadata epoch — not re-resolved for every record."""
        epoch = self.cluster.metadata_epoch
        if epoch != self._sink_routes_epoch:
            self._sink_routes.clear()
            self._sink_routes_epoch = epoch
        route = self._sink_routes.get(node.topic)
        if route is None:
            topic = self.resolve(node.topic)
            route = (topic, self.cluster.topic_metadata(topic).num_partitions)
            self._sink_routes[node.topic] = route
        return route

    def _send_to_sink(self, node: SinkNode, record: StreamRecord) -> None:
        topic, num_partitions = self._sink_route(node)
        if node.partitioner is not None:
            partition = node.partitioner(record.key, record.value, num_partitions)
        else:
            partition = partition_for(record.key, num_partitions)
        headers = record.headers
        if self._tracer.enabled:
            headers = {**headers, EMITTED_AT_HEADER: self.cluster.clock.now}
        self.producer.send(
            topic,
            key=record.key,
            value=record.value,
            timestamp=record.timestamp,
            partition=partition,
            headers=headers,
        )

    # -- commit hooks --------------------------------------------------------------------------

    def prepare_commit(self) -> None:
        """Flush caches and suppression buffers (may forward more records),
        then flush stores. Must run inside the ongoing transaction."""
        for processor in self._processors.values():
            processor.on_commit()
        for store in self._stores.values():
            store.flush()

    def pending_offsets(self) -> Dict[TopicPartition, int]:
        return dict(self._consumed)

    def has_pending_commit(self) -> bool:
        """True when records were consumed since the last commit."""
        return bool(self._consumed)

    def mark_committed(self) -> None:
        self._consumed.clear()
        self.speculative_deps.clear()

    def speculation_status(self, ignore_pids=()) -> str:
        """Resolve this task's commit dependencies against the source logs:

        * ``"aborted"`` — some consumed upstream transaction aborted; the
          speculation is poisoned and must roll back;
        * ``"pending"`` — an upstream transaction is still open; our own
          commit must wait;
        * ``"clean"`` — every dependency committed.

        ``ignore_pids``: producer ids owned by this instance itself — data
        this very commit is about to commit is not a dependency.
        """
        pending = False
        for (tp, pid), (lo, hi) in self.speculative_deps.items():
            if pid in ignore_pids:
                continue
            log = self.cluster.partition_state(tp).leader_log()
            if log.producer_aborted_in_range(pid, lo, hi):
                return "aborted"
            open_txns = log.open_transactions()
            if pid in open_txns and open_txns[pid] <= hi:
                pending = True
        return "pending" if pending else "clean"

    # -- context services -------------------------------------------------------------------------

    def state_store(self, name: str):
        store = self._stores.get(name)
        if store is not None:
            return store
        return self._global_stores[name]

    def stores(self) -> Dict[str, Any]:
        return dict(self._stores)

    def queryable_store(self, name: str):
        """Read-only interactive-query facade over one of this task's
        stores (the only sanctioned read path from outside the runtime)."""
        from repro.iq.view import QueryableStoreView

        return QueryableStoreView(self.state_store(name))

    def processors(self) -> Dict[str, Processor]:
        """Public view of the task's live processor nodes (metrics, tests)."""
        return dict(self._processors)

    def next_wall_punctuation(self) -> Optional[float]:
        """Earliest pending wall-clock punctuation deadline, or None.

        Drivers register this as a wake timer so idle time jumps straight
        to the next punctuation instead of creeping toward it.
        """
        best: Optional[float] = None
        for punctuation in self._punctuations:
            if (
                punctuation.punctuation_type != PUNCTUATION_WALL_CLOCK
                or punctuation.cancelled
                or punctuation.next_fire is None
            ):
                continue
            if best is None or punctuation.next_fire < best:
                best = punctuation.next_fire
        return best

    def close(self) -> None:
        for processor in self._processors.values():
            processor.close()
