"""Standby tasks: warm replicas of task state.

A standby task continuously replays a stateful task's changelog partitions
into a local store copy on an instance that does *not* own the task. When
the task migrates here, restoration starts from the standby's position
instead of offset zero — shrinking the recovery gap the paper's
changelog-restore design otherwise pays on large state.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple, TYPE_CHECKING

from repro.errors import TopologyError
from repro.streams.runtime.restore import restore_store
from repro.streams.runtime.task import TaskId
from repro.streams.state.kv_store import InMemoryKeyValueStore
from repro.streams.state.window_store import InMemoryWindowStore
from repro.streams.topology import StateStoreSpec, SubTopology

if TYPE_CHECKING:  # pragma: no cover
    from repro.broker.cluster import Cluster


class StandbyTask:
    """Maintains shadow stores for one (stateful) task."""

    def __init__(
        self,
        task_id: TaskId,
        sub_topology: SubTopology,
        application_id: str,
        cluster: "Cluster",
    ) -> None:
        self.task_id = task_id
        self.application_id = application_id
        self.cluster = cluster
        self._specs = [s for s in sub_topology.stores if s.changelog]
        self.stores: Dict[str, Any] = {}
        # store name -> next changelog offset to replay
        self.positions: Dict[str, int] = {}
        self.records_applied = 0
        for spec in self._specs:
            self.stores[spec.name] = self._create_store(spec)
            self.positions[spec.name] = 0
        self.update()

    @staticmethod
    def _create_store(spec: StateStoreSpec):
        if spec.kind == "kv":
            return InMemoryKeyValueStore(spec.name)
        if spec.kind == "window":
            return InMemoryWindowStore(spec.name, retention_ms=spec.retention_ms)
        raise TopologyError(f"unknown store kind: {spec.kind}")

    @property
    def has_state(self) -> bool:
        return bool(self._specs)

    def update(self) -> int:
        """Replay newly committed changelog records into the shadows."""
        applied = 0
        for spec in self._specs:
            count, next_offset, _complete = restore_store(
                self.cluster,
                self.stores[spec.name],
                spec.changelog_topic(self.application_id),
                self.task_id.partition,
                from_offset=self.positions[spec.name],
                kind="standby",
            )
            applied += count
            self.positions[spec.name] = next_offset
        self.records_applied += applied
        return applied

    def queryable_store(self, name: str):
        """Read-only view over a shadow store, or None when this standby
        does not replicate it. The view's position() is the changelog
        watermark bounded-staleness reads are judged against."""
        from repro.iq.view import QueryableStoreView

        store = self.stores.get(name)
        if store is None:
            return None
        return QueryableStoreView(store)

    def handoff(self) -> Dict[str, Tuple[Any, int]]:
        """Release the shadow stores (store, position) for promotion to an
        active task; the standby must not be used afterwards."""
        result = {
            name: (self.stores[name], self.positions[name])
            for name in self.stores
        }
        self.stores = {}
        self.positions = {}
        return result
