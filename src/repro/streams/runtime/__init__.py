"""Streams runtime: tasks, instances, assignment, restoration."""

from repro.streams.runtime.app import KafkaStreams

__all__ = ["KafkaStreams"]
