"""Per-partition record queues and the deterministic next-record choice.

Within a task, records from each source topic partition are buffered in a
FIFO queue; the task always processes the queue whose head record has the
smallest timestamp. This is the deterministic, timestamp-based incoming
record choice the paper credits for Kafka Streams' determinism when
multiple input streams feed one task (Section 7).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.broker.partition import TopicPartition
from repro.streams.records import StreamRecord


class RecordQueue:
    """FIFO of records from one source topic partition."""

    def __init__(self, tp: TopicPartition) -> None:
        self.tp = tp
        self._queue: Deque[StreamRecord] = deque()

    def push(self, record: StreamRecord) -> None:
        self._queue.append(record)

    def head_timestamp(self) -> Optional[float]:
        if not self._queue:
            return None
        return self._queue[0].timestamp

    def pop(self) -> StreamRecord:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class PartitionGroup:
    """All of a task's record queues plus the choosing logic."""

    def __init__(self, partitions: List[TopicPartition]) -> None:
        self._queues: Dict[TopicPartition, RecordQueue] = {
            tp: RecordQueue(tp) for tp in partitions
        }

    def add_records(self, tp: TopicPartition, records: List[StreamRecord]) -> None:
        queue = self._queues[tp]
        for record in records:
            queue.push(record)

    def next_record(self) -> Optional[Tuple[TopicPartition, StreamRecord]]:
        """Pop from the non-empty queue with the smallest head timestamp
        (ties broken by partition for determinism)."""
        best: Optional[RecordQueue] = None
        best_ts: Optional[float] = None
        for tp in sorted(self._queues):
            queue = self._queues[tp]
            ts = queue.head_timestamp()
            if ts is None:
                continue
            if best_ts is None or ts < best_ts:
                best, best_ts = queue, ts
        if best is None:
            return None
        return best.tp, best.pop()

    def buffered(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def partitions(self) -> List[TopicPartition]:
        return sorted(self._queues)
