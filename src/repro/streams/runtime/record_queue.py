"""Per-partition record queues and the deterministic next-record choice.

Within a task, records from each source topic partition are buffered in a
FIFO queue; the task always processes the queue whose head record has the
smallest timestamp. This is the deterministic, timestamp-based incoming
record choice the paper credits for Kafka Streams' determinism when
multiple input streams feed one task (Section 7).

Two representations coexist:

* scalar — a deque of :class:`StreamRecord`, one pop per record;
* columnar — a deque of :class:`ColumnCursor` (parallel key / value /
  timestamp / header / offset columns plus a read position), from which
  :meth:`PartitionGroup.next_chunk` slices maximal runs that the scalar
  choice would have consumed back-to-back from the same queue. Batch
  tasks enqueue columns; scalar (fallback) tasks enqueue records; one
  queue never mixes the two, but both kinds pop either way, so a scalar
  drain of a columnar queue still works (records materialize lazily, one
  at a time).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.broker.partition import TopicPartition
from repro.streams.records import ColumnChunk, StreamRecord


class ColumnCursor:
    """One fetched batch as parallel columns plus a read position."""

    __slots__ = ("keys", "values", "timestamps", "headers", "offsets", "pos")

    def __init__(self, keys, values, timestamps, headers, offsets) -> None:
        self.keys = keys
        self.values = values
        self.timestamps = timestamps
        self.headers = headers
        self.offsets = offsets
        self.pos = 0

    def remaining(self) -> int:
        return len(self.keys) - self.pos


class RecordQueue:
    """FIFO of records from one source topic partition."""

    def __init__(self, tp: TopicPartition) -> None:
        self.tp = tp
        self._queue: Deque[StreamRecord] = deque()
        self._cursors: Deque[ColumnCursor] = deque()

    def push(self, record: StreamRecord) -> None:
        self._queue.append(record)

    def push_columns(self, keys, values, timestamps, headers, offsets) -> None:
        if keys:
            self._cursors.append(
                ColumnCursor(keys, values, timestamps, headers, offsets)
            )

    def head_timestamp(self) -> Optional[float]:
        if self._queue:
            return self._queue[0].timestamp
        if self._cursors:
            cursor = self._cursors[0]
            return cursor.timestamps[cursor.pos]
        return None

    def pop(self) -> StreamRecord:
        if self._queue:
            return self._queue.popleft()
        # Lazy scalar view of a columnar queue: materialize exactly one
        # record from the head cursor.
        cursor = self._cursors[0]
        i = cursor.pos
        record = StreamRecord(
            key=cursor.keys[i],
            value=cursor.values[i],
            timestamp=cursor.timestamps[i],
            headers=cursor.headers[i],
            offset=cursor.offsets[i],
            topic=self.tp.topic,
            partition=self.tp.partition,
        )
        cursor.pos = i + 1
        if cursor.pos == len(cursor.keys):
            self._cursors.popleft()
        return record

    def head_cursor(self) -> Optional[ColumnCursor]:
        return self._cursors[0] if self._cursors else None

    def __len__(self) -> int:
        return len(self._queue) + sum(c.remaining() for c in self._cursors)


class PartitionGroup:
    """All of a task's record queues plus the choosing logic."""

    def __init__(self, partitions: List[TopicPartition]) -> None:
        self._order = sorted(partitions)
        self._queues: Dict[TopicPartition, RecordQueue] = {
            tp: RecordQueue(tp) for tp in self._order
        }
        self._single = (
            self._queues[self._order[0]] if len(self._order) == 1 else None
        )

    def add_records(self, tp: TopicPartition, records: List[StreamRecord]) -> None:
        queue = self._queues[tp]
        for record in records:
            queue.push(record)

    def add_columns(self, tp, keys, values, timestamps, headers, offsets) -> None:
        self._queues[tp].push_columns(keys, values, timestamps, headers, offsets)

    def next_record(self) -> Optional[Tuple[TopicPartition, StreamRecord]]:
        """Pop from the non-empty queue with the smallest head timestamp
        (ties broken by partition for determinism)."""
        best: Optional[RecordQueue] = None
        best_ts: Optional[float] = None
        for tp in self._order:
            queue = self._queues[tp]
            ts = queue.head_timestamp()
            if ts is None:
                continue
            if best_ts is None or ts < best_ts:
                best, best_ts = queue, ts
        if best is None:
            return None
        return best.tp, best.pop()

    def next_chunk(self) -> Optional[Tuple[TopicPartition, ColumnChunk, int]]:
        """Slice the maximal run of records the scalar choice would pop
        consecutively from one queue, as a column chunk.

        Returns ``(tp, chunk, last_offset)`` or ``None`` when empty. The
        run extends while the cursor's next timestamp stays below every
        other queue's head — or equal to it, when this queue wins the
        sorted-partition tie-break — exactly the condition under which
        :meth:`next_record` would keep choosing this queue. Queues are
        static while a chunk is built (intake happens between polls), so
        the other-queue minimum is computed once. Chunks never span
        cursors: a fetch batch boundary ends the run.
        """
        # Single-input tasks (the common case) have no competing queue:
        # the whole cursor remainder is one chunk.
        single = self._single
        if single is not None:
            cursor = single.head_cursor()
            if cursor is None:
                return None
            start = cursor.pos
            if start == 0:
                chunk = ColumnChunk(
                    cursor.keys, cursor.values, cursor.timestamps, cursor.headers
                )
                last_offset = cursor.offsets[-1]
            else:
                chunk = ColumnChunk(
                    cursor.keys[start:],
                    cursor.values[start:],
                    cursor.timestamps[start:],
                    cursor.headers[start:],
                )
                last_offset = cursor.offsets[-1]
            single._cursors.popleft()
            return single.tp, chunk, last_offset

        best: Optional[RecordQueue] = None
        best_ts: Optional[float] = None
        for tp in self._order:
            queue = self._queues[tp]
            ts = queue.head_timestamp()
            if ts is None:
                continue
            if best_ts is None or ts < best_ts:
                best, best_ts = queue, ts
        if best is None:
            return None
        cursor = best.head_cursor()
        if cursor is None:
            return None

        # Minimum head timestamp among the *other* queues, and whether the
        # chosen queue wins a tie against every holder of that minimum
        # (i.e. no holder precedes it in sorted-partition order).
        other_min: Optional[float] = None
        tie_ok = True
        passed_best = False
        for tp in self._order:
            queue = self._queues[tp]
            if queue is best:
                passed_best = True
                continue
            ts = queue.head_timestamp()
            if ts is None:
                continue
            if other_min is None or ts < other_min:
                other_min = ts
                tie_ok = passed_best
            elif ts == other_min and not passed_best:
                tie_ok = False

        timestamps = cursor.timestamps
        start = cursor.pos
        n = len(timestamps)
        if other_min is None:
            end = n
        else:
            end = start
            while end < n:
                ts = timestamps[end]
                if ts < other_min or (ts == other_min and tie_ok):
                    end += 1
                else:
                    break
        chunk = ColumnChunk(
            cursor.keys[start:end],
            cursor.values[start:end],
            timestamps[start:end],
            cursor.headers[start:end],
        )
        last_offset = cursor.offsets[end - 1]
        if end == n:
            best._cursors.popleft()
        else:
            cursor.pos = end
        return best.tp, chunk, last_offset

    def buffered(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def partitions(self) -> List[TopicPartition]:
        return list(self._order)
