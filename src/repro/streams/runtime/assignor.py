"""The streams partition assignor: task-aware, sticky, balanced, lag-aware.

Kafka Streams installs its own assignor in the consumer-group protocol so
that all source partitions of one task land on the same member, tasks are
spread evenly, and reassignments prefer previous owners to minimise state
migration (task stickiness, Section 3.3).

With the cooperative rebalance protocol the assignor is additionally
*lag-aware* (KIP-441): a stateful task only moves to an instance whose
changelog lag — end offset minus the instance's standby position — is
within ``acceptable_recovery_lag``. A laggier destination first receives a
**warmup** standby, and a timer-driven **probing rebalance** completes the
migration once the warmup has caught up, so availability never waits on a
cold store rebuild.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.broker.partition import TopicPartition
from repro.config import COOPERATIVE, READ_COMMITTED
from repro.streams.runtime.task import TaskId

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.runtime.app import KafkaStreams


class StreamsAssignor:
    """Callable assignor registered with the group coordinator."""

    def __init__(self, task_partitions: Dict[TaskId, List[TopicPartition]]) -> None:
        # TaskId -> every source partition the task consumes.
        self._task_partitions = {
            task: sorted(tps) for task, tps in task_partitions.items()
        }
        self._partition_task: Dict[TopicPartition, TaskId] = {}
        for task, tps in self._task_partitions.items():
            for tp in tps:
                self._partition_task[tp] = task
        # Bound by KafkaStreams after construction; None leaves the
        # assignor purely sticky/balanced (no lag awareness, no warmups).
        self._app: Optional["KafkaStreams"] = None
        # Destination remembered for tasks mid-handover: between the
        # revocation and the follow-up grant a task has no owner, and the
        # recomputation must not flip-flop its destination.
        self._intended: Dict[TaskId, str] = {}
        # member_id -> warmup standby tasks it should build before the
        # probing rebalance migrates them over.
        self._warmups: Dict[str, Set[TaskId]] = {}
        self._probing_timer = None
        self.probing_rebalances = 0

    def bind(self, app: "KafkaStreams") -> None:
        self._app = app

    def task_for(self, tp: TopicPartition) -> TaskId:
        return self._partition_task[tp]

    def warmup_tasks_for(self, member_id: Optional[str]) -> Set[TaskId]:
        if member_id is None:
            return set()
        return set(self._warmups.get(member_id, ()))

    def intended_member(self, task: TaskId) -> Optional[str]:
        """The member this task is headed to per the last assignment —
        including tasks mid-handover that currently have no owner. The
        metadata service uses this as the fresh routing hint for queries
        that land on a migrating task."""
        return self._intended.get(task)

    def has_warmups(self) -> bool:
        return any(self._warmups.values())

    # -- lag bookkeeping ---------------------------------------------------------------

    def _is_stateful(self, task: TaskId) -> bool:
        if self._app is None:
            return False
        sub = self._app.sub_topology(task.sub_id)
        return any(spec.changelog for spec in sub.stores)

    def _changelog_end(self, task: TaskId) -> int:
        app = self._app
        total = 0
        for spec in app.sub_topology(task.sub_id).stores:
            if not spec.changelog:
                continue
            tp = TopicPartition(
                spec.changelog_topic(app.config.application_id), task.partition
            )
            total += app.cluster.end_offset(tp, READ_COMMITTED)
        return total

    def _lag(self, member_id: str, task: TaskId, end: int) -> float:
        """Changelog records ``member_id`` would have to replay before the
        task could process there: 0 for the active owner or a caught-up
        standby. A member with no visible instance (a joiner mid-subscribe
        reports no standby positions yet) counts as fully empty — its lag
        is the whole changelog."""
        app = self._app
        instance = None
        for candidate in app.instances:
            if candidate.alive and candidate.consumer.member_id == member_id:
                instance = candidate
                break
        if instance is None:
            return float(end)
        if task in instance.tasks:
            return 0.0
        standby = instance.standby_tasks.get(task)
        position = sum(standby.positions.values()) if standby is not None else 0
        return max(0.0, float(end - position))

    def _cooperative(self) -> bool:
        return (
            self._app is not None
            and self._app.config.rebalance_protocol == COOPERATIVE
        )

    # -- assignment --------------------------------------------------------------------

    def __call__(self, members, partitions) -> Dict[str, List[TopicPartition]]:
        member_ids = sorted(members)
        if not member_ids:
            self._warmups = {}
            return {}

        tasks = sorted(self._task_partitions)
        quota = -(-len(tasks) // len(member_ids))
        cooperative = self._cooperative()

        # Previous owners, for stickiness. A task mid-handover (revoked,
        # not yet granted) sticks to its remembered destination instead.
        previous: Dict[TaskId, str] = {}
        for member_id, member in members.items():
            for tp in member.assignment:
                task = self._partition_task.get(tp)
                if task is not None:
                    previous[task] = member_id
        for task, member_id in self._intended.items():
            if member_id in members:
                previous.setdefault(task, member_id)

        lag_cache: Dict[TaskId, Dict[str, float]] = {}

        def lags_for(task: TaskId) -> Dict[str, float]:
            cached = lag_cache.get(task)
            if cached is None:
                end = self._changelog_end(task)
                cached = {m: self._lag(m, task, end) for m in member_ids}
                lag_cache[task] = cached
            return cached

        task_assignment: Dict[str, List[TaskId]] = {m: [] for m in member_ids}
        unplaced: List[TaskId] = []
        for task in tasks:
            owner = previous.get(task)
            if owner in task_assignment and len(task_assignment[owner]) < quota:
                task_assignment[owner].append(task)
            else:
                unplaced.append(task)
        for index, task in enumerate(unplaced):
            if cooperative and self._is_stateful(task):
                # Ownerless stateful task (crash, scale-in, handover):
                # prefer the most caught-up member — a standby host takes
                # over with near-zero restore (KIP-441 placement).
                lags = lags_for(task)
                target = min(
                    member_ids,
                    key=lambda m: (lags[m], len(task_assignment[m])),
                )
            else:
                low = min(len(task_assignment[m]) for m in member_ids)
                tied = [m for m in member_ids if len(task_assignment[m]) == low]
                # Round-robin over the tied members by the task's position
                # in the unplaced list: ties no longer all collapse onto
                # the lexically first member id.
                target = tied[index % len(tied)]
            task_assignment[target].append(task)

        self._balance(task_assignment, previous)

        # Lag gating (cooperative only): veto moves of stateful tasks to
        # destinations that would pay more than acceptable_recovery_lag of
        # changelog replay; keep the task warm on its previous owner and
        # build a warmup standby at the destination instead.
        warmups: Dict[str, Set[TaskId]] = {}
        if cooperative:
            acceptable = self._app.config.acceptable_recovery_lag
            for member_id in member_ids:
                for task in list(task_assignment[member_id]):
                    owner = previous.get(task)
                    if owner is None or owner == member_id:
                        continue
                    if owner not in task_assignment:
                        continue
                    if not self._is_stateful(task):
                        continue
                    if lags_for(task)[member_id] <= acceptable:
                        continue
                    task_assignment[member_id].remove(task)
                    task_assignment[owner].append(task)
                    warmups.setdefault(member_id, set()).add(task)

        self._warmups = warmups
        self._intended = {
            task: member_id
            for member_id, assigned in task_assignment.items()
            for task in assigned
        }
        self._sync_probing_timer()
        app = self._app
        if app is not None:
            rec = app.cluster.recovery
            if rec is not None:
                rec.note_realign(
                    "placement",
                    members=len(member_ids),
                    warmups=sum(len(w) for w in warmups.values()),
                )

        result: Dict[str, List[TopicPartition]] = {}
        for member_id, assigned_tasks in task_assignment.items():
            tps: List[TopicPartition] = []
            for task in sorted(assigned_tasks):
                tps.extend(self._task_partitions[task])
            result[member_id] = sorted(tps)
        return result

    @staticmethod
    def _balance(
        task_assignment: Dict[str, List[TaskId]],
        previous: Dict[TaskId, str],
    ) -> None:
        """Level the assignment to a max-minus-min spread of at most one
        task, preferring to move tasks away from non-previous owners."""
        member_ids = sorted(task_assignment)
        while True:
            heavy = max(member_ids, key=lambda m: (len(task_assignment[m]), m))
            light = min(member_ids, key=lambda m: (len(task_assignment[m]), m))
            if len(task_assignment[heavy]) - len(task_assignment[light]) <= 1:
                return
            movable = sorted(
                task_assignment[heavy],
                key=lambda t: (previous.get(t) == heavy, t),
            )
            task = movable[0]
            task_assignment[heavy].remove(task)
            task_assignment[light].append(task)

    # -- probing rebalances ------------------------------------------------------------

    def _sync_probing_timer(self) -> None:
        """While any warmup is outstanding, keep a wake timer armed that
        requests a probing rebalance — the recomputation migrates every
        task whose warmup has caught up, and re-arms if some remain."""
        app = self._app
        if app is None:
            return
        if not self.has_warmups():
            if self._probing_timer is not None:
                self._probing_timer.cancel()
                self._probing_timer = None
            return
        timer = self._probing_timer
        if timer is not None and not timer.fired and not timer.cancelled:
            return
        self._probing_timer = app.cluster.clock.schedule(
            app.config.probing_rebalance_interval_ms, self._on_probing_timer
        )

    def _on_probing_timer(self) -> None:
        self._probing_timer = None
        app = self._app
        if app is None or not self.has_warmups():
            return
        self.probing_rebalances += 1
        app.cluster.group_coordinator.request_rebalance(
            app.config.application_id
        )
        # Re-armed by __call__ when the probing rebalance runs (and leaves
        # warmups outstanding); also re-arm here in case the request is
        # absorbed without a rebalance (e.g. the group emptied meanwhile).
        self._sync_probing_timer()
