"""The streams partition assignor: task-aware, sticky, balanced.

Kafka Streams installs its own assignor in the consumer-group protocol so
that all source partitions of one task land on the same member, tasks are
spread evenly, and reassignments prefer previous owners to minimise state
migration (task stickiness, Section 3.3).
"""

from __future__ import annotations

from typing import Dict, List

from repro.broker.partition import TopicPartition
from repro.streams.runtime.task import TaskId


class StreamsAssignor:
    """Callable assignor registered with the group coordinator."""

    def __init__(self, task_partitions: Dict[TaskId, List[TopicPartition]]) -> None:
        # TaskId -> every source partition the task consumes.
        self._task_partitions = {
            task: sorted(tps) for task, tps in task_partitions.items()
        }
        self._partition_task: Dict[TopicPartition, TaskId] = {}
        for task, tps in self._task_partitions.items():
            for tp in tps:
                self._partition_task[tp] = task

    def task_for(self, tp: TopicPartition) -> TaskId:
        return self._partition_task[tp]

    def __call__(self, members, partitions) -> Dict[str, List[TopicPartition]]:
        member_ids = sorted(members)
        if not member_ids:
            return {}

        tasks = sorted(self._task_partitions)
        quota = -(-len(tasks) // len(member_ids))

        # Previous owners, for stickiness.
        previous: Dict[TaskId, str] = {}
        for member_id, member in members.items():
            for tp in member.assignment:
                task = self._partition_task.get(tp)
                if task is not None:
                    previous[task] = member_id

        task_assignment: Dict[str, List[TaskId]] = {m: [] for m in member_ids}
        unplaced: List[TaskId] = []
        for task in tasks:
            owner = previous.get(task)
            if owner in task_assignment and len(task_assignment[owner]) < quota:
                task_assignment[owner].append(task)
            else:
                unplaced.append(task)
        for task in unplaced:
            target = min(member_ids, key=lambda m: len(task_assignment[m]))
            task_assignment[target].append(task)

        result: Dict[str, List[TopicPartition]] = {}
        for member_id, assigned_tasks in task_assignment.items():
            tps: List[TopicPartition] = []
            for task in assigned_tasks:
                tps.extend(self._task_partitions[task])
            result[member_id] = sorted(tps)
        return result
