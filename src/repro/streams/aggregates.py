"""Aggregation processors with revision-based speculative emission.

These implement Section 5's core mechanism: aggregates emit a result the
moment it changes (no watermark blocking). Each emission is a
:class:`~repro.streams.records.Change` carrying the new and the prior
value, so downstream table consumers can retract before accumulating. An
out-of-order record within the grace period re-opens the affected window
and emits a *revision*; a record older than the grace bound is dropped and
counted.

The window-expiry rule follows Figure 6 exactly: when stream time reaches
23 with a 10 s grace, window [10, 15) is collected (its start, 10, is older
than stream-time − grace = 13) while [15, 20) survives.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.streams.processor import Processor
from repro.streams.records import Change, ColumnChunk, StreamRecord
from repro.streams.state.cache import StoreCache
from repro.streams.windows import TimeWindows, Window, Windowed

Initializer = Callable[[], Any]
Aggregator = Callable[[Any, Any, Any], Any]      # (key, value, aggregate) -> new


class StreamAggregateProcessor(Processor):
    """Non-windowed aggregation of a grouped stream into a table.

    Optionally caches writes: with a cache, consecutive updates to one key
    within a commit interval consolidate into a single changelog append and
    a single downstream Change.
    """

    def __init__(
        self,
        store_name: str,
        initializer: Initializer,
        aggregator: Aggregator,
        cache_entries: int = 0,
    ) -> None:
        self._store_name = store_name
        self._initializer = initializer
        self._aggregator = aggregator
        self._cache_entries = cache_entries
        self._cache: Optional[StoreCache] = None
        self.records_processed = 0

    def init(self, context) -> None:
        super().init(context)
        self._store = context.state_store(self._store_name)
        if self._cache_entries > 0:
            self._cache = StoreCache(self._cache_entries, self._emit)
        # Caching consolidates emissions across records, which is a
        # per-record protocol; only the cache-less processor can take the
        # grouped column scan.
        self.batch_aware = self._cache is None

    def process(self, record: StreamRecord) -> None:
        self.records_processed += 1
        key = record.key
        if key is None:
            return
        if self._cache is not None and self._cache.contains(key):
            old = self._cache.get(key)
        else:
            old = self._store.get(key)
        base = old if old is not None else self._initializer()
        new = self._aggregator(key, record.value, base)
        if self._cache is not None:
            self._cache.put(key, new, old, record.timestamp, record.headers)
        else:
            self._store.put(key, new)
            self.context.forward(
                StreamRecord(
                    key=key,
                    value=Change(new, old),
                    timestamp=record.timestamp,
                    headers=dict(record.headers),
                )
            )

    def process_batch(self, chunk: ColumnChunk) -> None:
        """Grouped column scan: one store get per distinct key on first
        touch, the running aggregate kept in a dict, one store put per key
        at chunk end. The emitted Change sequence is exactly what the
        scalar path would forward record by record."""
        keys = chunk.keys
        values = chunk.values
        n = len(keys)
        self.records_processed += n
        store = self._store
        initializer = self._initializer
        aggregator = self._aggregator
        pending: dict = {}
        out_k: list = []
        out_v: list = []
        out_t: list = []
        out_h: list = []
        append_k = out_k.append
        append_v = out_v.append
        append_t = out_t.append
        append_h = out_h.append
        for key, value, t, h in zip(
            keys, values, chunk.timestamps, chunk.headers
        ):
            if key is None:
                continue
            if key in pending:
                old = pending[key]
            else:
                old = store.get(key)
            base = old if old is not None else initializer()
            new = aggregator(key, value, base)
            pending[key] = new
            append_k(key)
            append_v(Change(new, old))
            append_t(t)
            append_h(h)
        if pending:
            store.put_many(list(pending.items()))
        if out_k:
            self.context.forward_chunk(ColumnChunk(out_k, out_v, out_t, out_h))

    def _emit(self, key: Any, new: Any, old: Any, timestamp: float, headers=None) -> None:
        self._store.put(key, new)
        self.context.forward(
            StreamRecord(
                key=key,
                value=Change(new, old),
                timestamp=timestamp,
                headers=dict(headers or {}),
            )
        )

    def on_commit(self) -> None:
        if self._cache is not None:
            self._cache.flush()


class WindowedAggregateProcessor(Processor):
    """Windowed aggregation with per-operator grace period.

    * In-order record: update the window(s), emit Change immediately.
    * Out-of-order record within grace: revise the window, emit a revision
      Change (new count, old count) to the same key — downstream tables
      amend (Figure 6.c).
    * Record whose window expired (window.start < stream_time − grace):
      dropped, counted in ``dropped_records`` (Figure 6.d).
    """

    def __init__(
        self,
        store_name: str,
        windows: TimeWindows,
        initializer: Initializer,
        aggregator: Aggregator,
        cache_entries: int = 0,
    ) -> None:
        self._store_name = store_name
        self._windows = windows
        self._initializer = initializer
        self._aggregator = aggregator
        self._cache_entries = cache_entries
        self._cache: Optional[StoreCache] = None
        self.records_processed = 0
        self.dropped_records = 0
        self.revisions_emitted = 0

    def init(self, context) -> None:
        super().init(context)
        self._store = context.state_store(self._store_name)
        if self._cache_entries > 0:
            self._cache = StoreCache(self._cache_entries, self._emit_windowed)
        self.batch_aware = self._cache is None

    def process_batch(self, chunk: ColumnChunk) -> None:
        """Grouped column scan over windowed updates.

        Stream time advances record by record inside the scan (the task
        only publishes the chunk's max afterwards), so the per-record
        expiry bound — and therefore which late records are dropped — is
        identical to the scalar path. Store writes consolidate to one put
        per (key, window) at chunk end; the trailing ``expire_before``
        with the final bound removes the same windows the scalar path's
        monotonically increasing per-record calls would have.
        """
        keys = chunk.keys
        values = chunk.values
        ts = chunk.timestamps
        hdrs = chunk.headers
        n = len(keys)
        self.records_processed += n
        stream_time = self.context.stream_time
        grace = self._windows.grace_ms
        store = self._store
        initializer = self._initializer
        aggregator = self._aggregator
        windows_for = self._windows.windows_for
        pending: dict = {}
        out_k: list = []
        out_v: list = []
        out_t: list = []
        out_h: list = []
        # The scalar path garbage-collects while processing keyed records
        # only; mirror that so store contents match exactly even when a
        # chunk ends in key-less records.
        gc_bound: Optional[float] = None
        for key, value, timestamp, h in zip(keys, values, ts, hdrs):
            if timestamp > stream_time:
                stream_time = timestamp
            if key is None:
                continue
            expiry_bound = stream_time - grace
            gc_bound = expiry_bound
            for window in windows_for(timestamp):
                if window.start < expiry_bound:
                    self.dropped_records += 1
                    continue
                cache_key = (key, window.start)
                if cache_key in pending:
                    old = pending[cache_key]
                else:
                    old = store.fetch(key, window.start)
                base = old if old is not None else initializer()
                new = aggregator(key, value, base)
                if old is not None:
                    self.revisions_emitted += 1
                pending[cache_key] = new
                out_k.append(Windowed(key, window))
                out_v.append(Change(new, old))
                out_t.append(timestamp)
                out_h.append(h)
        for (key, window_start), value in pending.items():
            store.put(key, window_start, value)
        if gc_bound is not None:
            store.expire_before(gc_bound)
        if out_k:
            self.context.forward_chunk(ColumnChunk(out_k, out_v, out_t, out_h))

    def process(self, record: StreamRecord) -> None:
        self.records_processed += 1
        if record.key is None:
            return
        stream_time = self.context.stream_time
        expiry_bound = stream_time - self._windows.grace_ms
        for window in self._windows.windows_for(record.timestamp):
            if window.start < expiry_bound:
                self.dropped_records += 1
                continue
            self._update_window(record, window)
        # Garbage-collect expired windows (Figure 6.d).
        self._store.expire_before(expiry_bound)

    def _update_window(self, record: StreamRecord, window: Window) -> None:
        key = record.key
        cache_key = (key, window.start)
        if self._cache is not None and self._cache.contains(cache_key):
            old = self._cache.get(cache_key)
        else:
            old = self._store.fetch(key, window.start)
        base = old if old is not None else self._initializer()
        new = self._aggregator(key, record.value, base)
        if old is not None:
            # Every update after a window's first emission revises a
            # previously emitted result.
            self.revisions_emitted += 1
        if self._cache is not None:
            self._cache.put(cache_key, new, old, record.timestamp, record.headers)
        else:
            self._store.put(key, window.start, new)
            self.context.forward(
                StreamRecord(
                    key=Windowed(key, window),
                    value=Change(new, old),
                    timestamp=record.timestamp,
                    headers=dict(record.headers),
                )
            )

    def _emit_windowed(self, cache_key, new, old, timestamp: float, headers=None) -> None:
        key, window_start = cache_key
        window = Window(window_start, window_start + self._windows.size_ms)
        self._store.put(key, window_start, new)
        self.context.forward(
            StreamRecord(
                key=Windowed(key, window),
                value=Change(new, old),
                timestamp=timestamp,
                headers=dict(headers or {}),
            )
        )

    def on_commit(self) -> None:
        if self._cache is not None:
            self._cache.flush()


def count_initializer() -> int:
    return 0


def count_aggregator(key: Any, value: Any, aggregate: int) -> int:
    return aggregate + 1


def reduce_adapter(reducer: Callable[[Any, Any], Any]) -> Aggregator:
    """Adapt a (aggregate, value) -> aggregate reducer to an Aggregator;
    the first value for a key becomes the initial aggregate."""

    def aggregate(key: Any, value: Any, agg: Any) -> Any:
        if agg is _REDUCE_SENTINEL:
            return value
        return reducer(agg, value)

    return aggregate


_REDUCE_SENTINEL = object()


def reduce_initializer() -> Any:
    return _REDUCE_SENTINEL
