"""The Processor API: the low-level layer the DSL compiles onto.

A :class:`Processor` receives records via :meth:`process` and forwards
results to child nodes through its :class:`ProcessorContext`. Within a
sub-topology, forwarding is a direct method call — the operator fusion the
paper describes in Section 3.2 ("operators within a sub-topology are
effectively fused together ... without incurring any network overhead").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import StateStoreError
from repro.streams.records import StreamRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.runtime.task import StreamTask


PUNCTUATION_STREAM_TIME = "stream_time"
PUNCTUATION_WALL_CLOCK = "wall_clock"


class Punctuation:
    """A scheduled recurring callback (Processor API ``schedule``)."""

    def __init__(
        self, interval_ms: float, punctuation_type: str, callback
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("punctuation interval must be positive")
        if punctuation_type not in (PUNCTUATION_STREAM_TIME, PUNCTUATION_WALL_CLOCK):
            raise ValueError(f"unknown punctuation type: {punctuation_type!r}")
        self.interval_ms = interval_ms
        self.punctuation_type = punctuation_type
        self.callback = callback
        self.next_fire: Optional[float] = None
        self.cancelled = False
        self.fired = 0

    def cancel(self) -> None:
        self.cancelled = True

    def maybe_fire(self, now: float) -> bool:
        """Fire (possibly repeatedly, catching up) if ``now`` passed the
        deadline; returns whether anything fired."""
        if self.cancelled:
            return False
        if self.next_fire is None:
            self.next_fire = now + self.interval_ms
            return False
        fired = False
        while now >= self.next_fire and not self.cancelled:
            fire_at = self.next_fire
            self.next_fire += self.interval_ms
            self.fired += 1
            fired = True
            self.callback(fire_at)
        return fired


class Processor:
    """Base class for all processors; subclasses override :meth:`process`."""

    def init(self, context: "ProcessorContext") -> None:
        self.context = context

    def process(self, record: StreamRecord) -> None:
        raise NotImplementedError

    def on_commit(self) -> None:
        """Hook invoked when the owning task commits (flush caches etc.)."""

    def close(self) -> None:
        """Hook invoked when the owning task closes."""


class ForwardingProcessor(Processor):
    """Convenience base for stateless one-in-N-out processors built from a
    function returning zero or more output records."""

    def __init__(self, fn: Callable[[StreamRecord], List[StreamRecord]]):
        self._fn = fn

    def process(self, record: StreamRecord) -> None:
        for out in self._fn(record):
            self.context.forward(out)


class ProcessorContext:
    """Per-node execution context: forwarding, stores, task metadata."""

    def __init__(
        self,
        task: "StreamTask",
        node_name: str,
        children: List[str],
        store_names: List[str],
    ) -> None:
        self._task = task
        self.node_name = node_name
        self._children = children
        self._store_names = set(store_names)

    # -- forwarding -----------------------------------------------------------

    def forward(self, record: StreamRecord, to: Optional[str] = None) -> None:
        """Send ``record`` to child node(s) — a direct call, no network."""
        if to is not None:
            if to not in self._children:
                raise ValueError(
                    f"{self.node_name}: {to!r} is not a child "
                    f"(children: {self._children})"
                )
            self._task.process_at(to, record)
            return
        for child in self._children:
            self._task.process_at(child, record)

    # -- state ------------------------------------------------------------------

    def state_store(self, name: str):
        if name not in self._store_names:
            raise StateStoreError(
                f"{self.node_name}: store {name!r} not connected to this node"
            )
        return self._task.state_store(name)

    # -- punctuation ---------------------------------------------------------------

    def schedule(
        self, interval_ms: float, punctuation_type: str, callback
    ) -> Punctuation:
        """Register a recurring callback on stream time or wall-clock time
        (the Processor API's ``schedule``). ``callback(timestamp)`` may
        forward records through this context."""
        punctuation = Punctuation(interval_ms, punctuation_type, callback)
        self._task.register_punctuation(punctuation)
        return punctuation

    # -- metadata -----------------------------------------------------------------

    @property
    def task_id(self):
        return self._task.task_id

    @property
    def stream_time(self) -> float:
        """Largest record timestamp observed by this task so far."""
        return self._task.stream_time

    @property
    def application_id(self) -> str:
        return self._task.application_id
