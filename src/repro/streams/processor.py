"""The Processor API: the low-level layer the DSL compiles onto.

A :class:`Processor` receives records via :meth:`process` and forwards
results to child nodes through its :class:`ProcessorContext`. Within a
sub-topology, forwarding is a direct method call — the operator fusion the
paper describes in Section 3.2 ("operators within a sub-topology are
effectively fused together ... without incurring any network overhead").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import StateStoreError
from repro.streams.records import ColumnChunk, StreamRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.runtime.task import StreamTask


PUNCTUATION_STREAM_TIME = "stream_time"
PUNCTUATION_WALL_CLOCK = "wall_clock"


class Punctuation:
    """A scheduled recurring callback (Processor API ``schedule``)."""

    def __init__(
        self, interval_ms: float, punctuation_type: str, callback
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("punctuation interval must be positive")
        if punctuation_type not in (PUNCTUATION_STREAM_TIME, PUNCTUATION_WALL_CLOCK):
            raise ValueError(f"unknown punctuation type: {punctuation_type!r}")
        self.interval_ms = interval_ms
        self.punctuation_type = punctuation_type
        self.callback = callback
        self.next_fire: Optional[float] = None
        self.cancelled = False
        self.fired = 0

    def cancel(self) -> None:
        self.cancelled = True

    def maybe_fire(self, now: float) -> bool:
        """Fire (possibly repeatedly, catching up) if ``now`` passed the
        deadline; returns whether anything fired."""
        if self.cancelled:
            return False
        if self.next_fire is None:
            self.next_fire = now + self.interval_ms
            return False
        fired = False
        while now >= self.next_fire and not self.cancelled:
            fire_at = self.next_fire
            self.next_fire += self.interval_ms
            self.fired += 1
            fired = True
            self.callback(fire_at)
        return fired


class Processor:
    """Base class for all processors; subclasses override :meth:`process`.

    ``batch_aware`` marks processors that additionally implement
    :meth:`process_batch` over a whole :class:`ColumnChunk`. A task runs
    its columnar fast path only when *every* processor in its sub-topology
    is batch-aware (all-or-nothing); otherwise incoming batches are
    materialized to scalar records. Processors whose capability depends on
    runtime configuration (e.g. caching aggregates) may override the class
    attribute with an instance attribute during :meth:`init`.
    """

    batch_aware = False

    def init(self, context: "ProcessorContext") -> None:
        self.context = context

    def process(self, record: StreamRecord) -> None:
        raise NotImplementedError

    def process_batch(self, chunk: ColumnChunk) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} is not batch-aware"
        )

    def on_commit(self) -> None:
        """Hook invoked when the owning task commits (flush caches etc.)."""

    def close(self) -> None:
        """Hook invoked when the owning task closes."""


class ForwardingProcessor(Processor):
    """Convenience base for stateless one-in-N-out processors built from a
    function returning zero or more output records."""

    def __init__(self, fn: Callable[[StreamRecord], List[StreamRecord]]):
        self._fn = fn

    def process(self, record: StreamRecord) -> None:
        for out in self._fn(record):
            self.context.forward(out)


class FusedStatelessProcessor(Processor):
    """The DSL's stateless operators (filter / map / flatMap / selectKey /
    peek and friends) as one processor with both execution modes.

    The scalar path mirrors the per-record semantics the operators always
    had; the columnar path transforms whole columns in a single pass —
    list comprehensions over the key/value columns — and forwards a new
    chunk, sharing untouched columns by reference. Both paths call the
    same user function with the same (key, value) arguments in the same
    order, so outputs are identical record-for-record.
    """

    batch_aware = True

    KINDS = (
        "filter",
        "filter_not",
        "map",
        "map_values",
        "flat_map",
        "flat_map_values",
        "select_key",
        "peek",
    )

    def __init__(self, kind: str, fn: Callable) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown stateless operator kind: {kind!r}")
        self.kind = kind
        self._fn = fn
        # Bind the dispatch once; instance attributes shadow the base
        # methods, so the per-record/per-chunk call is direct.
        self.process = getattr(self, f"_scalar_{kind}")
        self.process_batch = getattr(self, f"_batch_{kind}")

    # -- scalar path ----------------------------------------------------------

    def _scalar_filter(self, record: StreamRecord) -> None:
        if self._fn(record.key, record.value):
            self.context.forward(record)

    def _scalar_filter_not(self, record: StreamRecord) -> None:
        if not self._fn(record.key, record.value):
            self.context.forward(record)

    def _scalar_map(self, record: StreamRecord) -> None:
        key, value = self._fn(record.key, record.value)
        self.context.forward(record.with_kv(key, value))

    def _scalar_map_values(self, record: StreamRecord) -> None:
        self.context.forward(record.with_value(self._fn(record.value)))

    def _scalar_flat_map(self, record: StreamRecord) -> None:
        for key, value in self._fn(record.key, record.value):
            self.context.forward(record.with_kv(key, value))

    def _scalar_flat_map_values(self, record: StreamRecord) -> None:
        for value in self._fn(record.value):
            self.context.forward(record.with_value(value))

    def _scalar_select_key(self, record: StreamRecord) -> None:
        self.context.forward(
            record.with_kv(self._fn(record.key, record.value), record.value)
        )

    def _scalar_peek(self, record: StreamRecord) -> None:
        self._fn(record.key, record.value)
        self.context.forward(record)

    # -- columnar path --------------------------------------------------------

    def _batch_filter(self, chunk: ColumnChunk) -> None:
        fn = self._fn
        keys, values = chunk.keys, chunk.values
        idx = [i for i in range(len(keys)) if fn(keys[i], values[i])]
        if not idx:
            return
        if len(idx) == len(keys):
            self.context.forward_chunk(chunk)
            return
        ts, hdrs = chunk.timestamps, chunk.headers
        self.context.forward_chunk(
            ColumnChunk(
                [keys[i] for i in idx],
                [values[i] for i in idx],
                [ts[i] for i in idx],
                [hdrs[i] for i in idx],
            )
        )

    def _batch_filter_not(self, chunk: ColumnChunk) -> None:
        fn = self._fn
        keys, values = chunk.keys, chunk.values
        idx = [i for i in range(len(keys)) if not fn(keys[i], values[i])]
        if not idx:
            return
        if len(idx) == len(keys):
            self.context.forward_chunk(chunk)
            return
        ts, hdrs = chunk.timestamps, chunk.headers
        self.context.forward_chunk(
            ColumnChunk(
                [keys[i] for i in idx],
                [values[i] for i in idx],
                [ts[i] for i in idx],
                [hdrs[i] for i in idx],
            )
        )

    def _batch_map(self, chunk: ColumnChunk) -> None:
        fn = self._fn
        mapped = [fn(k, v) for k, v in zip(chunk.keys, chunk.values)]
        self.context.forward_chunk(
            ColumnChunk(
                [kv[0] for kv in mapped],
                [kv[1] for kv in mapped],
                chunk.timestamps,
                chunk.headers,
            )
        )

    def _batch_map_values(self, chunk: ColumnChunk) -> None:
        fn = self._fn
        self.context.forward_chunk(
            ColumnChunk(
                chunk.keys,
                [fn(v) for v in chunk.values],
                chunk.timestamps,
                chunk.headers,
            )
        )

    def _batch_flat_map(self, chunk: ColumnChunk) -> None:
        fn = self._fn
        out_k: list = []
        out_v: list = []
        out_t: list = []
        out_h: list = []
        ts, hdrs = chunk.timestamps, chunk.headers
        for i, (k, v) in enumerate(zip(chunk.keys, chunk.values)):
            for k2, v2 in fn(k, v):
                out_k.append(k2)
                out_v.append(v2)
                out_t.append(ts[i])
                out_h.append(hdrs[i])
        if out_k:
            self.context.forward_chunk(ColumnChunk(out_k, out_v, out_t, out_h))

    def _batch_flat_map_values(self, chunk: ColumnChunk) -> None:
        fn = self._fn
        out_k: list = []
        out_v: list = []
        out_t: list = []
        out_h: list = []
        keys, ts, hdrs = chunk.keys, chunk.timestamps, chunk.headers
        for i, v in enumerate(chunk.values):
            for v2 in fn(v):
                out_k.append(keys[i])
                out_v.append(v2)
                out_t.append(ts[i])
                out_h.append(hdrs[i])
        if out_k:
            self.context.forward_chunk(ColumnChunk(out_k, out_v, out_t, out_h))

    def _batch_select_key(self, chunk: ColumnChunk) -> None:
        fn = self._fn
        self.context.forward_chunk(
            ColumnChunk(
                [fn(k, v) for k, v in zip(chunk.keys, chunk.values)],
                chunk.values,
                chunk.timestamps,
                chunk.headers,
            )
        )

    def _batch_peek(self, chunk: ColumnChunk) -> None:
        fn = self._fn
        for k, v in zip(chunk.keys, chunk.values):
            fn(k, v)
        self.context.forward_chunk(chunk)


class ProcessorContext:
    """Per-node execution context: forwarding, stores, task metadata."""

    def __init__(
        self,
        task: "StreamTask",
        node_name: str,
        children: List[str],
        store_names: List[str],
    ) -> None:
        self._task = task
        self.node_name = node_name
        self._children = children
        self._store_names = set(store_names)

    # -- forwarding -----------------------------------------------------------

    def forward(self, record: StreamRecord, to: Optional[str] = None) -> None:
        """Send ``record`` to child node(s) — a direct call, no network."""
        if to is not None:
            if to not in self._children:
                raise ValueError(
                    f"{self.node_name}: {to!r} is not a child "
                    f"(children: {self._children})"
                )
            self._task.process_at(to, record)
            return
        for child in self._children:
            self._task.process_at(child, record)

    def forward_chunk(self, chunk: ColumnChunk, to: Optional[str] = None) -> None:
        """Columnar twin of :meth:`forward`: hand a whole chunk to child
        node(s). Chunks are immutable between stages, so one chunk may be
        forwarded to several children without copying."""
        if to is not None:
            if to not in self._children:
                raise ValueError(
                    f"{self.node_name}: {to!r} is not a child "
                    f"(children: {self._children})"
                )
            self._task.process_chunk_at(to, chunk)
            return
        for child in self._children:
            self._task.process_chunk_at(child, chunk)

    # -- state ------------------------------------------------------------------

    def state_store(self, name: str):
        if name not in self._store_names:
            raise StateStoreError(
                f"{self.node_name}: store {name!r} not connected to this node"
            )
        return self._task.state_store(name)

    # -- punctuation ---------------------------------------------------------------

    def schedule(
        self, interval_ms: float, punctuation_type: str, callback
    ) -> Punctuation:
        """Register a recurring callback on stream time or wall-clock time
        (the Processor API's ``schedule``). ``callback(timestamp)`` may
        forward records through this context."""
        punctuation = Punctuation(interval_ms, punctuation_type, callback)
        self._task.register_punctuation(punctuation)
        return punctuation

    # -- metadata -----------------------------------------------------------------

    @property
    def task_id(self):
        return self._task.task_id

    @property
    def stream_time(self) -> float:
        """Largest record timestamp observed by this task so far."""
        return self._task.stream_time

    @property
    def application_id(self) -> str:
        return self._task.application_id
