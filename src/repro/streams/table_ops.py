"""Table-typed processors: materialization and Change-aware transforms.

A KTable node forwards :class:`Change` values. Because tables support
amendment semantics, speculative emission is always safe for them: a later
revision simply overwrites the earlier result downstream (Section 5).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.streams.processor import Processor
from repro.streams.records import Change, ColumnChunk, StreamRecord


class TableSourceProcessor(Processor):
    """Materializes a changelog-stream topic into a table store and turns
    plain records into Changes (old value looked up from the store)."""

    def __init__(self, store_name: str) -> None:
        self._store_name = store_name

    def init(self, context) -> None:
        super().init(context)
        self._store = context.state_store(self._store_name)

    def process(self, record: StreamRecord) -> None:
        if record.key is None:
            return
        old = self._store.get(record.key)
        new = record.value
        if new is None:
            self._store.delete(record.key)
        else:
            self._store.put(record.key, new)
        self.context.forward(record.with_value(Change(new, old)))


class TableFilterProcessor(Processor):
    """Filter on a table: a result that stops matching must be *retracted*
    downstream, so the new side becomes None rather than disappearing."""

    def __init__(self, predicate: Callable[[Any, Any], bool]) -> None:
        self._predicate = predicate

    def process(self, record: StreamRecord) -> None:
        change: Change = record.value
        new = change.new if (
            change.new is not None and self._predicate(record.key, change.new)
        ) else None
        old = change.old if (
            change.old is not None and self._predicate(record.key, change.old)
        ) else None
        if new is None and old is None:
            return
        self.context.forward(record.with_value(Change(new, old)))


class TableMapValuesProcessor(Processor):
    """map_values over both sides of a Change (old must map too, or the
    downstream retraction would not match what was accumulated)."""

    def __init__(
        self,
        mapper: Callable[[Any, Any], Any],
        store_name: Optional[str] = None,
    ) -> None:
        self._mapper = mapper
        self._store_name = store_name

    def init(self, context) -> None:
        super().init(context)
        self._store = (
            context.state_store(self._store_name) if self._store_name else None
        )

    def process(self, record: StreamRecord) -> None:
        change: Change = record.value
        new = None if change.new is None else self._mapper(record.key, change.new)
        old = None if change.old is None else self._mapper(record.key, change.old)
        if self._store is not None:
            if new is None:
                self._store.delete(record.key)
            else:
                self._store.put(record.key, new)
        self.context.forward(record.with_value(Change(new, old)))


class TableToStreamProcessor(Processor):
    """Unwrap Changes into plain new-value records (KTable#toStream)."""

    batch_aware = True

    def process(self, record: StreamRecord) -> None:
        change: Change = record.value
        self.context.forward(record.with_value(change.new))

    def process_batch(self, chunk: ColumnChunk) -> None:
        self.context.forward_chunk(
            ColumnChunk(
                chunk.keys,
                [change.new for change in chunk.values],
                chunk.timestamps,
                chunk.headers,
            )
        )


class TableMaterializeProcessor(Processor):
    """Materialize an upstream table node's Changes into a store (used when
    a downstream join needs to look the table up)."""

    def __init__(self, store_name: str) -> None:
        self._store_name = store_name

    def init(self, context) -> None:
        super().init(context)
        self._store = context.state_store(self._store_name)

    def process(self, record: StreamRecord) -> None:
        change: Change = record.value
        if change.new is None:
            self._store.delete(record.key)
        else:
            self._store.put(record.key, change.new)
        self.context.forward(record)


class TableGroupByMapProcessor(Processor):
    """KTable.group_by: re-key each Change for downstream re-aggregation.

    Emits the re-keyed new side as an accumulation and the re-keyed old
    side as a retraction; if the selector maps them to different keys, two
    records are forwarded — this is how the paper's "forward both the prior
    and the updated results" materializes for re-grouping.
    """

    def __init__(self, selector: Callable[[Any, Any], Any]) -> None:
        # selector(key, value) -> (new_key, new_value)
        self._selector = selector

    def process(self, record: StreamRecord) -> None:
        change: Change = record.value
        new_kv = (
            self._selector(record.key, change.new)
            if change.new is not None
            else None
        )
        old_kv = (
            self._selector(record.key, change.old)
            if change.old is not None
            else None
        )
        if new_kv is not None and old_kv is not None and new_kv[0] == old_kv[0]:
            self.context.forward(
                record.with_kv(new_kv[0], Change(new_kv[1], old_kv[1]))
            )
            return
        if old_kv is not None:
            self.context.forward(record.with_kv(old_kv[0], Change(None, old_kv[1])))
        if new_kv is not None:
            self.context.forward(record.with_kv(new_kv[0], Change(new_kv[1], None)))


class TableAggregateProcessor(Processor):
    """KGroupedTable aggregation with adder + subtractor.

    Retraction-aware: for each incoming Change, the subtractor removes the
    old value's contribution and the adder applies the new one.
    """

    def __init__(
        self,
        store_name: str,
        initializer: Callable[[], Any],
        adder: Callable[[Any, Any, Any], Any],
        subtractor: Callable[[Any, Any, Any], Any],
    ) -> None:
        self._store_name = store_name
        self._initializer = initializer
        self._adder = adder
        self._subtractor = subtractor

    def init(self, context) -> None:
        super().init(context)
        self._store = context.state_store(self._store_name)

    def process(self, record: StreamRecord) -> None:
        change: Change = record.value
        key = record.key
        old_agg = self._store.get(key)
        agg = old_agg if old_agg is not None else self._initializer()
        if change.old is not None:
            agg = self._subtractor(key, change.old, agg)
        if change.new is not None:
            agg = self._adder(key, change.new, agg)
        self._store.put(key, agg)
        self.context.forward(
            StreamRecord(
                key=key,
                value=Change(agg, old_agg),
                timestamp=record.timestamp,
                headers=dict(record.headers),
            )
        )
