"""The suppress operator: consolidate intermediate revisions.

Section 5 closes with the observation that emitting *every* revision
downstream costs network and CPU in retract/accumulate pairs that offset
each other. ``suppress`` buffers a table's Changes and emits per key:

* ``Suppressed.until_window_closes()`` — only the final result, once the
  window's grace period has elapsed in stream time (requires a windowed
  table);
* ``Suppressed.until_time_limit(ms)`` — at most one consolidated Change
  per key per time limit (flushed on commit as well).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.streams.processor import Processor
from repro.streams.records import Change, StreamRecord
from repro.streams.windows import Windowed

UNTIL_WINDOW_CLOSES = "until_window_closes"
UNTIL_TIME_LIMIT = "until_time_limit"


@dataclass(frozen=True)
class Suppressed:
    """Suppression policy configuration."""

    mode: str
    time_limit_ms: float = 0.0

    @classmethod
    def until_window_closes(cls) -> "Suppressed":
        return cls(mode=UNTIL_WINDOW_CLOSES)

    @classmethod
    def until_time_limit(cls, time_limit_ms: float) -> "Suppressed":
        if time_limit_ms < 0:
            raise ValueError("time limit must be >= 0")
        return cls(mode=UNTIL_TIME_LIMIT, time_limit_ms=time_limit_ms)


class SuppressProcessor(Processor):
    """Buffers Changes per key and emits consolidated results.

    The consolidated Change spans from the value before the first buffered
    update to the latest one, so downstream retractions remain exact.
    """

    def __init__(self, suppressed: Suppressed, grace_ms: float = 0.0) -> None:
        self._config = suppressed
        self._grace_ms = grace_ms
        # key -> (latest_new, pre-run old, latest ts, first buffered at, headers)
        self._buffer: Dict[Any, Tuple[Any, Any, float, float, dict]] = {}
        self.records_suppressed = 0
        self.records_emitted = 0

    def process(self, record: StreamRecord) -> None:
        change: Change = record.value
        key = record.key
        pending = self._buffer.get(key)
        old = pending[1] if pending is not None else change.old
        first_at = pending[3] if pending is not None else record.timestamp
        if pending is not None:
            self.records_suppressed += 1
        self._buffer[key] = (
            change.new, old, record.timestamp, first_at, dict(record.headers)
        )
        self._maybe_emit()

    def _maybe_emit(self) -> None:
        stream_time = self.context.stream_time
        if self._config.mode == UNTIL_WINDOW_CLOSES:
            self._emit_closed_windows(stream_time)
        else:
            self._emit_past_time_limit(stream_time)

    def _emit_closed_windows(self, stream_time: float) -> None:
        for key in list(self._buffer):
            if not isinstance(key, Windowed):
                raise TypeError(
                    "until_window_closes requires windowed keys; got "
                    f"{type(key).__name__}"
                )
            if key.window.end + self._grace_ms <= stream_time:
                self._emit(key)

    def _emit_past_time_limit(self, stream_time: float) -> None:
        for key, entry in list(self._buffer.items()):
            if stream_time - entry[3] >= self._config.time_limit_ms:
                self._emit(key)

    def _emit(self, key: Any) -> None:
        new, old, ts, _first, headers = self._buffer.pop(key)
        if new is None and old is None:
            return
        self.records_emitted += 1
        self.context.forward(
            StreamRecord(key=key, value=Change(new, old), timestamp=ts,
                         headers=headers)
        )

    def on_commit(self) -> None:
        """Commit flush: time-limited buffers drain (their consolidation
        window is the commit interval); final-mode buffers keep waiting for
        the window to close."""
        if self._config.mode == UNTIL_TIME_LIMIT:
            for key in list(self._buffer):
                self._emit(key)

    def close(self) -> None:
        self._buffer.clear()
