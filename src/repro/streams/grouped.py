"""Grouped streams: the step between a KStream and an aggregated KTable."""

from __future__ import annotations

from typing import Any, Callable, Optional, Set, TYPE_CHECKING

from repro.streams.aggregates import (
    StreamAggregateProcessor,
    WindowedAggregateProcessor,
    count_aggregator,
    count_initializer,
    reduce_adapter,
    reduce_initializer,
)
from repro.streams.topology import StateStoreSpec
from repro.streams.windows import TimeWindows

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.builder import StreamsBuilder
    from repro.streams.ktable import KTable


class KGroupedStream:
    """A stream grouped by key, ready to aggregate."""

    def __init__(
        self, builder: "StreamsBuilder", node: str, source_topics: Set[str]
    ) -> None:
        self.builder = builder
        self.node = node
        self.source_topics = set(source_topics)

    def windowed_by(self, windows) -> "TimeWindowedKStream":
        """Window the grouped stream; aggregates become windowed tables.

        Accepts :class:`TimeWindows` (tumbling/hopping) or
        :class:`~repro.streams.windows.SessionWindows`.
        """
        from repro.streams.windows import SessionWindows

        if isinstance(windows, SessionWindows):
            return SessionWindowedKStream(self, windows)
        return TimeWindowedKStream(self, windows)

    def count(
        self, store_name: Optional[str] = None, cache_entries: int = 0
    ) -> "KTable":
        """Running count per key, as an evolving table."""
        return self.aggregate(
            count_initializer, count_aggregator, store_name, cache_entries,
            prefix="KSTREAM-COUNT",
        )

    def reduce(
        self,
        reducer: Callable[[Any, Any], Any],
        store_name: Optional[str] = None,
        cache_entries: int = 0,
    ) -> "KTable":
        """Combine values per key with ``reducer(aggregate, value)``."""
        return self.aggregate(
            reduce_initializer,
            reduce_adapter(reducer),
            store_name,
            cache_entries,
            prefix="KSTREAM-REDUCE",
        )

    def aggregate(
        self,
        initializer: Callable[[], Any],
        aggregator: Callable[[Any, Any, Any], Any],
        store_name: Optional[str] = None,
        cache_entries: int = 0,
        prefix: str = "KSTREAM-AGGREGATE",
    ) -> "KTable":
        """General aggregation: ``aggregator(key, value, aggregate)``."""
        from repro.streams.ktable import KTable

        topo = self.builder.topology
        store = store_name or topo.unique_name(f"{prefix}-STORE")
        topo.add_state_store(StateStoreSpec(name=store, kind="kv"))
        node = topo.unique_name(prefix)
        topo.add_processor(
            node,
            lambda: StreamAggregateProcessor(
                store, initializer, aggregator, cache_entries
            ),
            parents=[self.node],
            stores=[store],
        )
        return KTable(
            builder=self.builder,
            node=node,
            store_name=store,
            source_topics=self.source_topics,
        )


class TimeWindowedKStream:
    """A grouped stream with a window definition attached."""

    def __init__(self, grouped: KGroupedStream, windows: TimeWindows) -> None:
        self._grouped = grouped
        self.windows = windows

    def count(
        self, store_name: Optional[str] = None, cache_entries: int = 0
    ) -> "KTable":
        """Windowed count (the Figure 2 pageview example)."""
        return self.aggregate(
            count_initializer, count_aggregator, store_name, cache_entries,
            prefix="KSTREAM-WINDOWED-COUNT",
        )

    def reduce(
        self,
        reducer: Callable[[Any, Any], Any],
        store_name: Optional[str] = None,
        cache_entries: int = 0,
    ) -> "KTable":
        return self.aggregate(
            reduce_initializer,
            reduce_adapter(reducer),
            store_name,
            cache_entries,
            prefix="KSTREAM-WINDOWED-REDUCE",
        )

    def aggregate(
        self,
        initializer: Callable[[], Any],
        aggregator: Callable[[Any, Any, Any], Any],
        store_name: Optional[str] = None,
        cache_entries: int = 0,
        prefix: str = "KSTREAM-WINDOWED-AGGREGATE",
    ) -> "KTable":
        from repro.streams.ktable import KTable

        builder = self._grouped.builder
        topo = builder.topology
        store = store_name or topo.unique_name(f"{prefix}-STORE")
        topo.add_state_store(
            StateStoreSpec(
                name=store, kind="window", retention_ms=self.windows.retention_ms
            )
        )
        windows = self.windows
        node = topo.unique_name(prefix)
        topo.add_processor(
            node,
            lambda: WindowedAggregateProcessor(
                store, windows, initializer, aggregator, cache_entries
            ),
            parents=[self._grouped.node],
            stores=[store],
        )
        return KTable(
            builder=builder,
            node=node,
            store_name=store,
            source_topics=self._grouped.source_topics,
            windows=windows,
        )


class SessionWindowedKStream:
    """A grouped stream with session windows attached."""

    def __init__(self, grouped: KGroupedStream, windows) -> None:
        self._grouped = grouped
        self.windows = windows

    def count(self, store_name: Optional[str] = None) -> "KTable":
        from repro.streams.sessions import session_count_merger

        return self.aggregate(
            count_initializer,
            count_aggregator,
            merger=session_count_merger,
            store_name=store_name,
            prefix="KSTREAM-SESSION-COUNT",
        )

    def reduce(
        self,
        reducer: Callable[[Any, Any], Any],
        store_name: Optional[str] = None,
    ) -> "KTable":
        def merger(key, a, b):
            if a is None:
                return b
            if b is None:
                return a
            return reducer(a, b)

        return self.aggregate(
            lambda: None,
            lambda k, v, agg: v if agg is None else reducer(agg, v),
            merger=merger,
            store_name=store_name,
            prefix="KSTREAM-SESSION-REDUCE",
        )

    def aggregate(
        self,
        initializer: Callable[[], Any],
        aggregator: Callable[[Any, Any, Any], Any],
        merger: Callable[[Any, Any, Any], Any],
        store_name: Optional[str] = None,
        prefix: str = "KSTREAM-SESSION-AGGREGATE",
    ) -> "KTable":
        """Session aggregation; ``merger(key, agg_a, agg_b)`` combines the
        aggregates of sessions bridged by a record."""
        from repro.streams.ktable import KTable
        from repro.streams.sessions import SessionAggregateProcessor

        builder = self._grouped.builder
        topo = builder.topology
        store = store_name or topo.unique_name(f"{prefix}-STORE")
        topo.add_state_store(
            StateStoreSpec(
                name=store, kind="window", retention_ms=self.windows.retention_ms
            )
        )
        windows = self.windows
        node = topo.unique_name(prefix)
        topo.add_processor(
            node,
            lambda: SessionAggregateProcessor(
                store, windows, initializer, aggregator, merger
            ),
            parents=[self._grouped.node],
            stores=[store],
        )
        return KTable(
            builder=builder,
            node=node,
            store_name=store,
            source_topics=self._grouped.source_topics,
        )


class KGroupedTable:
    """A re-grouped table (from KTable.group_by), aggregated with
    retraction-aware adder/subtractor pairs."""

    def __init__(
        self, builder: "StreamsBuilder", node: str, source_topics: Set[str]
    ) -> None:
        self.builder = builder
        self.node = node
        self.source_topics = set(source_topics)

    def count(self, store_name: Optional[str] = None) -> "KTable":
        return self.aggregate(
            lambda: 0,
            adder=lambda k, v, agg: agg + 1,
            subtractor=lambda k, v, agg: agg - 1,
            store_name=store_name,
        )

    def reduce(
        self,
        adder: Callable[[Any, Any], Any],
        subtractor: Callable[[Any, Any], Any],
        store_name: Optional[str] = None,
    ) -> "KTable":
        return self.aggregate(
            lambda: None,
            adder=lambda k, v, agg: v if agg is None else adder(agg, v),
            subtractor=lambda k, v, agg: None if agg is None else subtractor(agg, v),
            store_name=store_name,
        )

    def aggregate(
        self,
        initializer: Callable[[], Any],
        adder: Callable[[Any, Any, Any], Any],
        subtractor: Callable[[Any, Any, Any], Any],
        store_name: Optional[str] = None,
    ) -> "KTable":
        from repro.streams.ktable import KTable
        from repro.streams.table_ops import TableAggregateProcessor

        topo = self.builder.topology
        store = store_name or topo.unique_name("KTABLE-AGGREGATE-STORE")
        topo.add_state_store(StateStoreSpec(name=store, kind="kv"))
        node = topo.unique_name("KTABLE-AGGREGATE")
        topo.add_processor(
            node,
            lambda: TableAggregateProcessor(store, initializer, adder, subtractor),
            parents=[self.node],
            stores=[store],
        )
        return KTable(
            builder=self.builder,
            node=node,
            store_name=store,
            source_topics=self.source_topics,
        )
