"""Window state stores.

Entries are keyed by (record key, window start) and garbage-collected once
the window falls out of the retention period (window size + grace): in
Figure 6.d the window [10, 15) is collected when stream time passes its
grace bound, after which late records for it are dropped.

Like the key-value stores, window stores track a changelog **position**
watermark so interactive-query reads carry an explicit staleness bound.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

UpdateHook = Callable[[Any, Any], None]   # key=(record_key, window_start)


class WindowStore:
    """Interface for window stores."""

    name: str
    _position: int = 0

    def fetch(self, key: Any, window_start: float) -> Any:
        raise NotImplementedError

    def put(self, key: Any, window_start: float, value: Any) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Flush any buffered writes."""

    # -- changelog position (staleness watermark) ------------------------------

    def position(self) -> int:
        """Changelog offset watermark: contents reflect the changelog up
        to (but not including) this offset."""
        return self._position

    def advance_position(self, n: int = 1) -> None:
        self._position += n

    def rebase_position(self, next_offset: int) -> None:
        """Set the watermark after a changelog replay."""
        self._position = next_offset


class InMemoryWindowStore(WindowStore):
    """Dict-backed window store with retention-based garbage collection."""

    def __init__(
        self,
        name: str,
        retention_ms: float,
        on_update: Optional[UpdateHook] = None,
    ) -> None:
        if retention_ms < 0:
            raise ValueError("retention must be >= 0")
        self.name = name
        self.retention_ms = retention_ms
        self._data: Dict[Tuple[Any, float], Any] = {}
        self._on_update = on_update
        self._listeners: List[UpdateHook] = []
        self._position = 0
        self.expired_entries = 0

    def set_update_hook(self, on_update: Optional[UpdateHook]) -> None:
        self._on_update = on_update

    def add_listener(self, listener: UpdateHook) -> None:
        """Subscribe to live updates; called with the (key, window start)
        composite key (ksql EMIT CHANGES push queries)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: UpdateHook) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def fetch(self, key: Any, window_start: float) -> Any:
        return self._data.get((key, window_start))

    def put(self, key: Any, window_start: float, value: Any) -> None:
        composite = (key, window_start)
        if value is None:
            self._data.pop(composite, None)
        else:
            self._data[composite] = value
        self._position += 1
        if self._on_update is not None:
            self._on_update(composite, value)
        if self._listeners:
            for listener in self._listeners:
                listener(composite, value)

    def restore_put(self, composite_key: Tuple[Any, float], value: Any) -> None:
        """Apply a changelog record during restoration."""
        if value is None:
            self._data.pop(composite_key, None)
        else:
            self._data[composite_key] = value

    def fetch_key_windows(self, key: Any) -> List[Tuple[float, Any]]:
        """All (window_start, value) entries for ``key``, oldest first."""
        return sorted(
            (start, value)
            for (k, start), value in self._data.items()
            if k == key
        )

    def fetch_range(
        self, key: Any, from_start: float, to_start: float
    ) -> List[Tuple[float, Any]]:
        """(window_start, value) entries with from_start <= start <= to_start."""
        return sorted(
            (start, value)
            for (k, start), value in self._data.items()
            if k == key and from_start <= start <= to_start
        )

    def all(self) -> Iterator[Tuple[Tuple[Any, float], Any]]:
        return iter(sorted(self._data.items(), key=lambda kv: (kv[0][1], repr(kv[0][0]))))

    def approximate_num_entries(self) -> int:
        return len(self._data)

    def expire_before(self, min_window_start: float) -> int:
        """Drop windows starting before ``min_window_start`` (grace-period
        GC, Figure 6.d). Returns how many entries were collected."""
        doomed = [ck for ck in self._data if ck[1] < min_window_start]
        for composite in doomed:
            del self._data[composite]
            self.expired_entries += 1
            # GC is local bookkeeping: the changelog keeps its (compacted)
            # history; restoration re-applies retention separately.
        return len(doomed)
