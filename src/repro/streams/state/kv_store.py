"""Key-value state stores.

Writes are mirrored to the store's changelog topic through the ``on_update``
hook the owning task installs (Section 3.2: "writes to the state stores are
also replicated to Kafka as changelog topics"). The store itself is a
disposable materialized view — it can always be rebuilt by replaying the
changelog (see :mod:`repro.streams.runtime.restore`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

UpdateHook = Callable[[Any, Any], None]
BulkUpdateHook = Callable[[List[Tuple[Any, Any]]], None]


class KeyValueStore:
    """Interface for key-value stores (users may supply custom ones)."""

    name: str

    def get(self, key: Any) -> Any:
        raise NotImplementedError

    def put(self, key: Any, value: Any) -> None:
        raise NotImplementedError

    def put_many(self, items: List[Tuple[Any, Any]]) -> None:
        """Apply many puts at once. The default just loops; bulk-aware
        stores override this to batch the dict update and the changelog
        mirror (the batch-execution hot path lands here once per chunk)."""
        for key, value in items:
            self.put(key, value)

    def delete(self, key: Any) -> None:
        raise NotImplementedError

    def all(self) -> Iterator[Tuple[Any, Any]]:
        raise NotImplementedError

    def approximate_num_entries(self) -> int:
        raise NotImplementedError

    def flush(self) -> None:
        """Flush any buffered writes (no-op for unbuffered stores)."""


class InMemoryKeyValueStore(KeyValueStore):
    """Dict-backed store with a changelog hook."""

    def __init__(self, name: str, on_update: Optional[UpdateHook] = None) -> None:
        self.name = name
        self._data: Dict[Any, Any] = {}
        self._on_update = on_update
        self._on_update_many: Optional[BulkUpdateHook] = None
        self.puts = 0
        self.gets = 0

    def set_update_hook(self, on_update: Optional[UpdateHook]) -> None:
        self._on_update = on_update

    def set_bulk_update_hook(
        self, on_update_many: Optional[BulkUpdateHook]
    ) -> None:
        self._on_update_many = on_update_many

    def get(self, key: Any) -> Any:
        self.gets += 1
        return self._data.get(key)

    def put(self, key: Any, value: Any) -> None:
        self.puts += 1
        self._data[key] = value
        if self._on_update is not None:
            self._on_update(key, value)

    def put_many(self, items: List[Tuple[Any, Any]]) -> None:
        if not items:
            return
        self.puts += len(items)
        self._data.update(items)
        if self._on_update_many is not None:
            self._on_update_many(items)
        elif self._on_update is not None:
            for key, value in items:
                self._on_update(key, value)

    def delete(self, key: Any) -> None:
        self.puts += 1
        self._data.pop(key, None)
        if self._on_update is not None:
            self._on_update(key, None)   # tombstone

    def restore_put(self, key: Any, value: Any) -> None:
        """Apply a changelog record during restoration (no hook — the
        update is already in the changelog)."""
        if value is None:
            self._data.pop(key, None)
        else:
            self._data[key] = value

    def all(self) -> Iterator[Tuple[Any, Any]]:
        return iter(sorted(self._data.items(), key=lambda kv: repr(kv[0])))

    def approximate_num_entries(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
