"""Key-value state stores.

Writes are mirrored to the store's changelog topic through the ``on_update``
hook the owning task installs (Section 3.2: "writes to the state stores are
also replicated to Kafka as changelog topics"). The store itself is a
disposable materialized view — it can always be rebuilt by replaying the
changelog (see :mod:`repro.streams.runtime.restore`).

Every store also carries a **position**: the changelog offset watermark its
contents reflect. A changelog replay rebases the watermark to the exact
next offset of the replayed prefix; the active write path advances it by
one per mirrored write. Interactive queries attach the position to every
read so callers get an explicit staleness bound
(see :mod:`repro.iq.view`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

UpdateHook = Callable[[Any, Any], None]
BulkUpdateHook = Callable[[List[Tuple[Any, Any]]], None]


class KeyValueStore:
    """Interface for key-value stores (users may supply custom ones)."""

    name: str
    # Changelog offset watermark (class default lets minimal custom stores
    # inherit position bookkeeping without defining __init__).
    _position: int = 0

    def get(self, key: Any) -> Any:
        raise NotImplementedError

    def put(self, key: Any, value: Any) -> None:
        raise NotImplementedError

    def put_many(self, items: List[Tuple[Any, Any]]) -> None:
        """Apply many puts at once.

        The default routes every item through :meth:`put` — the single
        overridable write hook — so a store that overrides only ``put``
        keeps its position/watermark updates, changelog mirroring, and any
        custom behaviour consistent between the scalar and bulk paths.
        Bulk-aware stores may override this, but must preserve those
        semantics (see :class:`InMemoryKeyValueStore`).
        """
        for key, value in items:
            self.put(key, value)

    def delete(self, key: Any) -> None:
        raise NotImplementedError

    def all(self) -> Iterator[Tuple[Any, Any]]:
        raise NotImplementedError

    def approximate_num_entries(self) -> int:
        raise NotImplementedError

    def flush(self) -> None:
        """Flush any buffered writes (no-op for unbuffered stores)."""

    # -- changelog position (staleness watermark) ------------------------------

    def position(self) -> int:
        """Changelog offset watermark: this store's contents reflect the
        changelog up to (but not including) this offset. Exact after a
        changelog replay; advanced per write on the active path."""
        return self._position

    def advance_position(self, n: int = 1) -> None:
        self._position += n

    def rebase_position(self, next_offset: int) -> None:
        """Set the watermark after a changelog replay (the restore path
        knows the exact next offset of the replayed prefix)."""
        self._position = next_offset


class InMemoryKeyValueStore(KeyValueStore):
    """Dict-backed store with a changelog hook."""

    def __init__(self, name: str, on_update: Optional[UpdateHook] = None) -> None:
        self.name = name
        self._data: Dict[Any, Any] = {}
        self._on_update = on_update
        self._on_update_many: Optional[BulkUpdateHook] = None
        # Push-query subscriptions: called after every applied write
        # (including bulk ones), never during restore.
        self._listeners: List[UpdateHook] = []
        self._position = 0
        self.puts = 0
        self.gets = 0

    def set_update_hook(self, on_update: Optional[UpdateHook]) -> None:
        self._on_update = on_update

    def set_bulk_update_hook(
        self, on_update_many: Optional[BulkUpdateHook]
    ) -> None:
        self._on_update_many = on_update_many

    def add_listener(self, listener: UpdateHook) -> None:
        """Subscribe to live updates (ksql EMIT CHANGES push queries)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: UpdateHook) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def get(self, key: Any) -> Any:
        self.gets += 1
        return self._data.get(key)

    def _apply_put(self, key: Any, value: Any) -> None:
        """The single application hook both write paths route through; a
        subclass overriding it changes scalar and bulk writes alike."""
        self._data[key] = value

    def put(self, key: Any, value: Any) -> None:
        self.puts += 1
        self._apply_put(key, value)
        self._position += 1
        if self._on_update is not None:
            self._on_update(key, value)
        if self._listeners:
            for listener in self._listeners:
                listener(key, value)

    def put_many(self, items: List[Tuple[Any, Any]]) -> None:
        if not items:
            return
        self.puts += len(items)
        if type(self)._apply_put is InMemoryKeyValueStore._apply_put:
            # Bulk fast path: nothing overrides the application hook, so
            # one dict.update replaces the per-item calls.
            self._data.update(items)
        else:
            apply_put = self._apply_put
            for key, value in items:
                apply_put(key, value)
        self._position += len(items)
        if self._on_update_many is not None:
            self._on_update_many(items)
        elif self._on_update is not None:
            for key, value in items:
                self._on_update(key, value)
        if self._listeners:
            for key, value in items:
                for listener in self._listeners:
                    listener(key, value)

    def delete(self, key: Any) -> None:
        self.puts += 1
        self._data.pop(key, None)
        self._position += 1
        if self._on_update is not None:
            self._on_update(key, None)   # tombstone
        if self._listeners:
            for listener in self._listeners:
                listener(key, None)

    def restore_put(self, key: Any, value: Any) -> None:
        """Apply a changelog record during restoration (no hook — the
        update is already in the changelog; the restore rebases the
        position to the replayed prefix's next offset afterwards)."""
        if value is None:
            self._data.pop(key, None)
        else:
            self._data[key] = value

    def all(self) -> Iterator[Tuple[Any, Any]]:
        return iter(sorted(self._data.items(), key=lambda kv: repr(kv[0])))

    def approximate_num_entries(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
