"""State stores: disposable materialized views of changelog topics."""

from repro.streams.state.kv_store import InMemoryKeyValueStore, KeyValueStore
from repro.streams.state.window_store import InMemoryWindowStore, WindowStore
from repro.streams.state.cache import StoreCache

__all__ = [
    "KeyValueStore",
    "InMemoryKeyValueStore",
    "WindowStore",
    "InMemoryWindowStore",
    "StoreCache",
]
