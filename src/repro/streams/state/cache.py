"""The store write cache.

Kafka Streams places a small write-back cache in front of state stores:
repeated updates to the same key within a commit interval are consolidated,
so only the latest value per key reaches the changelog topic and the
downstream operators when the cache flushes (on commit or on eviction).
This is the "output suppression caching" Expedia enables to cut disk and
network I/O (Section 6.2).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

# emit(key, new_value, old_value, timestamp, headers)
EmitFn = Callable[[Any, Any, Any, float, Dict[str, Any]], None]


class StoreCache:
    """A bounded LRU write-back cache in front of a store.

    ``old_value`` tracked per dirty entry is the value *before the first
    cached update*, so the flushed Change spans the whole consolidated run
    of updates — downstream retractions stay correct.
    """

    def __init__(self, max_entries: int, emit: EmitFn) -> None:
        if max_entries < 1:
            raise ValueError("cache needs max_entries >= 1")
        self.max_entries = max_entries
        self._emit = emit
        # key -> (new_value, old_value, timestamp, headers)
        self._dirty: "OrderedDict[Any, Tuple[Any, Any, float, dict]]" = OrderedDict()
        self.hits = 0
        self.evictions = 0
        self.flushes = 0

    def get(self, key: Any) -> Optional[Any]:
        """Cached pending value for ``key`` (None if not cached)."""
        entry = self._dirty.get(key)
        if entry is None:
            return None
        self.hits += 1
        return entry[0]

    def contains(self, key: Any) -> bool:
        return key in self._dirty

    def put(
        self,
        key: Any,
        new_value: Any,
        old_value: Any,
        timestamp: float,
        headers: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Buffer an update; consolidates with any pending one for the key.

        ``headers`` of the latest update travel with the flushed result
        (preserving e.g. the created_at provenance of the triggering
        record)."""
        pending = self._dirty.pop(key, None)
        if pending is not None:
            old_value = pending[1]     # keep the pre-run old value
        self._dirty[key] = (new_value, old_value, timestamp, dict(headers or {}))
        if len(self._dirty) > self.max_entries:
            evict_key, (val, old, ts, hdrs) = self._dirty.popitem(last=False)
            self.evictions += 1
            self._emit(evict_key, val, old, ts, hdrs)

    def flush(self) -> int:
        """Emit every pending entry (called at commit). Returns count."""
        flushed = 0
        while self._dirty:
            key, (val, old, ts, hdrs) = self._dirty.popitem(last=False)
            self._emit(key, val, old, ts, hdrs)
            flushed += 1
        self.flushes += 1
        return flushed

    def __len__(self) -> int:
        return len(self._dirty)
