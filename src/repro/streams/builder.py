"""StreamsBuilder: the entry point of the DSL.

Topic names of internal (repartition) topics are generated with an
``%APP_ID%`` placeholder, resolved to ``<application_id>-...`` when the
application starts — mirroring how Kafka Streams prefixes internal topics
with the application id.
"""

from __future__ import annotations

from typing import Optional

from repro.streams.kstream import KStream
from repro.streams.ktable import KTable
from repro.streams.table_ops import TableSourceProcessor
from repro.streams.topology import StateStoreSpec, Topology

APP_ID_TOKEN = "%APP_ID%"


def resolve_topic(name: str, application_id: str) -> str:
    """Substitute the application id into internal topic names."""
    return name.replace(APP_ID_TOKEN, application_id)


class StreamsBuilder:
    """Accumulates DSL operations into a :class:`Topology`."""

    def __init__(self) -> None:
        self.topology = Topology()

    def stream(self, topic: str) -> KStream:
        """A record stream read from ``topic``."""
        name = self.topology.unique_name("KSTREAM-SOURCE")
        self.topology.add_source(name, [topic])
        return KStream(
            builder=self,
            node=name,
            source_topics={topic},
            repartition_required=False,
        )

    def table(self, topic: str, store_name: Optional[str] = None) -> KTable:
        """A table materialized from the changelog stream in ``topic``."""
        store = store_name or self.topology.unique_name("KTABLE-STORE")
        self.topology.add_state_store(StateStoreSpec(name=store, kind="kv"))
        source = self.topology.unique_name("KTABLE-SOURCE")
        self.topology.add_source(source, [topic])
        node = self.topology.unique_name("KTABLE-MATERIALIZE")
        self.topology.add_processor(
            node,
            lambda store=store: TableSourceProcessor(store),
            parents=[source],
            stores=[store],
        )
        return KTable(
            builder=self,
            node=node,
            store_name=store,
            source_topics={topic},
        )

    def global_table(self, topic: str, store_name: Optional[str] = None):
        """A fully replicated (broadcast) table — every instance holds the
        whole topic's contents, so streams join it on arbitrary keys."""
        from repro.streams.global_table import GlobalKTable, GlobalTableSpec

        store = store_name or self.topology.unique_name("GLOBAL-TABLE-STORE")
        spec = GlobalTableSpec(store_name=store, topic=topic)
        self.topology.add_global_table(spec)
        return GlobalKTable(self, spec)

    def build(self) -> Topology:
        """Finalize and return the topology (validates sub-topologies)."""
        self.topology.sub_topologies()   # raises TopologyError if invalid
        return self.topology
