"""Record types flowing through a streams topology.

A :class:`StreamRecord` is the unit processors exchange. Table-typed
operators forward :class:`Change` values carrying both the *new* and the
*old* result: the paper's revision mechanism requires downstream operators
to retract the effect of the prior result before accumulating the update
(Section 5), so both must travel together.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, NamedTuple, Optional


@dataclass(slots=True)
class StreamRecord:
    """One record as seen by processors inside a task."""

    key: Any
    value: Any
    timestamp: float
    headers: Dict[str, Any] = field(default_factory=dict)
    offset: int = -1
    topic: Optional[str] = None
    partition: Optional[int] = None

    def with_kv(self, key: Any, value: Any) -> "StreamRecord":
        return replace(self, key=key, value=value)

    def with_value(self, value: Any) -> "StreamRecord":
        return replace(self, value=value)

    def with_timestamp(self, timestamp: float) -> "StreamRecord":
        return replace(self, timestamp=timestamp)


class ColumnChunk:
    """A run of records as parallel columns, flowing between batch-aware
    processors of one sub-topology.

    The columnar twin of a sequence of :class:`StreamRecord`: position
    ``i`` across the four lists is one record. Batch-aware processors
    transform whole columns in a single pass and forward a new (or the
    same) chunk; columns are never mutated in place, so unchanged columns
    are shared by reference between stages.
    """

    __slots__ = ("keys", "values", "timestamps", "headers")

    def __init__(
        self,
        keys: list,
        values: list,
        timestamps: list,
        headers: list,
    ) -> None:
        self.keys = keys
        self.values = values
        self.timestamps = timestamps
        self.headers = headers

    def __len__(self) -> int:
        return len(self.keys)

    def __bool__(self) -> bool:
        return bool(self.keys)

    def __repr__(self) -> str:
        return f"ColumnChunk({len(self.keys)} records)"


class Change(NamedTuple):
    """A table update: the new result plus the one it replaces.

    ``old`` is ``None`` for the first result of a key; a deletion carries
    ``new=None``. Downstream revision-aware processors retract ``old``
    and accumulate ``new``.

    A NamedTuple rather than a frozen dataclass: aggregates construct one
    per emitted update, which makes construction cost visible on the batch
    hot path.
    """

    new: Any
    old: Any = None

    def __repr__(self) -> str:
        return f"Change(new={self.new!r}, old={self.old!r})"
