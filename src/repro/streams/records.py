"""Record types flowing through a streams topology.

A :class:`StreamRecord` is the unit processors exchange. Table-typed
operators forward :class:`Change` values carrying both the *new* and the
*old* result: the paper's revision mechanism requires downstream operators
to retract the effect of the prior result before accumulating the update
(Section 5), so both must travel together.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional


@dataclass(slots=True)
class StreamRecord:
    """One record as seen by processors inside a task."""

    key: Any
    value: Any
    timestamp: float
    headers: Dict[str, Any] = field(default_factory=dict)
    offset: int = -1
    topic: Optional[str] = None
    partition: Optional[int] = None

    def with_kv(self, key: Any, value: Any) -> "StreamRecord":
        return replace(self, key=key, value=value)

    def with_value(self, value: Any) -> "StreamRecord":
        return replace(self, value=value)

    def with_timestamp(self, timestamp: float) -> "StreamRecord":
        return replace(self, timestamp=timestamp)


@dataclass(frozen=True)
class Change:
    """A table update: the new result plus the one it replaces.

    ``old`` is ``None`` for the first result of a key; a deletion carries
    ``new=None``. Downstream revision-aware processors retract ``old``
    and accumulate ``new``.
    """

    new: Any
    old: Any = None

    def __repr__(self) -> str:
        return f"Change(new={self.new!r}, old={self.old!r})"
