"""Session-window aggregation with merge retractions.

A session aggregate is stored per (key, session first-timestamp); the
value holds the session's last timestamp and its aggregate. When a record
bridges sessions, the bridged sessions are removed from the store, their
previously emitted results are retracted downstream (Change(None, old)),
and one merged session result is emitted — the purest form of the paper's
revision processing, since downstream tables must undo two results and
apply one.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.streams.processor import Processor
from repro.streams.records import Change, StreamRecord
from repro.streams.windows import SessionWindows, Windowed, session_window

Initializer = Callable[[], Any]
Aggregator = Callable[[Any, Any, Any], Any]   # (key, value, aggregate)
Merger = Callable[[Any, Any, Any], Any]       # (key, agg_a, agg_b)


class SessionAggregateProcessor(Processor):
    """Aggregates a grouped stream into per-session results."""

    def __init__(
        self,
        store_name: str,
        windows: SessionWindows,
        initializer: Initializer,
        aggregator: Aggregator,
        merger: Merger,
    ) -> None:
        self._store_name = store_name
        self._windows = windows
        self._initializer = initializer
        self._aggregator = aggregator
        self._merger = merger
        self.records_processed = 0
        self.dropped_records = 0
        self.sessions_merged = 0

    def init(self, context) -> None:
        super().init(context)
        self._store = context.state_store(self._store_name)

    def process(self, record: StreamRecord) -> None:
        self.records_processed += 1
        key = record.key
        if key is None:
            return
        ts = record.timestamp
        stream_time = self.context.stream_time
        expiry_bound = stream_time - self._windows.grace_ms
        if ts < expiry_bound:
            self.dropped_records += 1
            self._expire(expiry_bound)
            return

        # Sessions of this key that the record extends or bridges:
        # [start - gap, end + gap] must contain ts.
        gap = self._windows.gap_ms
        touching: List[Tuple[float, Tuple[float, Any]]] = []
        for start, (end, agg) in self._store.fetch_key_windows(key):
            if start - gap <= ts <= end + gap:
                touching.append((start, (end, agg)))

        merged_start, merged_end = ts, ts
        aggregate = self._initializer()
        for start, (end, old_agg) in touching:
            merged_start = min(merged_start, start)
            merged_end = max(merged_end, end)
            aggregate = self._merger(key, aggregate, old_agg)
            # Remove the old session and retract its emitted result.
            self._store.put(key, start, None)
            self.context.forward(
                StreamRecord(
                    key=Windowed(key, session_window(start, end)),
                    value=Change(None, old_agg),
                    timestamp=ts,
                    headers=dict(record.headers),
                )
            )
        if len(touching) > 1:
            self.sessions_merged += len(touching) - 1

        aggregate = self._aggregator(key, record.value, aggregate)
        self._store.put(key, merged_start, (merged_end, aggregate))
        # Every touched session was retracted above, so the (possibly
        # merged) session is accumulated fresh: retract-old + add-new is
        # arithmetically the revision the downstream needs.
        self.context.forward(
            StreamRecord(
                key=Windowed(key, session_window(merged_start, merged_end)),
                value=Change(aggregate, None),
                timestamp=ts,
                headers=dict(record.headers),
            )
        )
        self._expire(expiry_bound)

    def _expire(self, bound: float) -> None:
        """GC sessions whose span ended before the grace bound."""
        doomed = [
            (k, start)
            for (k, start), (end, _) in self._store.all()
            if end < bound
        ]
        for k, start in doomed:
            self._store.restore_put((k, start), None)


def session_count_merger(key: Any, a: int, b: int) -> int:
    return a + b
