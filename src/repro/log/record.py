"""Records, batches, and control (transaction-marker) records.

A :class:`Record` models one Kafka log entry: a timestamped key/value pair
plus the producer metadata (producer id, epoch, sequence) that makes
idempotent and transactional appends possible, and an ``is_control`` flag
for transaction commit/abort markers (Section 4.2.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

NO_PRODUCER_ID = -1
NO_SEQUENCE = -1

COMMIT_MARKER = "commit"
ABORT_MARKER = "abort"


@dataclass(slots=True)
class Record:
    """One log entry.

    ``offset`` is assigned by the partition log at append time and is -1
    until then. ``timestamp`` is the event time set by the producer
    (Section 3.1: offset order need not match timestamp order).
    """

    key: Any
    value: Any
    timestamp: float = -1.0
    headers: Dict[str, Any] = field(default_factory=dict)
    offset: int = -1
    producer_id: int = NO_PRODUCER_ID
    producer_epoch: int = -1
    sequence: int = NO_SEQUENCE
    is_transactional: bool = False
    is_control: bool = False
    control_type: Optional[str] = None   # COMMIT_MARKER | ABORT_MARKER

    def with_offset(self, offset: int) -> "Record":
        return replace(self, offset=offset)

    def __repr__(self) -> str:  # compact, log-friendly
        if self.is_control:
            return f"Marker({self.control_type}, pid={self.producer_id}, off={self.offset})"
        return (
            f"Record(off={self.offset}, ts={self.timestamp}, "
            f"key={self.key!r}, value={self.value!r})"
        )


@dataclass(slots=True)
class RecordBatch:
    """A producer batch appended atomically to one partition log.

    Only the first record's sequence number is encoded; followers are
    inferred monotonically (Section 4.1). ``base_sequence`` is -1 for
    non-idempotent producers.
    """

    records: List[Record]
    producer_id: int = NO_PRODUCER_ID
    producer_epoch: int = -1
    base_sequence: int = NO_SEQUENCE
    is_transactional: bool = False

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("a RecordBatch must contain at least one record")

    @property
    def last_sequence(self) -> int:
        if self.base_sequence == NO_SEQUENCE:
            return NO_SEQUENCE
        return self.base_sequence + len(self.records) - 1

    @property
    def record_count(self) -> int:
        return len(self.records)

    def stamped_records(self) -> List[Record]:
        """Records carrying the batch's producer metadata."""
        if (
            self.producer_id == NO_PRODUCER_ID
            and self.producer_epoch == -1
            and self.base_sequence == NO_SEQUENCE
            and not self.is_transactional
        ):
            # Nothing to stamp: a non-idempotent batch carries no producer
            # metadata, so the per-record replace() would copy every record
            # only to write back the defaults it already has.
            return self.records
        stamped = []
        # Lazy scalar-view helper for batches that carry producer metadata.
        for i, record in enumerate(self.records):  # lint: allow-record-loop
            seq = NO_SEQUENCE
            if self.base_sequence != NO_SEQUENCE:
                seq = self.base_sequence + i
            stamped.append(
                replace(
                    record,
                    producer_id=self.producer_id,
                    producer_epoch=self.producer_epoch,
                    sequence=seq,
                    is_transactional=self.is_transactional,
                )
            )
        return stamped


def control_marker(
    marker_type: str, producer_id: int, producer_epoch: int, timestamp: float = -1.0
) -> Record:
    """Build a transaction commit/abort marker record."""
    if marker_type not in (COMMIT_MARKER, ABORT_MARKER):
        raise ValueError(f"unknown marker type: {marker_type!r}")
    return Record(
        key=None,
        value=None,
        timestamp=timestamp,
        producer_id=producer_id,
        producer_epoch=producer_epoch,
        is_transactional=True,
        is_control=True,
        control_type=marker_type,
    )
