"""Append-only partition logs: the storage primitive everything builds on."""

from repro.log.record import (
    ABORT_MARKER,
    COMMIT_MARKER,
    Record,
    RecordBatch,
    control_marker,
)
from repro.log.partition_log import AbortedTxn, PartitionLog
from repro.log.compaction import compact

__all__ = [
    "Record",
    "RecordBatch",
    "control_marker",
    "COMMIT_MARKER",
    "ABORT_MARKER",
    "PartitionLog",
    "AbortedTxn",
    "compact",
]
