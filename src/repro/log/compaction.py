"""Key-based log compaction for changelog topics.

Kafka brokers compact changelog topics by removing records for which a
later record exists with the same key (Section 3.2 of the paper): the
compacted log is a complete snapshot of the latest value per key, which is
exactly what state-store restoration needs.

Rules implemented here:

* only records below the *dirty point* (we use the last stable offset) are
  eligible, so open-transaction data is never compacted away;
* control markers are dropped once everything before them is compacted
  (they carry no key);
* aborted records are dropped entirely — they were never visible;
* a tombstone (``value is None``) removes earlier records for the key; the
  tombstone itself is retained (delete-retention is modelled as "forever"
  unless ``drop_tombstones`` is set).
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.log.partition_log import AbortedTxn, PartitionLog
from repro.log.record import Record


def _aborted_offsets(aborted: Iterable[AbortedTxn]) -> List[Tuple[int, int, int]]:
    return [(a.first_offset, a.last_offset, a.producer_id) for a in aborted]


def compact(
    records: List[Record],
    aborted: Iterable[AbortedTxn] = (),
    dirty_from: int = 2**63,
    drop_tombstones: bool = False,
) -> List[Record]:
    """Return the compacted form of ``records``.

    ``dirty_from``: offsets at or beyond this are kept untouched (not yet
    safe to compact). Offsets of retained records are preserved, so the
    result is a sparse but still offset-ordered log.
    """
    spans = _aborted_offsets(aborted)

    def is_aborted(record: Record) -> bool:
        for first, last, pid in spans:
            if first <= record.offset <= last and record.producer_id == pid:
                return True
        return False

    clean = [r for r in records if r.offset < dirty_from]
    dirty = [r for r in records if r.offset >= dirty_from]

    # Latest clean offset per key (aborted and control records never count).
    latest: dict = {}
    for record in clean:
        if record.is_control or is_aborted(record):
            continue
        latest[record.key] = record.offset

    # Records beyond the dirty point may still belong to open transactions,
    # so they must NOT shadow clean records: if the transaction aborts, the
    # older value is still the live one.
    kept: List[Record] = []
    for record in clean:
        if record.is_control or is_aborted(record):
            continue
        if latest.get(record.key) != record.offset:
            continue
        if drop_tombstones and record.value is None:
            continue
        kept.append(record)
    kept.extend(dirty)
    return kept


def compact_log(log: PartitionLog, drop_tombstones: bool = False) -> int:
    """Compact a partition log in place; returns records removed."""
    before = len(log)
    compacted = compact(
        log.records(),
        aborted=log.aborted_transactions(),
        dirty_from=log.last_stable_offset,
        drop_tombstones=drop_tombstones,
    )
    log.replace_records(compacted)
    return before - len(log)
