"""The append-only partition log.

This is the storage primitive the whole paper builds on: an immutable,
offset-ordered sequence of records. On top of plain appends it implements

* **idempotent appends** (Section 4.1): per-producer-id sequence validation
  with a bounded cache of recent batch metadata, so a retried batch (after a
  lost acknowledgement) is recognised and not appended twice;
* **transactional visibility** (Section 4.2.3): the log tracks the first
  offset of every open transaction and exposes the *last stable offset*
  (LSO). Read-committed consumers never read past the LSO, and spans of
  aborted transactions are recorded in an index so they can be filtered out;
* **log compaction** hooks for changelog topics, and ``delete_records`` for
  repartition-topic truncation.

The log itself is single-writer (the partition leader); replication copies
appended entries verbatim (see :mod:`repro.broker.replication`).
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    InvalidProducerEpochError,
    OffsetOutOfRangeError,
    OutOfOrderSequenceError,
)
from repro.log.columnar import ColumnarBatch, ColumnarSlab
from repro.log.record import (
    ABORT_MARKER,
    NO_PRODUCER_ID,
    NO_SEQUENCE,
    Record,
    RecordBatch,
    control_marker,
)

# How many recent batches of metadata to retain per producer id for
# duplicate detection (Kafka retains 5).
_PRODUCER_BATCH_CACHE = 5


@dataclass(frozen=True, slots=True)
class AbortedTxn:
    """Index entry: records of ``producer_id`` in [first_offset, last_offset]
    belong to an aborted transaction and must be filtered for read_committed."""

    producer_id: int
    first_offset: int
    last_offset: int


@dataclass
class AppendResult:
    """Outcome of an (idempotent) append."""

    base_offset: int
    last_offset: int
    duplicate: bool = False


@dataclass
class _BatchMeta:
    base_sequence: int
    last_sequence: int
    base_offset: int
    last_offset: int


class _ProducerIdState:
    """Sequence/epoch bookkeeping for one producer id on one partition."""

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.batches: Deque[_BatchMeta] = deque(maxlen=_PRODUCER_BATCH_CACHE)

    @property
    def last_sequence(self) -> int:
        if not self.batches:
            return NO_SEQUENCE
        return self.batches[-1].last_sequence

    def find_duplicate(self, batch: RecordBatch) -> Optional[_BatchMeta]:
        """Metadata of an already-appended copy of ``batch``, if any.

        Containment (not just exact equality) counts as a duplicate: a
        newly elected leader rebuilds its batch metadata from replicated
        records, where adjacent batches of one producer can merge into a
        single sequence run. A retried batch whose sequence range lies
        inside such a run was appended before the failover and must not be
        appended again. Offsets within a run are contiguous (batches append
        atomically), so the original offsets fall out arithmetically.
        """
        for meta in self.batches:
            if (
                meta.base_sequence <= batch.base_sequence
                and batch.last_sequence <= meta.last_sequence
            ):
                delta = batch.base_sequence - meta.base_sequence
                span = batch.last_sequence - batch.base_sequence
                return _BatchMeta(
                    batch.base_sequence,
                    batch.last_sequence,
                    meta.base_offset + delta,
                    meta.base_offset + delta + span,
                )
        return None


class PartitionLog:
    """One partition's log: records, producer state, and txn visibility."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._records: List[Record] = []
        self._offsets: List[int] = []        # parallel array for bisect
        self._next_offset = 0
        self.log_start_offset = 0
        self.high_watermark = 0              # managed by replication
        self._producers: Dict[int, _ProducerIdState] = {}
        # producer_id -> first offset of its currently open transaction
        self._open_txns: Dict[int, int] = {}
        self._aborted: List[AbortedTxn] = []
        # Interval index over `_aborted`: producer_id -> parallel, sorted
        # (first_offsets, last_offsets, spans). One producer's transactions
        # are serial, so its spans are disjoint and both offset lists are
        # ascending — membership and overlap queries are a bisect away.
        self._aborted_index: Dict[int, Tuple[List[int], List[int], List[AbortedTxn]]] = {}
        # Columnar-read auxiliaries: sorted offsets of every *data* record
        # carrying a real producer id, and of every control marker. Aborted
        # filtering and control skipping then become bisected slices of
        # these lists — validity runs are built from the gaps, without
        # touching individual records.
        self._pid_offsets: Dict[int, List[int]] = {}
        self._control_offsets: List[int] = []

    # -- basic accessors -------------------------------------------------------

    @property
    def log_end_offset(self) -> int:
        """Offset that the next appended record will receive."""
        return self._next_offset

    @property
    def last_stable_offset(self) -> int:
        """First offset of the earliest open transaction, else the high
        watermark. Read-committed fetches are capped here."""
        if self._open_txns:
            return min(min(self._open_txns.values()), self.high_watermark)
        return self.high_watermark

    def records(self) -> List[Record]:
        """All retained records, oldest first (includes control markers).

        Read-only view of the live backing list — do not mutate. Returning
        the list itself keeps per-poll accessor cost O(1) instead of O(log).
        """
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def open_transactions(self) -> Dict[int, int]:
        """producer_id -> first offset of its open transaction.

        Read-only view of the live mapping — do not mutate.
        """
        return self._open_txns

    def aborted_transactions(self) -> List[AbortedTxn]:
        """All aborted-transaction spans. Read-only view — do not mutate."""
        return self._aborted

    # -- aborted-transaction interval queries ----------------------------------

    def _index_aborted(self, span: AbortedTxn) -> None:
        self._aborted.append(span)
        entry = self._aborted_index.get(span.producer_id)
        if entry is None:
            entry = ([], [], [])
            self._aborted_index[span.producer_id] = entry
        firsts, lasts, spans = entry
        firsts.append(span.first_offset)
        lasts.append(span.last_offset)
        spans.append(span)

    def is_offset_aborted(self, producer_id: int, offset: int) -> bool:
        """True iff ``offset`` lies in an aborted span of ``producer_id``.

        O(log aborted-spans-of-producer) via bisect on the interval index.
        """
        entry = self._aborted_index.get(producer_id)
        if entry is None:
            return False
        firsts, lasts, _ = entry
        i = bisect.bisect_right(firsts, offset) - 1
        return i >= 0 and lasts[i] >= offset

    def aborted_overlapping(
        self, from_offset: int, up_to_offset: int
    ) -> List[AbortedTxn]:
        """Aborted spans intersecting ``[from_offset, up_to_offset)``."""
        out: List[AbortedTxn] = []
        for firsts, lasts, spans in self._aborted_index.values():
            lo = bisect.bisect_left(lasts, from_offset)
            hi = bisect.bisect_left(firsts, up_to_offset, lo)
            out.extend(spans[lo:hi])
        return out

    def producer_aborted_in_range(
        self, producer_id: int, first_offset: int, last_offset: int
    ) -> bool:
        """Any aborted span of ``producer_id`` intersecting the *inclusive*
        range ``[first_offset, last_offset]``?"""
        entry = self._aborted_index.get(producer_id)
        if entry is None:
            return False
        firsts, lasts, _ = entry
        i = bisect.bisect_left(lasts, first_offset)
        return i < len(firsts) and firsts[i] <= last_offset

    # -- appends ---------------------------------------------------------------

    def append_batch(self, batch: RecordBatch) -> AppendResult:
        """Append a producer batch with idempotence validation.

        Returns the assigned offsets; a recognised retry of an already
        appended batch returns the *original* offsets with
        ``duplicate=True`` instead of appending again.
        """
        if batch.producer_id == NO_PRODUCER_ID:
            return self._do_append(batch)

        state = self._producers.get(batch.producer_id)
        if state is None:
            state = _ProducerIdState(batch.producer_epoch)
            self._producers[batch.producer_id] = state
        elif batch.producer_epoch < state.epoch:
            raise InvalidProducerEpochError(
                f"{self.name}: producer {batch.producer_id} epoch "
                f"{batch.producer_epoch} < current {state.epoch}"
            )
        elif batch.producer_epoch > state.epoch:
            # A new producer incarnation must restart sequencing at 0.
            if batch.base_sequence not in (0, NO_SEQUENCE):
                raise OutOfOrderSequenceError(
                    f"{self.name}: new epoch {batch.producer_epoch} for producer "
                    f"{batch.producer_id} must begin at sequence 0, got "
                    f"{batch.base_sequence}"
                )
            state.epoch = batch.producer_epoch
            state.batches.clear()

        if batch.base_sequence == NO_SEQUENCE:
            # Sequence-less batch (e.g. a coordinator-side offset commit):
            # epoch-validated above, but exempt from idempotence dedup —
            # two such batches are distinct appends, not retries.
            return self._do_append(batch)

        duplicate = state.find_duplicate(batch)
        if duplicate is not None:
            return AppendResult(
                duplicate.base_offset, duplicate.last_offset, duplicate=True
            )

        expected = state.last_sequence + 1
        if state.last_sequence != NO_SEQUENCE and batch.base_sequence != expected:
            raise OutOfOrderSequenceError(
                f"{self.name}: producer {batch.producer_id} sent sequence "
                f"{batch.base_sequence}, expected {expected}"
            )

        result = self._do_append(batch)
        state.batches.append(
            _BatchMeta(
                batch.base_sequence,
                batch.last_sequence,
                result.base_offset,
                result.last_offset,
            )
        )
        return result

    def _do_append(self, batch) -> AppendResult:
        # Offset assignment and producer-metadata stamping fused into one
        # record construction (instead of stamped_records() + with_offset(),
        # two dataclass copies per record on the produce hot path). For a
        # ColumnarSlab this is the *only* per-record Record construction on
        # the whole produce path — the producer ships raw columns.
        base_offset = self._next_offset
        offset = base_offset
        base_sequence = batch.base_sequence
        pid = batch.producer_id
        epoch = batch.producer_epoch
        transactional = batch.is_transactional
        append_record = self._records.append
        append_offset = self._offsets.append
        pid_append = (
            self._pid_offsets.setdefault(pid, []).append
            if pid != NO_PRODUCER_ID
            else None
        )
        if isinstance(batch, ColumnarSlab):
            keys = batch.keys
            values = batch.values
            timestamps = batch.timestamps
            headers = batch.headers
            # Positional construction: Record is a slots dataclass and the
            # keyword form measurably slows this, the innermost produce loop.
            # A slab is all-data, one-producer, contiguous, so the offset
            # and producer indexes grow by a single range extension.
            seq = base_sequence
            seq_step = 0 if base_sequence == NO_SEQUENCE else 1
            for key, value, timestamp, hdrs in zip(
                keys, values, timestamps, headers
            ):
                append_record(
                    Record(
                        key, value, timestamp, hdrs,
                        offset, pid, epoch, seq, transactional,
                    )
                )
                offset += 1
                seq += seq_step
            assigned = range(base_offset, offset)
            self._offsets.extend(assigned)
            if pid_append is not None:
                self._pid_offsets[pid].extend(assigned)
        else:
            control_append = self._control_offsets.append
            # Scalar RecordBatch intake, not a columnar read path.
            for i, record in enumerate(batch.records):  # lint: allow-record-loop
                append_record(
                    Record(
                        key=record.key,
                        value=record.value,
                        timestamp=record.timestamp,
                        headers=record.headers,
                        offset=offset,
                        producer_id=pid,
                        producer_epoch=epoch,
                        sequence=(
                            NO_SEQUENCE
                            if base_sequence == NO_SEQUENCE
                            else base_sequence + i
                        ),
                        is_transactional=transactional,
                        is_control=record.is_control,
                        control_type=record.control_type,
                    )
                )
                append_offset(offset)
                if record.is_control:
                    control_append(offset)
                elif pid_append is not None:
                    pid_append(offset)
                offset += 1
        self._next_offset = offset
        if transactional and pid not in self._open_txns:
            self._open_txns[pid] = base_offset
        return AppendResult(base_offset, offset - 1)

    def _append_record(self, record: Record) -> None:
        stamped = record.with_offset(self._next_offset)
        self._records.append(stamped)
        self._offsets.append(self._next_offset)
        if stamped.is_control:
            self._control_offsets.append(self._next_offset)
        elif stamped.producer_id != NO_PRODUCER_ID:
            self._pid_offsets.setdefault(stamped.producer_id, []).append(
                self._next_offset
            )
        self._next_offset += 1

    def append_marker(self, marker: Record) -> int:
        """Append a transaction commit/abort marker, closing the producer's
        open transaction on this partition. Returns the marker's offset."""
        if not marker.is_control:
            raise ValueError("append_marker requires a control record")
        state = self._producers.get(marker.producer_id)
        if state is not None and marker.producer_epoch > state.epoch:
            # Markers carry the (possibly bumped) epoch: once written, any
            # still-running zombie with the old epoch is fenced on this
            # partition too.
            state.epoch = marker.producer_epoch
            state.batches.clear()
        first_offset = self._open_txns.pop(marker.producer_id, None)
        offset = self._next_offset
        self._append_record(marker)
        if marker.control_type == ABORT_MARKER and first_offset is not None:
            self._index_aborted(
                AbortedTxn(marker.producer_id, first_offset, offset - 1)
            )
        return offset

    def replicate_from(self, records: List[Record]) -> None:
        """Follower path: copy already-offset-stamped records verbatim,
        reconstructing producer/transaction state from their metadata.

        The backing record and offset lists grow by C-level extension (the
        offsets of a valid replication slice are exactly the next ``n``
        integers, validated up front), and the producer/transaction
        metadata walk advances run-at-a-time: a replication slice is a
        concatenation of leader batches, so consecutive data records from
        one producer with contiguous sequences collapse into a single
        offset-range extension and one batch-metadata merge."""
        if not records:
            return
        next_offset = self._next_offset
        n = len(records)
        offsets = [record.offset for record in records]
        if offsets != list(range(next_offset, next_offset + n)):
            for i, offset in enumerate(offsets):
                if offset != next_offset + i:
                    raise ValueError(
                        f"{self.name}: replication gap, expected offset "
                        f"{next_offset + i}, got {offset}"
                    )
        self._records.extend(records)
        self._offsets.extend(offsets)
        self._next_offset = next_offset + n
        open_txns = self._open_txns
        producers = self._producers
        i = 0
        while i < n:
            record = records[i]
            pid = record.producer_id
            if record.is_control:
                self._control_offsets.append(record.offset)
                first = open_txns.pop(pid, None)
                if record.control_type == ABORT_MARKER and first is not None:
                    self._index_aborted(AbortedTxn(pid, first, record.offset - 1))
                i += 1
                continue
            if pid == NO_PRODUCER_ID:
                i += 1
                continue
            # Extend the run: same producer (and epoch), non-control, with
            # sequences advancing in lockstep with offsets — i.e. exactly
            # what one leader batch (or adjacent batches of one producer)
            # replicates as.
            sequence = record.sequence
            epoch = record.producer_epoch
            j = i + 1
            while j < n:
                peer = records[j]
                if (
                    peer.is_control
                    or peer.producer_id != pid
                    or peer.producer_epoch != epoch
                    or peer.is_transactional != record.is_transactional
                    or peer.sequence
                    != (
                        sequence + (j - i)
                        if sequence != NO_SEQUENCE
                        else NO_SEQUENCE
                    )
                ):
                    break
                j += 1
            run_len = j - i
            first_offset = record.offset
            self._pid_offsets.setdefault(pid, []).extend(
                range(first_offset, first_offset + run_len)
            )
            state = producers.get(pid)
            if state is None or epoch > state.epoch:
                state = _ProducerIdState(epoch)
                producers[pid] = state
            if sequence != NO_SEQUENCE:
                # Merge contiguous (sequence AND offset) runs into one
                # batch-metadata entry. Batches append atomically on the
                # leader, so a batch is always offset-contiguous; keeping
                # runs merged lets this replica — should it be elected
                # leader — recognise a producer's post-failover retry as a
                # duplicate instead of an out-of-order send.
                last = state.batches[-1] if state.batches else None
                if (
                    last is not None
                    and last.last_sequence + 1 == sequence
                    and last.last_offset + 1 == first_offset
                ):
                    last.last_sequence = sequence + run_len - 1
                    last.last_offset = first_offset + run_len - 1
                else:
                    state.batches.append(
                        _BatchMeta(
                            sequence,
                            sequence + run_len - 1,
                            first_offset,
                            first_offset + run_len - 1,
                        )
                    )
            if record.is_transactional and pid not in open_txns:
                open_txns[pid] = first_offset
            i = j

    def replicate_mirror(self, source: "PartitionLog") -> None:
        """Follower fetch against a live leader log: copy the missing
        record suffix by slice and *mirror* the leader's index state
        instead of re-deriving it record by record.

        Valid only when this log is a prefix of ``source`` (which
        :meth:`repro.broker.partition.Partition._sync_follower` guarantees
        by truncating or resetting first) and the sync runs to the
        leader's log end — afterwards both logs hold the same records, so
        every index must equal the leader's:

        * record/offset/control/producer-offset lists grow by bisected
          slice extension (follower lists never hold offsets >= its log
          end — ``truncate_to``/``reset_to`` maintain that);
        * producer sequence state and open transactions are snapshots of
          the leader's (which also heals state left stale by a divergence
          truncation, where the record walk could only append);
        * aborted spans whose markers sit in the copied suffix are pushed
          through :meth:`_index_aborted` in leader order (``_aborted`` is
          sorted by ``last_offset`` — each abort marker at offset ``m``
          indexes a span ending at ``m - 1``, and markers append in offset
          order).
        """
        start = self._next_offset
        if start >= source._next_offset:
            return
        if start < source.log_start_offset:
            raise ValueError(
                f"{self.name}: cannot mirror from offset {start}; source "
                f"log starts at {source.log_start_offset}"
            )
        idx = bisect.bisect_left(source._offsets, start)
        self._records.extend(source._records[idx:])
        self._offsets.extend(source._offsets[idx:])
        self._next_offset = source._next_offset

        controls = source._control_offsets
        self._control_offsets.extend(
            controls[bisect.bisect_left(controls, start):]
        )
        for pid, offs in source._pid_offsets.items():
            tail = offs[bisect.bisect_left(offs, start):]
            if tail:
                self._pid_offsets.setdefault(pid, []).extend(tail)

        self._open_txns = dict(source._open_txns)
        producers: Dict[int, _ProducerIdState] = {}
        for pid, state in source._producers.items():
            mirrored = _ProducerIdState(state.epoch)
            mirrored.batches.extend(
                _BatchMeta(
                    m.base_sequence, m.last_sequence,
                    m.base_offset, m.last_offset,
                )
                for m in state.batches
            )
            producers[pid] = mirrored
        self._producers = producers

        # Spans indexed by markers in [start, end) end at >= start - 1;
        # spans from earlier markers end at <= start - 2.
        lo = bisect.bisect_left(
            source._aborted, start - 1, key=lambda s: s.last_offset
        )
        for span in source._aborted[lo:]:
            self._index_aborted(span)

    # -- reads -------------------------------------------------------------------

    def read(
        self,
        from_offset: int,
        max_records: int = 1_000_000,
        up_to_offset: Optional[int] = None,
    ) -> List[Record]:
        """Records with ``from_offset <= offset < up_to_offset`` (default:
        the high watermark), oldest first, including control markers. At
        most ``max_records`` are returned.

        Both bounds are located by bisect, so the work done (and the list
        returned) is proportional to the records returned, never to the
        size of the tail.

        Raises OffsetOutOfRangeError if ``from_offset`` precedes the log
        start (records were deleted) or exceeds the log end.
        """
        if from_offset < self.log_start_offset or from_offset > self._next_offset:
            raise OffsetOutOfRangeError(
                f"{self.name}: offset {from_offset} outside "
                f"[{self.log_start_offset}, {self._next_offset}]"
            )
        limit = self.high_watermark if up_to_offset is None else up_to_offset
        start = bisect.bisect_left(self._offsets, from_offset)
        end = bisect.bisect_left(self._offsets, limit, start)
        if max_records < end - start:
            end = start + max_records
        return self._records[start:end]

    def read_columnar(
        self,
        from_offset: int,
        max_records: int = 1_000_000,
        up_to_offset: Optional[int] = None,
        filter_aborted: bool = False,
    ) -> ColumnarBatch:
        """Columnar twin of :meth:`read` with fetch filtering built in.

        Returns a :class:`ColumnarBatch` whose validity runs cover exactly
        the records a scalar fetch would return: control markers are always
        masked, and with ``filter_aborted`` the aborted spans of the PR 1
        interval index are masked too. No per-record work happens here —
        the skipped positions are found by bisecting the control-offset and
        per-producer offset lists, so the cost is O(skips · log n) plus one
        C-level slice of the backing list.

        ``next_offset`` follows scalar-fetch semantics: it advances past
        every *scanned* position (including masked ones), and scanning
        stops as soon as ``max_records`` valid records are found.
        """
        if from_offset < self.log_start_offset or from_offset > self._next_offset:
            raise OffsetOutOfRangeError(
                f"{self.name}: offset {from_offset} outside "
                f"[{self.log_start_offset}, {self._next_offset}]"
            )
        limit = self.high_watermark if up_to_offset is None else up_to_offset
        offsets = self._offsets
        start = bisect.bisect_left(offsets, from_offset)
        hard_end = bisect.bisect_left(offsets, limit, start)
        hw = self.high_watermark
        lso = self.last_stable_offset
        if hard_end <= start or max_records <= 0:
            return ColumnarBatch([], [], from_offset, hw, lso)

        # Offsets inside the window that a scalar fetch would skip. The
        # harvest is bounded to the prefix the budget can actually consume:
        # start from a fully-valid window of ``max_records`` positions and
        # grow it geometrically while masked positions eat into the budget,
        # so a bounded page against a huge tail never walks the tail's
        # whole skip index (which would make paging quadratic).
        window_lo = offsets[start]
        controls = self._control_offsets
        span = min(max_records, hard_end - start)
        while True:
            scan_end = start + span if start + span < hard_end else hard_end
            window_hi = offsets[scan_end - 1] + 1
            invalid_lists: List[List[int]] = []
            lo = bisect.bisect_left(controls, window_lo)
            hi = bisect.bisect_left(controls, window_hi, lo)
            if hi > lo:
                invalid_lists.append(controls[lo:hi])
            if filter_aborted:
                for span_txn in self.aborted_overlapping(window_lo, window_hi):
                    per_pid = self._pid_offsets.get(span_txn.producer_id)
                    if per_pid is None:
                        continue
                    a = bisect.bisect_left(
                        per_pid, max(span_txn.first_offset, window_lo)
                    )
                    b = bisect.bisect_right(
                        per_pid, min(span_txn.last_offset, window_hi - 1), a
                    )
                    if b > a:
                        invalid_lists.append(per_pid[a:b])
            masked = sum(len(chunk) for chunk in invalid_lists)
            if scan_end == hard_end or (scan_end - start) - masked >= max_records:
                break
            span *= 2
        if not invalid_lists:
            invalid: List[int] = []
        elif len(invalid_lists) == 1:
            invalid = invalid_lists[0]
        else:
            # The sources are mutually disjoint sorted lists (control
            # markers never carry data producer-id entries; aborted spans
            # partition per-producer offsets), so merging is enough — and
            # timsort's gallop over concatenated sorted runs beats a
            # generator-based k-way merge.
            invalid = [o for chunk in invalid_lists for o in chunk]
            invalid.sort()

        # Build validity runs between skipped positions, stopping the scan
        # once the budget of valid records is filled.
        runs: List[Tuple[int, int]] = []
        valid = 0
        cursor = start
        end_idx = start
        budget_filled = False
        for skip_offset in invalid:
            idx = bisect.bisect_left(offsets, skip_offset, cursor, hard_end)
            take = idx - cursor
            if valid + take >= max_records:
                take = max_records - valid
                if take:
                    runs.append((cursor, cursor + take))
                    valid += take
                end_idx = cursor + take
                budget_filled = True
                break
            if take:
                runs.append((cursor, idx))
                valid += take
            cursor = idx + 1
            end_idx = cursor
        if not budget_filled:
            take = hard_end - cursor
            if take > 0:
                if valid + take > max_records:
                    take = max_records - valid
                runs.append((cursor, cursor + take))
                valid += take
                end_idx = cursor + take

        next_offset = offsets[end_idx - 1] + 1 if end_idx > start else from_offset
        backing = self._records[start:end_idx]
        if start:
            runs = [(s - start, e - start) for s, e in runs]
        return ColumnarBatch(backing, runs, next_offset, hw, lso)

    def earliest_offset(self) -> int:
        return self.log_start_offset

    def truncate_to(self, offset: int) -> None:
        """Remove records with offsets >= ``offset`` (follower reconciliation)."""
        keep = bisect.bisect_left(self._offsets, offset)
        del self._records[keep:]
        del self._offsets[keep:]
        for offs in self._pid_offsets.values():
            del offs[bisect.bisect_left(offs, offset):]
        del self._control_offsets[
            bisect.bisect_left(self._control_offsets, offset):
        ]
        self._next_offset = offset if not self._offsets else self._offsets[-1] + 1
        self.high_watermark = min(self.high_watermark, self._next_offset)

    def reset_to(self, offset: int) -> None:
        """Discard everything and restart the log at ``offset`` (a follower
        resyncing against a leader whose older records were deleted)."""
        self._records.clear()
        self._offsets.clear()
        self._next_offset = offset
        self.log_start_offset = offset
        self.high_watermark = offset
        self._producers.clear()
        self._open_txns.clear()
        self._aborted.clear()
        self._aborted_index.clear()
        self._pid_offsets.clear()
        self._control_offsets.clear()

    def delete_records_before(self, offset: int) -> int:
        """Advance the log start offset (repartition-topic purge).

        Returns how many records were physically removed.
        """
        offset = min(offset, self.high_watermark)
        if offset <= self.log_start_offset:
            return 0
        keep = bisect.bisect_left(self._offsets, offset)
        removed = keep
        del self._records[:keep]
        del self._offsets[:keep]
        for offs in self._pid_offsets.values():
            del offs[: bisect.bisect_left(offs, offset)]
        del self._control_offsets[
            : bisect.bisect_left(self._control_offsets, offset)
        ]
        self.log_start_offset = offset
        return removed

    # -- compaction hook ---------------------------------------------------------

    def replace_records(self, records: List[Record]) -> None:
        """Install a compacted record list (offsets must stay ascending)."""
        offsets = [r.offset for r in records]
        if offsets != sorted(offsets):
            raise ValueError("compacted records must keep ascending offsets")
        self._records = list(records)
        self._offsets = offsets
        pid_offsets: Dict[int, List[int]] = {}
        control_offsets: List[int] = []
        for record in records:
            if record.is_control:
                control_offsets.append(record.offset)
            elif record.producer_id != NO_PRODUCER_ID:
                pid_offsets.setdefault(record.producer_id, []).append(
                    record.offset
                )
        self._pid_offsets = pid_offsets
        self._control_offsets = control_offsets

    # -- queries used by coordinators ---------------------------------------------

    def last_timestamp(self) -> float:
        if not self._records:
            return -1.0
        return self._records[-1].timestamp
