"""The append-only partition log.

This is the storage primitive the whole paper builds on: an immutable,
offset-ordered sequence of records. On top of plain appends it implements

* **idempotent appends** (Section 4.1): per-producer-id sequence validation
  with a bounded cache of recent batch metadata, so a retried batch (after a
  lost acknowledgement) is recognised and not appended twice;
* **transactional visibility** (Section 4.2.3): the log tracks the first
  offset of every open transaction and exposes the *last stable offset*
  (LSO). Read-committed consumers never read past the LSO, and spans of
  aborted transactions are recorded in an index so they can be filtered out;
* **log compaction** hooks for changelog topics, and ``delete_records`` for
  repartition-topic truncation.

The log itself is single-writer (the partition leader); replication copies
appended entries verbatim (see :mod:`repro.broker.replication`).
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    InvalidProducerEpochError,
    OffsetOutOfRangeError,
    OutOfOrderSequenceError,
)
from repro.log.record import (
    ABORT_MARKER,
    NO_PRODUCER_ID,
    NO_SEQUENCE,
    Record,
    RecordBatch,
    control_marker,
)

# How many recent batches of metadata to retain per producer id for
# duplicate detection (Kafka retains 5).
_PRODUCER_BATCH_CACHE = 5


@dataclass(frozen=True, slots=True)
class AbortedTxn:
    """Index entry: records of ``producer_id`` in [first_offset, last_offset]
    belong to an aborted transaction and must be filtered for read_committed."""

    producer_id: int
    first_offset: int
    last_offset: int


@dataclass
class AppendResult:
    """Outcome of an (idempotent) append."""

    base_offset: int
    last_offset: int
    duplicate: bool = False


@dataclass
class _BatchMeta:
    base_sequence: int
    last_sequence: int
    base_offset: int
    last_offset: int


class _ProducerIdState:
    """Sequence/epoch bookkeeping for one producer id on one partition."""

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.batches: Deque[_BatchMeta] = deque(maxlen=_PRODUCER_BATCH_CACHE)

    @property
    def last_sequence(self) -> int:
        if not self.batches:
            return NO_SEQUENCE
        return self.batches[-1].last_sequence

    def find_duplicate(self, batch: RecordBatch) -> Optional[_BatchMeta]:
        """Metadata of an already-appended copy of ``batch``, if any.

        Containment (not just exact equality) counts as a duplicate: a
        newly elected leader rebuilds its batch metadata from replicated
        records, where adjacent batches of one producer can merge into a
        single sequence run. A retried batch whose sequence range lies
        inside such a run was appended before the failover and must not be
        appended again. Offsets within a run are contiguous (batches append
        atomically), so the original offsets fall out arithmetically.
        """
        for meta in self.batches:
            if (
                meta.base_sequence <= batch.base_sequence
                and batch.last_sequence <= meta.last_sequence
            ):
                delta = batch.base_sequence - meta.base_sequence
                span = batch.last_sequence - batch.base_sequence
                return _BatchMeta(
                    batch.base_sequence,
                    batch.last_sequence,
                    meta.base_offset + delta,
                    meta.base_offset + delta + span,
                )
        return None


class PartitionLog:
    """One partition's log: records, producer state, and txn visibility."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._records: List[Record] = []
        self._offsets: List[int] = []        # parallel array for bisect
        self._next_offset = 0
        self.log_start_offset = 0
        self.high_watermark = 0              # managed by replication
        self._producers: Dict[int, _ProducerIdState] = {}
        # producer_id -> first offset of its currently open transaction
        self._open_txns: Dict[int, int] = {}
        self._aborted: List[AbortedTxn] = []
        # Interval index over `_aborted`: producer_id -> parallel, sorted
        # (first_offsets, last_offsets, spans). One producer's transactions
        # are serial, so its spans are disjoint and both offset lists are
        # ascending — membership and overlap queries are a bisect away.
        self._aborted_index: Dict[int, Tuple[List[int], List[int], List[AbortedTxn]]] = {}

    # -- basic accessors -------------------------------------------------------

    @property
    def log_end_offset(self) -> int:
        """Offset that the next appended record will receive."""
        return self._next_offset

    @property
    def last_stable_offset(self) -> int:
        """First offset of the earliest open transaction, else the high
        watermark. Read-committed fetches are capped here."""
        if self._open_txns:
            return min(min(self._open_txns.values()), self.high_watermark)
        return self.high_watermark

    def records(self) -> List[Record]:
        """All retained records, oldest first (includes control markers).

        Read-only view of the live backing list — do not mutate. Returning
        the list itself keeps per-poll accessor cost O(1) instead of O(log).
        """
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def open_transactions(self) -> Dict[int, int]:
        """producer_id -> first offset of its open transaction.

        Read-only view of the live mapping — do not mutate.
        """
        return self._open_txns

    def aborted_transactions(self) -> List[AbortedTxn]:
        """All aborted-transaction spans. Read-only view — do not mutate."""
        return self._aborted

    # -- aborted-transaction interval queries ----------------------------------

    def _index_aborted(self, span: AbortedTxn) -> None:
        self._aborted.append(span)
        entry = self._aborted_index.get(span.producer_id)
        if entry is None:
            entry = ([], [], [])
            self._aborted_index[span.producer_id] = entry
        firsts, lasts, spans = entry
        firsts.append(span.first_offset)
        lasts.append(span.last_offset)
        spans.append(span)

    def is_offset_aborted(self, producer_id: int, offset: int) -> bool:
        """True iff ``offset`` lies in an aborted span of ``producer_id``.

        O(log aborted-spans-of-producer) via bisect on the interval index.
        """
        entry = self._aborted_index.get(producer_id)
        if entry is None:
            return False
        firsts, lasts, _ = entry
        i = bisect.bisect_right(firsts, offset) - 1
        return i >= 0 and lasts[i] >= offset

    def aborted_overlapping(
        self, from_offset: int, up_to_offset: int
    ) -> List[AbortedTxn]:
        """Aborted spans intersecting ``[from_offset, up_to_offset)``."""
        out: List[AbortedTxn] = []
        for firsts, lasts, spans in self._aborted_index.values():
            lo = bisect.bisect_left(lasts, from_offset)
            hi = bisect.bisect_left(firsts, up_to_offset, lo)
            out.extend(spans[lo:hi])
        return out

    def producer_aborted_in_range(
        self, producer_id: int, first_offset: int, last_offset: int
    ) -> bool:
        """Any aborted span of ``producer_id`` intersecting the *inclusive*
        range ``[first_offset, last_offset]``?"""
        entry = self._aborted_index.get(producer_id)
        if entry is None:
            return False
        firsts, lasts, _ = entry
        i = bisect.bisect_left(lasts, first_offset)
        return i < len(firsts) and firsts[i] <= last_offset

    # -- appends ---------------------------------------------------------------

    def append_batch(self, batch: RecordBatch) -> AppendResult:
        """Append a producer batch with idempotence validation.

        Returns the assigned offsets; a recognised retry of an already
        appended batch returns the *original* offsets with
        ``duplicate=True`` instead of appending again.
        """
        if batch.producer_id == NO_PRODUCER_ID:
            return self._do_append(batch)

        state = self._producers.get(batch.producer_id)
        if state is None:
            state = _ProducerIdState(batch.producer_epoch)
            self._producers[batch.producer_id] = state
        elif batch.producer_epoch < state.epoch:
            raise InvalidProducerEpochError(
                f"{self.name}: producer {batch.producer_id} epoch "
                f"{batch.producer_epoch} < current {state.epoch}"
            )
        elif batch.producer_epoch > state.epoch:
            # A new producer incarnation must restart sequencing at 0.
            if batch.base_sequence not in (0, NO_SEQUENCE):
                raise OutOfOrderSequenceError(
                    f"{self.name}: new epoch {batch.producer_epoch} for producer "
                    f"{batch.producer_id} must begin at sequence 0, got "
                    f"{batch.base_sequence}"
                )
            state.epoch = batch.producer_epoch
            state.batches.clear()

        if batch.base_sequence == NO_SEQUENCE:
            # Sequence-less batch (e.g. a coordinator-side offset commit):
            # epoch-validated above, but exempt from idempotence dedup —
            # two such batches are distinct appends, not retries.
            return self._do_append(batch)

        duplicate = state.find_duplicate(batch)
        if duplicate is not None:
            return AppendResult(
                duplicate.base_offset, duplicate.last_offset, duplicate=True
            )

        expected = state.last_sequence + 1
        if state.last_sequence != NO_SEQUENCE and batch.base_sequence != expected:
            raise OutOfOrderSequenceError(
                f"{self.name}: producer {batch.producer_id} sent sequence "
                f"{batch.base_sequence}, expected {expected}"
            )

        result = self._do_append(batch)
        state.batches.append(
            _BatchMeta(
                batch.base_sequence,
                batch.last_sequence,
                result.base_offset,
                result.last_offset,
            )
        )
        return result

    def _do_append(self, batch: RecordBatch) -> AppendResult:
        # Offset assignment and producer-metadata stamping fused into one
        # record construction (instead of stamped_records() + with_offset(),
        # two dataclass copies per record on the produce hot path).
        base_offset = self._next_offset
        offset = base_offset
        base_sequence = batch.base_sequence
        pid = batch.producer_id
        epoch = batch.producer_epoch
        transactional = batch.is_transactional
        append_record = self._records.append
        append_offset = self._offsets.append
        for i, record in enumerate(batch.records):
            append_record(
                Record(
                    key=record.key,
                    value=record.value,
                    timestamp=record.timestamp,
                    headers=record.headers,
                    offset=offset,
                    producer_id=pid,
                    producer_epoch=epoch,
                    sequence=(
                        NO_SEQUENCE
                        if base_sequence == NO_SEQUENCE
                        else base_sequence + i
                    ),
                    is_transactional=transactional,
                    is_control=record.is_control,
                    control_type=record.control_type,
                )
            )
            append_offset(offset)
            offset += 1
        self._next_offset = offset
        if transactional and pid not in self._open_txns:
            self._open_txns[pid] = base_offset
        return AppendResult(base_offset, offset - 1)

    def _append_record(self, record: Record) -> None:
        stamped = record.with_offset(self._next_offset)
        self._records.append(stamped)
        self._offsets.append(self._next_offset)
        self._next_offset += 1

    def append_marker(self, marker: Record) -> int:
        """Append a transaction commit/abort marker, closing the producer's
        open transaction on this partition. Returns the marker's offset."""
        if not marker.is_control:
            raise ValueError("append_marker requires a control record")
        state = self._producers.get(marker.producer_id)
        if state is not None and marker.producer_epoch > state.epoch:
            # Markers carry the (possibly bumped) epoch: once written, any
            # still-running zombie with the old epoch is fenced on this
            # partition too.
            state.epoch = marker.producer_epoch
            state.batches.clear()
        first_offset = self._open_txns.pop(marker.producer_id, None)
        offset = self._next_offset
        self._append_record(marker)
        if marker.control_type == ABORT_MARKER and first_offset is not None:
            self._index_aborted(
                AbortedTxn(marker.producer_id, first_offset, offset - 1)
            )
        return offset

    def replicate_from(self, records: List[Record]) -> None:
        """Follower path: copy already-offset-stamped records verbatim,
        reconstructing producer/transaction state from their metadata."""
        append_record = self._records.append
        append_offset = self._offsets.append
        next_offset = self._next_offset
        for record in records:
            if record.offset != next_offset:
                self._next_offset = next_offset
                raise ValueError(
                    f"{self.name}: replication gap, expected offset "
                    f"{next_offset}, got {record.offset}"
                )
            append_record(record)
            append_offset(record.offset)
            next_offset = record.offset + 1
            self._next_offset = next_offset
            pid = record.producer_id
            if record.is_control:
                first = self._open_txns.pop(pid, None)
                if record.control_type == ABORT_MARKER and first is not None:
                    self._index_aborted(AbortedTxn(pid, first, record.offset - 1))
                continue
            if pid != NO_PRODUCER_ID:
                state = self._producers.get(pid)
                if state is None or record.producer_epoch > state.epoch:
                    state = _ProducerIdState(record.producer_epoch)
                    self._producers[pid] = state
                if record.sequence != NO_SEQUENCE:
                    # Merge contiguous (sequence AND offset) records into
                    # one batch-metadata run. Batches append atomically on
                    # the leader, so a batch is always offset-contiguous;
                    # keeping runs merged lets this replica — should it be
                    # elected leader — recognise a producer's post-failover
                    # retry as a duplicate instead of an out-of-order send.
                    run = state.batches[-1] if state.batches else None
                    if (
                        run is not None
                        and run.last_sequence + 1 == record.sequence
                        and run.last_offset + 1 == record.offset
                    ):
                        run.last_sequence = record.sequence
                        run.last_offset = record.offset
                    else:
                        state.batches.append(
                            _BatchMeta(
                                record.sequence,
                                record.sequence,
                                record.offset,
                                record.offset,
                            )
                        )
                if record.is_transactional and pid not in self._open_txns:
                    self._open_txns[pid] = record.offset

    # -- reads -------------------------------------------------------------------

    def read(
        self,
        from_offset: int,
        max_records: int = 1_000_000,
        up_to_offset: Optional[int] = None,
    ) -> List[Record]:
        """Records with ``from_offset <= offset < up_to_offset`` (default:
        the high watermark), oldest first, including control markers. At
        most ``max_records`` are returned.

        Both bounds are located by bisect, so the work done (and the list
        returned) is proportional to the records returned, never to the
        size of the tail.

        Raises OffsetOutOfRangeError if ``from_offset`` precedes the log
        start (records were deleted) or exceeds the log end.
        """
        if from_offset < self.log_start_offset or from_offset > self._next_offset:
            raise OffsetOutOfRangeError(
                f"{self.name}: offset {from_offset} outside "
                f"[{self.log_start_offset}, {self._next_offset}]"
            )
        limit = self.high_watermark if up_to_offset is None else up_to_offset
        start = bisect.bisect_left(self._offsets, from_offset)
        end = bisect.bisect_left(self._offsets, limit, start)
        if max_records < end - start:
            end = start + max_records
        return self._records[start:end]

    def earliest_offset(self) -> int:
        return self.log_start_offset

    def truncate_to(self, offset: int) -> None:
        """Remove records with offsets >= ``offset`` (follower reconciliation)."""
        keep = bisect.bisect_left(self._offsets, offset)
        del self._records[keep:]
        del self._offsets[keep:]
        self._next_offset = offset if not self._offsets else self._offsets[-1] + 1
        self.high_watermark = min(self.high_watermark, self._next_offset)

    def reset_to(self, offset: int) -> None:
        """Discard everything and restart the log at ``offset`` (a follower
        resyncing against a leader whose older records were deleted)."""
        self._records.clear()
        self._offsets.clear()
        self._next_offset = offset
        self.log_start_offset = offset
        self.high_watermark = offset
        self._producers.clear()
        self._open_txns.clear()
        self._aborted.clear()
        self._aborted_index.clear()

    def delete_records_before(self, offset: int) -> int:
        """Advance the log start offset (repartition-topic purge).

        Returns how many records were physically removed.
        """
        offset = min(offset, self.high_watermark)
        if offset <= self.log_start_offset:
            return 0
        keep = bisect.bisect_left(self._offsets, offset)
        removed = keep
        del self._records[:keep]
        del self._offsets[:keep]
        self.log_start_offset = offset
        return removed

    # -- compaction hook ---------------------------------------------------------

    def replace_records(self, records: List[Record]) -> None:
        """Install a compacted record list (offsets must stay ascending)."""
        offsets = [r.offset for r in records]
        if offsets != sorted(offsets):
            raise ValueError("compacted records must keep ascending offsets")
        self._records = list(records)
        self._offsets = offsets

    # -- queries used by coordinators ---------------------------------------------

    def last_timestamp(self) -> float:
        if not self._records:
            return -1.0
        return self._records[-1].timestamp
