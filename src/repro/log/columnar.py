"""Columnar record batches: the zero-materialization hot path.

The scalar read path materializes one :class:`~repro.log.record.Record`
per event at every hop. This module defines the columnar ABI that lets the
hot path move *batches* instead:

* :class:`ColumnarBatch` — the read-side view. It wraps a contiguous slice
  of a partition log's backing record list plus a set of *validity runs*:
  half-open ``(start, end)`` index ranges covering exactly the records a
  scalar read-committed fetch would have returned (control markers and
  aborted-transaction records fall in the gaps between runs). Column
  accessors (``keys()``, ``values()``, ``timestamps()``, ...) are built
  lazily, once, as plain lists; scalar ``Record`` views stay available via
  ``records()`` / ``iter_records()`` for any consumer that is not
  batch-aware.

* :class:`ColumnarSlab` — the write-side twin. A producer accumulates
  pending sends as parallel columns and ships the slab straight to the
  partition log, which constructs the final offset-stamped records in a
  single pass — skipping the intermediate per-record ``Record`` the scalar
  path built only to tear apart again at append time.

The validity runs are the compressed form of a validity/abort bitmap: a
batch with no skipped records is one run, and masking an aborted span is a
run split, not a per-record scan. ``validity_bitmap()`` derives the
expanded bitmap when callers want the flat form.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.log.record import NO_PRODUCER_ID, NO_SEQUENCE, Record


class ColumnarBatch:
    """A read-side batch: a backing record slice plus validity runs.

    ``backing`` is a snapshot slice of the partition log (so later
    truncation or compaction cannot corrupt the view); ``runs`` are
    half-open ``(start, end)`` pairs into that slice, ascending and
    disjoint, covering the valid (visible, committed) records.

    Carries the fetch-result metadata (``next_offset``, watermarks) so the
    broker fetch path can hand the batch to the consumer without an extra
    wrapper, and the consumer stamps ``topic`` / ``partition`` before
    handing it to the app.
    """

    __slots__ = (
        "backing",
        "runs",
        "next_offset",
        "high_watermark",
        "last_stable_offset",
        "topic",
        "partition",
        "_keys",
        "_values",
        "_timestamps",
        "_offsets",
        "_headers",
        "_producer_ids",
        "_count",
    )

    def __init__(
        self,
        backing: List[Record],
        runs: List[Tuple[int, int]],
        next_offset: int = 0,
        high_watermark: int = 0,
        last_stable_offset: int = 0,
        topic: Optional[str] = None,
        partition: Optional[int] = None,
    ) -> None:
        self.backing = backing
        self.runs = runs
        self.next_offset = next_offset
        self.high_watermark = high_watermark
        self.last_stable_offset = last_stable_offset
        self.topic = topic
        self.partition = partition
        self._keys: Optional[List[Any]] = None
        self._values: Optional[List[Any]] = None
        self._timestamps: Optional[List[float]] = None
        self._offsets: Optional[List[int]] = None
        self._headers: Optional[List[Dict[str, Any]]] = None
        self._producer_ids: Optional[List[int]] = None
        self._count = sum(end - start for start, end in runs)

    # -- size -------------------------------------------------------------------

    @property
    def valid_count(self) -> int:
        """Number of valid (visible) records in the batch."""
        return self._count

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    # -- lazy columns -----------------------------------------------------------
    #
    # Each accessor walks the validity runs once and caches the resulting
    # plain list; slicing the backing list is a C-level copy, so per-column
    # cost is one comprehension, not one method call per record.

    def keys(self) -> List[Any]:
        if self._keys is None:
            backing = self.backing
            self._keys = [
                r.key for s, e in self.runs for r in backing[s:e]
            ]
        return self._keys

    def values(self) -> List[Any]:
        if self._values is None:
            backing = self.backing
            self._values = [
                r.value for s, e in self.runs for r in backing[s:e]
            ]
        return self._values

    def timestamps(self) -> List[float]:
        if self._timestamps is None:
            backing = self.backing
            self._timestamps = [
                r.timestamp for s, e in self.runs for r in backing[s:e]
            ]
        return self._timestamps

    def offsets(self) -> List[int]:
        if self._offsets is None:
            backing = self.backing
            self._offsets = [
                r.offset for s, e in self.runs for r in backing[s:e]
            ]
        return self._offsets

    def headers(self) -> List[Dict[str, Any]]:
        """Raw (shared, not copied) header dicts of the valid records."""
        if self._headers is None:
            backing = self.backing
            self._headers = [
                r.headers for s, e in self.runs for r in backing[s:e]
            ]
        return self._headers

    def producer_ids(self) -> List[int]:
        if self._producer_ids is None:
            backing = self.backing
            self._producer_ids = [
                r.producer_id for s, e in self.runs for r in backing[s:e]
            ]
        return self._producer_ids

    # -- validity bitmap --------------------------------------------------------

    def validity_bitmap(self) -> bytearray:
        """Expanded per-slot validity bitmap over the backing slice (1 =
        valid). The runs are the authoritative compressed form; this is
        derived for callers that want flat masking."""
        bitmap = bytearray(len(self.backing))
        for start, end in self.runs:
            for i in range(start, end):
                bitmap[i] = 1
        return bitmap

    # -- lazy scalar views ------------------------------------------------------

    def iter_records(self) -> Iterator[Record]:
        """Yield the valid records (materialize-on-demand scalar view)."""
        backing = self.backing
        for start, end in self.runs:
            for record in backing[start:end]:
                yield record

    def records(self) -> List[Record]:
        """The valid records as a list (scalar-fallback view)."""
        if len(self.runs) == 1:
            start, end = self.runs[0]
            return self.backing[start:end]
        backing = self.backing
        return [r for s, e in self.runs for r in backing[s:e]]

    def __repr__(self) -> str:
        return (
            f"ColumnarBatch(valid={self._count}, backing={len(self.backing)}, "
            f"runs={len(self.runs)}, next_offset={self.next_offset})"
        )


def empty_batch(
    next_offset: int, high_watermark: int = 0, last_stable_offset: int = 0
) -> ColumnarBatch:
    """A batch with no records (fetch past the end / empty window)."""
    return ColumnarBatch(
        [], [], next_offset, high_watermark, last_stable_offset
    )


class ColumnarSlab:
    """A write-side batch: parallel columns headed for one partition.

    Quacks like :class:`~repro.log.record.RecordBatch` for everything the
    append path needs (producer metadata, ``record_count``,
    ``last_sequence``), but the per-record ``Record`` objects are only
    constructed once, inside ``PartitionLog`` at offset-assignment time.
    """

    __slots__ = (
        "keys",
        "values",
        "timestamps",
        "headers",
        "producer_id",
        "producer_epoch",
        "base_sequence",
        "is_transactional",
    )

    def __init__(
        self,
        keys: List[Any],
        values: List[Any],
        timestamps: List[float],
        headers: List[Dict[str, Any]],
        producer_id: int = NO_PRODUCER_ID,
        producer_epoch: int = -1,
        base_sequence: int = NO_SEQUENCE,
        is_transactional: bool = False,
    ) -> None:
        if not keys:
            raise ValueError("a ColumnarSlab must contain at least one record")
        if not (len(keys) == len(values) == len(timestamps) == len(headers)):
            raise ValueError("ColumnarSlab columns must have equal lengths")
        self.keys = keys
        self.values = values
        self.timestamps = timestamps
        self.headers = headers
        self.producer_id = producer_id
        self.producer_epoch = producer_epoch
        self.base_sequence = base_sequence
        self.is_transactional = is_transactional

    @property
    def record_count(self) -> int:
        return len(self.keys)

    @property
    def last_sequence(self) -> int:
        if self.base_sequence == NO_SEQUENCE:
            return NO_SEQUENCE
        return self.base_sequence + len(self.keys) - 1

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:
        return (
            f"ColumnarSlab(n={len(self.keys)}, pid={self.producer_id}, "
            f"base_seq={self.base_sequence}, txn={self.is_transactional})"
        )
