"""Barrier records and aligned-barrier bookkeeping (Chandy-Lamport).

Checkpoint barriers are injected into the data streams as punctuations
(Section 2.1). An operator with several input channels must *align*: once
a barrier for checkpoint n arrives on one channel, records arriving on
that channel are buffered until the matching barrier has arrived on every
other channel; only then does the operator snapshot its state and forward
the barrier. The alignment time — gated by the slowest channel, hence by
backpressure — is exactly the cost the paper contrasts with Kafka
Streams' log-based commits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Barrier:
    """A checkpoint punctuation flowing through the dataflow."""

    checkpoint_id: int


class BarrierAligner:
    """Alignment state for one operator with N input channels.

    ``offer(channel, item)`` returns a list of items that may be processed
    now; barriers are absorbed and, when alignment completes,
    ``aligned_checkpoint`` is set and the blocked channels' buffers drain.
    """

    def __init__(self, channels: List[Any]) -> None:
        if not channels:
            raise ValueError("an aligner needs at least one channel")
        self._channels = list(channels)
        self._blocked: Dict[Any, Deque] = {}
        self._seen: Set[Any] = set()
        self._current_barrier: Optional[Barrier] = None
        self.aligned_checkpoint: Optional[int] = None
        self.alignment_buffered = 0     # metric: records delayed by alignment

    def offer(self, channel: Any, item: Any) -> List[Any]:
        """Feed one item from a channel; returns processable records."""
        if channel not in self._channels:
            raise ValueError(f"unknown channel: {channel}")
        if isinstance(item, Barrier):
            return self._offer_barrier(channel, item)
        if channel in self._seen:
            # This channel already delivered the current barrier: its
            # records belong to the *next* checkpoint epoch; buffer them.
            self._blocked.setdefault(channel, deque()).append(item)
            self.alignment_buffered += 1
            return []
        return [item]

    def _offer_barrier(self, channel: Any, barrier: Barrier) -> List[Any]:
        if self._current_barrier is None:
            self._current_barrier = barrier
        elif barrier.checkpoint_id != self._current_barrier.checkpoint_id:
            raise ValueError(
                f"overlapping checkpoints: {barrier.checkpoint_id} vs "
                f"{self._current_barrier.checkpoint_id}"
            )
        self._seen.add(channel)
        if len(self._seen) < len(self._channels):
            return []
        # Aligned: snapshot point reached. Release the buffered records —
        # they are processed after the snapshot.
        self.aligned_checkpoint = self._current_barrier.checkpoint_id
        released: List[Any] = []
        for ch in self._channels:
            released.extend(self._blocked.pop(ch, ()))
        self._seen.clear()
        self._current_barrier = None
        return released

    def take_aligned(self) -> Optional[int]:
        """Pop the checkpoint id if alignment just completed."""
        aligned, self.aligned_checkpoint = self.aligned_checkpoint, None
        return aligned


@dataclass
class CheckpointMetadata:
    """A completed checkpoint: enough to restore the engine."""

    checkpoint_id: int
    state_path: str
    source_offsets: Dict[Any, int] = field(default_factory=dict)
    completed_at_ms: float = 0.0
