"""Checkpoint-based baseline engine (the paper's Flink comparison).

A minimal dataflow engine with aligned-barrier (Chandy-Lamport style)
checkpoints to a simulated object store and a two-phase-commit Kafka sink,
reproducing the mechanism the paper evaluates Kafka Streams against in
Figure 5.b.
"""

from repro.barriers.object_store import ObjectStore
from repro.barriers.checkpoint import Barrier, BarrierAligner
from repro.barriers.engine import BarrierEngine

__all__ = ["ObjectStore", "Barrier", "BarrierAligner", "BarrierEngine"]
