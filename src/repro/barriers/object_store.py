"""A simulated S3-like object store.

Checkpoint state files are PUT here. The defining property for Figure 5.b
is the *fixed per-file latency*: uploading a file costs tens of
milliseconds regardless of how few keys changed, so frequent checkpoints
pay a large fixed cost — "Flink's checkpointing is per-file based and
hence would take longer time when only a small number of keys are updated
within the interval" (Section 4.3).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sim.clock import SimClock


class ObjectStore:
    """Path -> object map with virtual-time PUT/GET latency."""

    def __init__(
        self,
        clock: SimClock,
        put_latency_ms: float = 25.0,
        get_latency_ms: float = 10.0,
        per_kb_ms: float = 0.05,
        charge_latency: bool = True,
    ) -> None:
        self.clock = clock
        self.put_latency_ms = put_latency_ms
        self.get_latency_ms = get_latency_ms
        self.per_kb_ms = per_kb_ms
        self.charge_latency = charge_latency
        self._objects: Dict[str, Any] = {}
        self.puts = 0
        self.gets = 0
        self.put_time_ms = 0.0

    def _charge(self, base_ms: float, size_kb: float) -> float:
        cost = base_ms + self.per_kb_ms * size_kb
        if self.charge_latency:
            self.clock.advance(cost)
        return cost

    def put(self, path: str, obj: Any, size_kb: float = 4.0) -> None:
        """Upload an object (one state file)."""
        self.puts += 1
        self.put_time_ms += self._charge(self.put_latency_ms, size_kb)
        self._objects[path] = obj

    def get(self, path: str) -> Any:
        self.gets += 1
        self._charge(self.get_latency_ms, 4.0)
        if path not in self._objects:
            raise KeyError(path)
        return self._objects[path]

    def exists(self, path: str) -> bool:
        return path in self._objects

    def list_paths(self, prefix: str = "") -> list:
        return sorted(p for p in self._objects if p.startswith(prefix))

    def delete(self, path: str) -> None:
        self._objects.pop(path, None)
