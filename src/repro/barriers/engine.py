"""The checkpoint-based streaming engine (Flink-like baseline).

One job: Kafka source -> keyed stateful operator -> transactional Kafka
sink. Exactly-once is achieved the way the paper describes for Flink
(Section 4.3):

* state is snapshotted on aligned barriers every ``checkpoint_interval_ms``
  into an object store, **incrementally but per-file** — each checkpoint
  uploads ``max(1, ceil(dirty_keys / keys_per_file))`` files, each paying
  the store's fixed PUT latency;
* the sink buffers its output in a Kafka transaction that can only commit
  once the checkpoint completes, so end-to-end latency is gated on
  checkpoint duration + interval;
* the source's offsets are part of the checkpoint; recovery rolls the
  whole job back to the last completed checkpoint.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.broker.cluster import Cluster
from repro.broker.partition import TopicPartition
from repro.barriers.checkpoint import CheckpointMetadata
from repro.barriers.object_store import ObjectStore
from repro.clients.consumer import Consumer
from repro.clients.producer import Producer
from repro.config import ConsumerConfig, ProducerConfig, READ_UNCOMMITTED
from repro.sim.scheduler import Driver
from repro.util import partition_for

# Modelled CPU cost per record (same as the streams runtime, for fairness).
PROCESS_COST_MS_PER_RECORD = 0.008

# reduce_fn(key, value, state_value_or_None) -> new_state_value
ReduceFn = Callable[[Any, Any, Optional[Any]], Any]


class BarrierEngine:
    """A single-job checkpointing engine over the simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        source_topic: str,
        sink_topic: str,
        reduce_fn: ReduceFn,
        object_store: Optional[ObjectStore] = None,
        checkpoint_interval_ms: float = 1000.0,
        keys_per_file: int = 64,
        min_files: int = 1,
        alignment_delay_ms: float = 1.0,
        job_name: str = "barrier-job",
    ) -> None:
        if checkpoint_interval_ms <= 0:
            raise ValueError("checkpoint_interval_ms must be > 0")
        self.cluster = cluster
        self.clock = cluster.clock
        self.source_topic = source_topic
        self.sink_topic = sink_topic
        self.reduce_fn = reduce_fn
        self.store = object_store or ObjectStore(cluster.clock)
        self.checkpoint_interval_ms = checkpoint_interval_ms
        self.keys_per_file = keys_per_file
        # Every checkpoint uploads at least one file per stateful operator
        # instance; a parallelism-4 job writes 4 files even for one key.
        self.min_files = max(1, min_files)
        self.alignment_delay_ms = alignment_delay_ms
        self.job_name = job_name

        self.consumer = Consumer(
            cluster,
            ConsumerConfig(
                client_id=f"{job_name}-source",
                isolation_level=READ_UNCOMMITTED,
                auto_offset_reset="earliest",
            ),
        )
        self.consumer.assign(cluster.partitions_for(source_topic))
        self.producer = Producer(
            cluster,
            ProducerConfig(
                client_id=f"{job_name}-sink",
                transactional_id=f"{job_name}-sink-txn",
            ),
        )
        self.producer.init_transactions()

        self.state: Dict[Any, Any] = {}
        self._dirty: set = set()
        # False between crash() and recover(): a crashed job's process is
        # gone, so step()/flush() are no-ops until a supervisor (e.g. the
        # chaos scenario harness) restarts it.
        self.alive = True
        self._checkpoint_seq = 0
        self._next_checkpoint_at = self.clock.now + checkpoint_interval_ms
        self.completed_checkpoints: List[CheckpointMetadata] = []
        self.records_processed = 0
        self.checkpoints_completed = 0
        self.checkpoint_time_ms = 0.0
        # Checkpoint deadline as a wake timer on the shared clock: the
        # callback only flags; the checkpoint runs at the safe point in
        # step(). Idle drivers jump interval-to-interval instead of
        # creeping 1 ms at a time.
        self._checkpoint_due = False
        self._checkpoint_timer = None
        self._arm_checkpoint_timer()
        self._driver = Driver(self.clock)
        self._driver.register(self)

    # -- processing -----------------------------------------------------------------

    def step(self) -> int:
        """One cycle: poll, process, output inside the open transaction,
        checkpoint when the interval elapses."""
        if not self.alive:
            return 0
        records = self.consumer.poll()
        if records and not self.producer._in_transaction:
            self.producer.begin_transaction()
        for record in records:
            new_state = self.reduce_fn(record.key, record.value, self.state.get(record.key))
            self.state[record.key] = new_state
            self._dirty.add(record.key)
            meta = self.cluster.topic_metadata(self.sink_topic)
            self.producer.send(
                self.sink_topic,
                key=record.key,
                value=new_state,
                timestamp=record.timestamp,
                partition=partition_for(record.key, meta.num_partitions),
                headers=record.headers,
            )
        if records:
            self.clock.advance(len(records) * PROCESS_COST_MS_PER_RECORD)
            self.records_processed += len(records)
        if self._checkpoint_due or self.clock.now >= self._next_checkpoint_at:
            self.checkpoint()
        return len(records)

    # Actor protocol (repro.sim.scheduler.Driver), so the checkpoint
    # baseline can share a driver — and a deterministic timeline — with
    # Streams apps and ksql queries on the same cluster.
    def poll(self) -> int:
        return self.step()

    def flush(self) -> None:
        """End-of-run commit: checkpoint only if output or state is
        pending — the transactional sink's data is invisible until the
        checkpoint's commit, but an empty checkpoint would just burn
        object-store PUTs."""
        if not self.alive:
            return
        if self._dirty or self.producer._in_transaction:
            self.checkpoint()

    @property
    def driver(self) -> Driver:
        return self._driver

    def run_for(self, duration_ms: float) -> int:
        """Drive the job for ``duration_ms`` of virtual time, jumping idle
        gaps to the next checkpoint deadline."""
        return self._driver.run_for(duration_ms)

    def _arm_checkpoint_timer(self) -> None:
        if self._checkpoint_timer is not None:
            self._checkpoint_timer.cancel()
        self._checkpoint_timer = self.clock.schedule(
            max(0.0, self._next_checkpoint_at - self.clock.now),
            self._on_checkpoint_timer,
        )

    def _on_checkpoint_timer(self) -> None:
        self._checkpoint_timer = None
        self._checkpoint_due = True

    # -- checkpointing --------------------------------------------------------------------

    def checkpoint(self) -> CheckpointMetadata:
        """Aligned-barrier checkpoint + two-phase transactional commit."""
        started = self.clock.now
        self._checkpoint_seq += 1
        checkpoint_id = self._checkpoint_seq

        # Barrier alignment: the barrier flows through the (single-operator)
        # pipeline; with backpressure this grows, here it is a small fixed
        # drain cost.
        self.clock.advance(self.alignment_delay_ms)

        # Incremental, per-file state upload: even one dirty key costs a
        # full file PUT — the fixed cost the paper highlights.
        file_count = max(self.min_files, math.ceil(len(self._dirty) / self.keys_per_file))
        base = f"{self.job_name}/chk-{checkpoint_id}"
        for index in range(file_count):
            self.store.put(
                f"{base}/state-{index}.sst",
                None,
                size_kb=4.0 + 0.1 * min(len(self._dirty), self.keys_per_file),
            )
        # The full restorable snapshot (metadata object; upload cost is the
        # files above).
        self.store._objects[f"{base}/snapshot"] = dict(self.state)

        offsets = {
            tp: self.consumer.position(tp)
            for tp in self.consumer.assignment()
        }
        metadata = CheckpointMetadata(
            checkpoint_id=checkpoint_id,
            state_path=f"{base}/snapshot",
            source_offsets=offsets,
            completed_at_ms=self.clock.now,
        )

        # Phase two: the sink's transaction commits only after the
        # checkpoint is complete — this gates output visibility.
        if self.producer._in_transaction:
            self.producer.commit_transaction()
        self.completed_checkpoints.append(metadata)
        self.checkpoints_completed += 1
        self._dirty.clear()
        self._next_checkpoint_at = self.clock.now + self.checkpoint_interval_ms
        self._checkpoint_due = False
        self._arm_checkpoint_timer()
        self.checkpoint_time_ms += self.clock.now - started
        return metadata

    # -- failure & recovery -----------------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state; the open transaction dangles (it will
        be aborted on restart registration or by timeout)."""
        self.state = {}
        self._dirty = set()
        self.alive = False

    def recover(self) -> Optional[int]:
        """Restore from the last completed checkpoint: reload state from
        the object store, rewind the source, re-register the sink's
        transactional id (fencing/aborting the dangling transaction)."""
        rec = self.cluster.recovery
        if rec is not None:
            # The supervisor noticing the dead job and handing it back its
            # slot is both the detection and the realignment for a
            # single-job engine.
            rec.note_detection("barrier_supervisor", job=self.job_name)
            rec.note_realign("barrier_recover", job=self.job_name)
        self.producer.init_transactions()
        self.alive = True
        if not self.completed_checkpoints:
            self.state = {}
            self._dirty = set()
            for tp in self.consumer.assignment():
                self.consumer.seek_to_beginning(tp)
            if rec is not None:
                rec.note_restore("barrier", records=0, complete=True,
                                 job=self.job_name)
            return None
        latest = self.completed_checkpoints[-1]
        self.state = dict(self.store.get(latest.state_path))
        self._dirty = set()
        for tp, offset in latest.source_offsets.items():
            self.consumer.seek(tp, offset)
        self._next_checkpoint_at = self.clock.now + self.checkpoint_interval_ms
        self._checkpoint_due = False
        self._arm_checkpoint_timer()
        if rec is not None:
            rec.note_restore("barrier", records=len(self.state), complete=True,
                             job=self.job_name)
        return latest.checkpoint_id
