"""MirrorLink: MirrorMaker-2-style replication between two clusters.

A :class:`MirrorLink` is a driver actor living in the *target* region. Each
``poll()`` it

* fetches the next **read-committed** records from the source partitions
  through the inter-cluster link (aborted or still-open transactional data
  never crosses a link — the cross-cluster extension of Section 4.2.3's
  isolation contract);
* re-appends them, keys/values/timestamps/headers intact, to the same
  topic-partitions on the target cluster with a local idempotent producer;
* records the resulting ``(source, target)`` offset pairs in its
  :class:`~repro.mirror.translation.OffsetTranslator` and persists a sparse
  checkpoint stream to a compacted ``__mirror.<name>.checkpoints`` topic on
  the target, so a restarted link translates previously-synced offsets
  exactly;
* refreshes the per-partition replication-lag and translation-gap gauges
  (``mirror.lag`` / ``mirror.translation_gap`` in the target registry, the
  series the health SLOs watch);
* periodically syncs configured consumer groups' committed offsets:
  translated offsets are published to the target group coordinator only
  for positions the mirror has fully caught up to (exact translation), so
  a failed-over application resumes at-or-before its source position and
  never skips acknowledged input.

The mirror's own source position is committed under the ``__mirror-<name>``
group on the *source* cluster after every appended batch, which is what
lets a restarted link resume without duplicating target records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.broker.fetch import fetch
from repro.broker.partition import TopicPartition
from repro.clients.consumer import Consumer
from repro.clients.producer import Producer
from repro.config import READ_COMMITTED, READ_UNCOMMITTED, ConsumerConfig, ProducerConfig
from repro.errors import RetriableError
from repro.mirror.netlink import InterClusterLink
from repro.mirror.translation import OffsetTranslator
from repro.obs.stages import FETCHED_AT_HEADER

#: Headers the consumer stamps onto fetched records that describe *that*
#: fetch, not the record — stripped before re-producing across a link.
_FETCH_HEADERS = ("__topic", "__partition", FETCHED_AT_HEADER)


class MirrorLink:
    """Replicate ``topics`` from ``link.source`` to ``link.target``."""

    def __init__(
        self,
        link: InterClusterLink,
        topics: Iterable[str],
        sync_groups: Iterable[str] = (),
        name: Optional[str] = None,
        max_poll_records: int = 500,
        group_sync_interval_ms: float = 100.0,
        source=None,
        target=None,
    ) -> None:
        self.link = link
        # The link is an undirected path; the mirror's direction is its
        # own (defaults to the link's construction order).
        self.source = link.source if source is None else source
        self.target = link.target if target is None else target
        if {id(self.source), id(self.target)} != {
            id(link.source), id(link.target)
        }:
            raise ValueError(
                f"mirror endpoints must be the endpoints of link {link.name}"
            )
        self.topics = tuple(sorted(topics))
        if not self.topics:
            raise ValueError("a mirror link needs at least one topic")
        self.sync_groups = tuple(sorted(sync_groups))
        self.name = name or (
            f"mirror-{getattr(self.source, 'name', 'source')}-"
            f"{getattr(self.target, 'name', 'target')}"
        )
        self.group_sync_interval_ms = group_sync_interval_ms
        self.translator = OffsetTranslator()
        self.records_mirrored = 0
        self.group_syncs = 0
        self._last_group_sync_ms = float("-inf")
        self._checkpoint_topic = f"__mirror.{self.name}.checkpoints"

        self._partitions: List[TopicPartition] = []
        for topic in self.topics:
            meta = self.source.topic_metadata(topic)
            if not self.target.has_topic(topic):
                self.target.create_topic(
                    topic, meta.num_partitions, compacted=meta.compacted
                )
            self._partitions.extend(
                TopicPartition(topic, p) for p in range(meta.num_partitions)
            )
        if not self.target.has_topic(self._checkpoint_topic):
            self.target.create_topic(
                self._checkpoint_topic, 1, compacted=True, internal=True
            )
        self._replay_checkpoints()

        # Remote read-committed source consumer: reaches the source
        # cluster's brokers only through the inter-cluster link's network
        # proxy. Position commits ride the same path to the source group
        # coordinator under this mirror's own group id.
        self._consumer = Consumer(
            self.source,
            ConsumerConfig(
                client_id=self.name,
                group_id=f"__{self.name}",
                isolation_level=READ_COMMITTED,
                auto_offset_reset="earliest",
                max_poll_records=max_poll_records,
                # Bounded WAN retries: a link cut mid-commit should stall
                # this one cycle, not spin the clock through a 60s budget.
                default_api_timeout_ms=500.0,
            ),
            network=link.network_to(self.source),
        )
        self._consumer.assign(list(self._partitions))
        self._resume_from_committed()

        # Target-local idempotent producer: the sole writer of the
        # mirrored partitions, which is what keeps their offsets dense.
        self._producer = Producer(
            self.target, ProducerConfig(client_id=f"{self.name}-producer")
        )

        self._lag_gauges: Dict[TopicPartition, object] = {}
        self._gap_gauges: Dict[TopicPartition, object] = {}

    # -- restart paths ------------------------------------------------------

    def _replay_checkpoints(self) -> None:
        """Rebuild the translator's exact pairs from the checkpoint topic
        (empty on a fresh link; the whole point after a restart)."""
        tp = TopicPartition(self._checkpoint_topic, 0)
        log = self.target.partition_state(tp).leader_log()
        result = fetch(
            log, log.log_start_offset, max_records=2**31,
            isolation_level=READ_UNCOMMITTED,
        )
        for record in result.records:
            _kind, _group, topic, partition = record.key
            src, dst = record.value
            self.translator.record_checkpoint(
                TopicPartition(topic, partition), src, dst
            )

    def _resume_from_committed(self) -> None:
        for tp in self._partitions:
            committed = self._consumer.committed(tp)
            if committed is not None:
                self._consumer.seek(tp, committed)

    # -- actor protocol (repro.sim.scheduler.Driver) ------------------------

    def poll(self) -> int:
        if not self.link.up:
            self._update_gauges()
            return 0
        try:
            records = self._consumer.poll()
        except RetriableError:
            self._update_gauges()
            return 0
        mirrored = self._mirror(records) if records else 0
        now = self.source.clock.now
        if now - self._last_group_sync_ms >= self.group_sync_interval_ms:
            self._last_group_sync_ms = now
            try:
                self.sync_group_offsets()
            except RetriableError:
                pass  # link cut mid-sync: retried next interval
        self._update_gauges()
        return mirrored

    def flush(self) -> None:
        """Idle housekeeping: push committed positions and group syncs out
        even when no new records arrived this cycle."""
        if not self.link.up:
            return
        try:
            self.sync_group_offsets()
        except RetriableError:
            pass

    # -- replication --------------------------------------------------------

    def _mirror(self, records) -> int:
        by_tp: Dict[TopicPartition, List] = {}
        for record in records:
            tp = TopicPartition(
                record.headers["__topic"], record.headers["__partition"]
            )
            by_tp.setdefault(tp, []).append(record)
        bases: Dict[TopicPartition, int] = {
            tp: self.target.end_offset(tp, READ_UNCOMMITTED) for tp in by_tp
        }
        for tp, group in sorted(by_tp.items()):
            for record in group:
                headers = {
                    k: v
                    for k, v in record.headers.items()
                    if k not in _FETCH_HEADERS
                }
                self._producer.send(
                    tp.topic,
                    key=record.key,
                    value=record.value,
                    timestamp=record.timestamp,
                    headers=headers,
                    partition=tp.partition,
                )
        self._producer.flush()
        mirrored = 0
        for tp, group in sorted(by_tp.items()):
            src_offsets = [r.offset for r in group]
            self.translator.record_batch(tp, src_offsets, bases[tp])
            mirrored += len(group)
            # Every appended batch ends at an exact sync point: committed
            # offset src+1 on the source == dst+1 on the target.
            last_src, last_dst = src_offsets[-1], bases[tp] + len(group) - 1
            self._checkpoint("sync", "", tp, last_src + 1, last_dst + 1)
        self.records_mirrored += mirrored
        # Persist the mirror's own position so a restarted link resumes
        # instead of re-copying (charged as one WAN round trip). A commit
        # lost to a link cut only widens the restart re-read window; the
        # in-memory position keeps this link exact.
        try:
            self._consumer.commit_sync(
                {tp: self._consumer.position(tp) for tp in by_tp}
            )
        except RetriableError:
            pass
        return mirrored

    def _checkpoint(
        self, kind: str, group: str, tp: TopicPartition, src: int, dst: int
    ) -> None:
        self.translator.record_checkpoint(tp, src, dst)
        self._producer.send(
            self._checkpoint_topic,
            key=(kind, group, tp.topic, tp.partition),
            value=(src, dst),
            partition=0,
        )

    # -- consumer-group offset sync -----------------------------------------

    def sync_group_offsets(self) -> Dict[str, Dict[TopicPartition, int]]:
        """Translate and publish configured groups' committed offsets.

        Coherence rule: a partition's offset is synced only when the
        mirror's own position has passed it — every record below the
        offset already exists on the target, so the translation is exact
        and the failed-over group can never miss acknowledged input. A
        still-lagging partition's sync is simply deferred to a later pass.
        Groups with live members on the target (an application already
        running there) are skipped — their offsets are theirs to own.
        """
        published: Dict[str, Dict[TopicPartition, int]] = {}
        for group in self.sync_groups:
            if self.target.group_coordinator.assignment_snapshot(group):
                continue
            committed = self._fetch_source_committed(group)
            offsets: Dict[TopicPartition, int] = {}
            for tp, src_offset in sorted(committed.items()):
                if src_offset is None:
                    continue
                if src_offset > self._consumer.position(tp):
                    continue  # not yet mirrored: defer, don't approximate
                dst_offset = self.translator.to_target(tp, src_offset)
                self._checkpoint("group", group, tp, src_offset, dst_offset)
                offsets[tp] = dst_offset
            if not offsets:
                continue
            self._producer.flush()
            self.target.group_coordinator.commit_offsets(group, offsets)
            self.group_syncs += 1
            published[group] = offsets
        return published

    def _fetch_source_committed(
        self, group: str
    ) -> Dict[TopicPartition, Optional[int]]:
        """The group's committed offsets on the source, charged as one
        WAN coordinator round trip."""
        coordinator = self.source.group_coordinator
        offsets_tp = coordinator.offsets_partition(group)
        network = self._consumer._network
        return network.call(
            "offset_fetch",
            self.source.leader_of(offsets_tp),
            lambda: coordinator.fetch_committed(group, self._partitions),
            base_cost_ms=network.coordinator_cost(),
            src=self.name,
        )

    # -- observability ------------------------------------------------------

    def lag(self, tp: TopicPartition) -> int:
        """Source records not yet mirrored (read-committed end - position)."""
        end = self.source.end_offset(tp, READ_COMMITTED)
        return max(0, end - self._consumer.position(tp))

    def lags(self) -> Dict[TopicPartition, int]:
        return {tp: self.lag(tp) for tp in self._partitions}

    def drained(self) -> bool:
        """True when every mirrored partition is fully caught up — the
        gate a *planned* failover waits on before moving the application."""
        return all(self.lag(tp) == 0 for tp in self._partitions)

    def _update_gauges(self) -> None:
        metrics = self.target.metrics
        for tp in self._partitions:
            gauge = self._lag_gauges.get(tp)
            if gauge is None:
                gauge = metrics.gauge(
                    "mirror.lag",
                    link=self.name, topic=tp.topic, partition=tp.partition,
                )
                self._lag_gauges[tp] = gauge
            gauge.set(self.lag(tp))
            gap = self._gap_gauges.get(tp)
            if gap is None:
                gap = metrics.gauge(
                    "mirror.translation_gap",
                    link=self.name, topic=tp.topic, partition=tp.partition,
                )
                self._gap_gauges[tp] = gap
            gap.set(
                self.translator.translation_gap(
                    tp, self._consumer.position(tp)
                )
            )

    def close(self) -> None:
        self._producer.close()
        self._consumer.close()
