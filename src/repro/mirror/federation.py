"""Federation: several named clusters on one clock, driver, and tracer.

The single-cluster assumption is broken here and only here: a
:class:`Federation` owns one :class:`~repro.sim.clock.SimClock`, one
:class:`~repro.obs.tracer.Tracer`, and one
:class:`~repro.sim.scheduler.Driver`, and constructs each region's
:class:`~repro.broker.cluster.Cluster` against them. Each region keeps its
own network (intra-region RPC costs and faults stay regional); the only
cross-region paths are explicit :class:`~repro.mirror.netlink.
InterClusterLink`s created by :meth:`connect` — which is what makes link
partitions a *complete* network partition of everything riding the link.

Apps, mirror links, ordering merges, and chaos controllers all register on
the federation's driver, so one ``run_for``/``run_until_idle`` co-schedules
every region at the same safe points — same determinism contract as the
single-cluster Driver.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.broker.cluster import Cluster
from repro.config import BrokerConfig
from repro.mirror.link import MirrorLink
from repro.mirror.netlink import InterClusterLink
from repro.obs.tracer import Tracer
from repro.sim.clock import SimClock
from repro.sim.scheduler import Driver


class Federation:
    """A topology of named clusters sharing clock/driver/tracer."""

    def __init__(
        self,
        regions: Tuple[str, ...] = ("east", "west"),
        num_brokers: int = 3,
        config: Optional[BrokerConfig] = None,
        seed: int = 17,
        charge_latency: bool = True,
    ) -> None:
        if len(regions) < 2:
            raise ValueError("a federation needs at least two regions")
        if len(set(regions)) != len(regions):
            raise ValueError(f"duplicate region names: {sorted(regions)}")
        self.clock = SimClock()
        self.tracer = Tracer(self.clock)
        self.clusters: Dict[str, Cluster] = {}
        for index, region in enumerate(regions):
            cluster = Cluster(
                num_brokers,
                config=config,
                clock=self.clock,
                # Decorrelated per-region jitter/placement streams.
                seed=seed + 101 * index,
                tracer=self.tracer,
                name=region,
            )
            cluster.network.charge_latency = charge_latency
            self.clusters[region] = cluster
        self.driver = Driver(self.clock, tracer=self.tracer)
        self._links: Dict[frozenset, InterClusterLink] = {}
        self.mirrors: List[MirrorLink] = []

    # -- topology -----------------------------------------------------------

    @property
    def regions(self) -> Tuple[str, ...]:
        return tuple(self.clusters)

    def cluster(self, region: str) -> Cluster:
        try:
            return self.clusters[region]
        except KeyError:
            raise ValueError(
                f"unknown region {region!r} (regions: {sorted(self.clusters)})"
            ) from None

    def connect(
        self, a: str, b: str, latency_ms: float = 30.0
    ) -> InterClusterLink:
        """Create (or return) the wide-area path between two regions."""
        key = frozenset((a, b))
        if len(key) != 2:
            raise ValueError("a link needs two distinct regions")
        existing = self._links.get(key)
        if existing is not None:
            return existing
        link = InterClusterLink(
            self.cluster(a), self.cluster(b), latency_ms=latency_ms,
            name=f"{a}~{b}",
        )
        self._links[key] = link
        return link

    def link(self, a: str, b: str) -> InterClusterLink:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise ValueError(f"regions {a!r} and {b!r} are not connected") from None

    def links(self) -> List[InterClusterLink]:
        return [self._links[key] for key in sorted(self._links, key=sorted)]

    # -- replication --------------------------------------------------------

    def add_mirror(
        self,
        source: str,
        target: str,
        topics: Iterable[str],
        sync_groups: Iterable[str] = (),
        latency_ms: float = 30.0,
        **kwargs,
    ) -> MirrorLink:
        """Wire a directed mirror over the (auto-created) region link and
        register it on the federation driver."""
        link = self.connect(source, target, latency_ms=latency_ms)
        # The path is undirected (one shared up/down state per region
        # pair); the mirror's direction is its own.
        mirror = MirrorLink(
            link,
            topics,
            sync_groups=sync_groups,
            source=self.cluster(source),
            target=self.cluster(target),
            **kwargs,
        )
        self.driver.register(mirror)
        self.mirrors.append(mirror)
        return mirror

    # -- driving ------------------------------------------------------------

    def register(self, actor) -> None:
        self.driver.register(actor)

    def unregister(self, actor) -> None:
        self.driver.unregister(actor)

    def run_for(self, duration_ms: float) -> int:
        return self.driver.run_for(duration_ms)

    def run_until_idle(self, max_cycles: int = 10_000) -> int:
        return self.driver.run_until_idle(max_cycles=max_cycles)
