"""Offset translation between a source partition and its mirrored copy.

A mirror link re-appends a partition's read-committed records onto the
target cluster, so target offsets are dense where source offsets have
gaps (transaction markers, aborted spans). Committed *consumer* offsets
therefore cannot be copied across a link verbatim — they must be
translated through the mapping the link itself observed while mirroring.

The translator keeps two structures per (topic, partition):

* a **fine map** — one ``(source_offset, target_offset)`` pair per
  mirrored record, in source-offset order. Within the mirrored range,
  :meth:`to_target` is exact up to marker gaps: a committed offset
  pointing just past a control marker translates to the same target
  offset as one pointing just past the preceding data record, which *is*
  the semantically identical position.
* a sparse **checkpoint table** of exact ``(source, target)`` committed-
  offset pairs, written whenever a consumer group's offsets are synced at
  a moment the mirror had fully caught up to them. Checkpoints are also
  persisted to a compacted checkpoint topic on the target cluster, so a
  restarted mirror (whose fine map starts empty) still translates every
  previously-synced offset exactly and never *overshoots* any offset it
  translated before the restart (at-least-once across failovers).

Between checkpoints, outside the fine map, translation is downward-
conservative — MirrorMaker 2 semantics: failover re-reads at most the
untranslated gap, it never skips records.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from repro.broker.partition import TopicPartition


class _PartitionMap:
    """Fine map + checkpoints for one mirrored partition."""

    __slots__ = ("src", "dst", "ckpt_src", "ckpt_dst")

    def __init__(self) -> None:
        self.src: List[int] = []    # mirrored source offsets, ascending
        self.dst: List[int] = []    # the records' target offsets, ascending
        self.ckpt_src: List[int] = []
        self.ckpt_dst: List[int] = []


class OffsetTranslator:
    """Per-link source↔target offset maps (see module docstring)."""

    def __init__(self) -> None:
        self._maps: Dict[TopicPartition, _PartitionMap] = {}

    def _map(self, tp: TopicPartition) -> _PartitionMap:
        m = self._maps.get(tp)
        if m is None:
            m = self._maps[tp] = _PartitionMap()
        return m

    # -- recording ----------------------------------------------------------

    def record_batch(
        self, tp: TopicPartition, src_offsets: List[int], dst_base: int
    ) -> None:
        """One mirrored batch: source records ``src_offsets`` (ascending)
        landed at contiguous target offsets starting at ``dst_base`` —
        the mirror is the partition's only writer on the target."""
        m = self._map(tp)
        if m.src and src_offsets and src_offsets[0] <= m.src[-1]:
            raise ValueError(
                f"{tp}: mirrored source offsets must be strictly increasing "
                f"({src_offsets[0]} after {m.src[-1]})"
            )
        m.src.extend(src_offsets)
        m.dst.extend(range(dst_base, dst_base + len(src_offsets)))

    def record_checkpoint(
        self, tp: TopicPartition, src_offset: int, dst_offset: int
    ) -> None:
        """An exact committed-offset pair (mirror had fully caught up when
        the group's offset was synced). Idempotent; pairs may arrive out
        of order on restart-replay."""
        m = self._map(tp)
        i = bisect_left(m.ckpt_src, src_offset)
        if i < len(m.ckpt_src) and m.ckpt_src[i] == src_offset:
            return
        m.ckpt_src.insert(i, src_offset)
        m.ckpt_dst.insert(i, dst_offset)

    # -- translation --------------------------------------------------------

    def to_target(self, tp: TopicPartition, src_offset: int) -> int:
        """Translate a source committed offset to the target partition.

        Exact at checkpoints and within the fine map (up to marker gaps);
        otherwise the largest known translation not above ``src_offset``
        (downward-conservative: never skips unseen records)."""
        m = self._maps.get(tp)
        if m is None:
            return 0
        # Exact checkpoint hit first — survives restarts.
        i = bisect_left(m.ckpt_src, src_offset)
        if i < len(m.ckpt_src) and m.ckpt_src[i] == src_offset:
            return m.ckpt_dst[i]
        # Fine map: count of mirrored records strictly below src_offset
        # gives the dense target position.
        j = bisect_left(m.src, src_offset)
        fine: Optional[int] = None
        if j > 0:
            fine = m.dst[j - 1] + 1
        elif m.src:
            # Below everything mirrored: the mirrored range's base.
            fine = m.dst[0]
        # Largest checkpoint at or below src_offset, as the restart-safe
        # floor when the fine map is empty or behind.
        coarse: Optional[int] = m.ckpt_dst[i - 1] if i > 0 else None
        if fine is None and coarse is None:
            return 0
        if fine is None:
            return coarse  # type: ignore[return-value]
        if coarse is None:
            return fine
        return max(fine, coarse)

    def to_source(self, tp: TopicPartition, dst_offset: int) -> int:
        """Translate a target committed offset back to the source.

        The inverse direction a fail*back* needs. Exact at checkpoints;
        within the fine map returns one past the last source record whose
        copy lies below ``dst_offset``; conservative otherwise."""
        m = self._maps.get(tp)
        if m is None:
            return 0
        i = bisect_left(m.ckpt_dst, dst_offset)
        if i < len(m.ckpt_dst) and m.ckpt_dst[i] == dst_offset:
            return m.ckpt_src[i]
        j = bisect_left(m.dst, dst_offset)
        fine: Optional[int] = None
        if j > 0:
            fine = m.src[j - 1] + 1
        elif m.src:
            fine = m.src[0]
        coarse: Optional[int] = m.ckpt_src[i - 1] if i > 0 else None
        if fine is None and coarse is None:
            return 0
        if fine is None:
            return coarse  # type: ignore[return-value]
        if coarse is None:
            return fine
        return max(fine, coarse)

    # -- introspection ------------------------------------------------------

    def partitions(self) -> List[TopicPartition]:
        return sorted(self._maps)

    def mirrored_count(self, tp: TopicPartition) -> int:
        m = self._maps.get(tp)
        return 0 if m is None else len(m.src)

    def last_mirrored(self, tp: TopicPartition) -> Optional[Tuple[int, int]]:
        """The newest (source, target) fine pair, or None."""
        m = self._maps.get(tp)
        if m is None or not m.src:
            return None
        return m.src[-1], m.dst[-1]

    def checkpoints(self, tp: TopicPartition) -> List[Tuple[int, int]]:
        m = self._maps.get(tp)
        if m is None:
            return []
        return list(zip(m.ckpt_src, m.ckpt_dst))

    def translation_gap(self, tp: TopicPartition, src_position: int) -> int:
        """Source records consumed past the newest exact sync point — how
        stale a failover started *right now* would be, in records."""
        m = self._maps.get(tp)
        if m is None:
            return max(0, src_position)
        floor = 0
        if m.ckpt_src:
            i = bisect_right(m.ckpt_src, src_position)
            if i > 0:
                floor = m.ckpt_src[i - 1]
        return max(0, src_position - floor)
