"""Inter-cluster links: latency, partitions, and the remote-network proxy.

A :class:`InterClusterLink` models one directed wide-area path between two
regions' clusters: a per-round-trip latency on top of whatever the remote
cluster's own network charges, and an up/down state that chaos can flip
(``mirror_link_partition`` / ``mirror_link_flap`` faults).

:class:`LinkedNetwork` is the only sanctioned way for a client living in
one region to talk to another region's brokers: it duck-types the
:class:`~repro.sim.network.Network` surface the clients already use, so a
plain :class:`~repro.clients.consumer.Consumer` becomes a *remote* consumer
by construction (``Consumer(remote_cluster, cfg, network=link.network_to(
remote_cluster))``) — no client code knows about regions. While the link
is partitioned every call raises :class:`~repro.errors.RequestTimeoutError`
(retriable), which is exactly how a mirror stalls and its replication lag
grows instead of anything breaking.

Everything outside :mod:`repro.mirror` must route cross-cluster traffic
through this module (CI lints for direct references).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import RequestTimeoutError


class InterClusterLink:
    """One directed source→target wide-area path between two clusters.

    The link is pure state + cost model: *who* uses it (mirror links,
    remote merge consumers) decides what traffic crosses it. ``up`` is
    flipped by region-failover scenarios and the chaos controller's
    inter-cluster fault kinds; the gauge mirrors it so health reports and
    debug bundles show link state next to replication lag.
    """

    def __init__(
        self,
        source,
        target,
        latency_ms: float = 30.0,
        name: Optional[str] = None,
    ) -> None:
        if latency_ms < 0:
            raise ValueError("latency_ms must be >= 0")
        self.source = source
        self.target = target
        self.latency_ms = latency_ms
        self.name = name or (
            f"{getattr(source, 'name', 'source')}->"
            f"{getattr(target, 'name', 'target')}"
        )
        self.up = True
        self.partitions_injected = 0
        # Link-state gauge lives in the *target* registry: the mirror runs
        # in the target region (MM2 deployment shape), so its health
        # monitor is the one that should see the link flap.
        self._up_gauge = target.metrics.gauge("mirror.link_up", link=self.name)
        self._up_gauge.set(1)

    def partition(self) -> None:
        """Cut the link: every cross-cluster RPC times out until heal()."""
        if self.up:
            self.partitions_injected += 1
        self.up = False
        self._up_gauge.set(0)

    def heal(self) -> None:
        self.up = True
        self._up_gauge.set(1)

    def network_to(self, cluster) -> "LinkedNetwork":
        """The network a client in this link's *other* region uses to reach
        ``cluster`` (one of the link's two endpoints)."""
        if cluster is self.source:
            return LinkedNetwork(self, self.source.network)
        if cluster is self.target:
            return LinkedNetwork(self, self.target.network)
        raise ValueError(f"cluster is not an endpoint of link {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "PARTITIONED"
        return f"InterClusterLink({self.name}, {self.latency_ms}ms, {state})"


class LinkedNetwork:
    """Remote-cluster :class:`~repro.sim.network.Network` proxy.

    Every RPC pays the link's round-trip latency on top of the remote
    network's own cost (charged on the shared clock by the remote network
    itself), and fails retriably while the link is partitioned. The remote
    cluster's own fault rules (gray brokers, severed intra-region links)
    still apply — a cross-region call traverses both failure domains.
    """

    def __init__(self, link: InterClusterLink, remote) -> None:
        self.link = link
        self._remote = remote
        self.clock = remote.clock

    def call(
        self,
        api: str,
        dst: int,
        fn: Callable[[], Any],
        base_cost_ms: Optional[float] = None,
        src: Optional[str] = None,
    ) -> Any:
        link = self.link
        if not link.up:
            # The request is lost in the WAN: charge one one-way latency
            # (the time spent discovering the timeout) and raise the same
            # retriable error a dropped intra-region request produces.
            if self._remote.charge_latency:
                self.clock.advance(link.latency_ms)
            raise RequestTimeoutError(
                f"{api}: inter-cluster link {link.name} is partitioned"
            )
        cost = (
            self._remote.costs.rpc_base_ms
            if base_cost_ms is None
            else base_cost_ms
        )
        return self._remote.call(
            api, dst, fn, base_cost_ms=cost + link.latency_ms, src=src
        )

    # -- cost helpers: same surface the clients use on a local Network ------

    def produce_cost(self, record_count: int) -> float:
        return self._remote.produce_cost(record_count)

    def fetch_cost(self) -> float:
        return self._remote.fetch_cost()

    def coordinator_cost(self) -> float:
        return self._remote.coordinator_cost()

    def marker_cost(self, partition_count: int) -> float:
        return self._remote.marker_cost(partition_count)
