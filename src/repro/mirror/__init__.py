"""Multi-cluster federation: mirror links, offset translation, ordering.

This package is the *only* place cross-cluster object references are
allowed (CI lints the rest of ``src/repro`` against importing
:mod:`repro.mirror.netlink` or holding two clusters at once). Everything
else sees exactly one cluster and, at most, a ``network=`` handle it
cannot distinguish from its local one.
"""

from repro.mirror.federation import Federation
from repro.mirror.link import MirrorLink
from repro.mirror.netlink import InterClusterLink, LinkedNetwork
from repro.mirror.ordering import (
    HLC_HEADER,
    HLCMerge,
    HybridLogicalClock,
    MergedRecord,
    SequencerMerge,
    make_merge,
    stamp_hlc,
)
from repro.mirror.translation import OffsetTranslator

__all__ = [
    "Federation",
    "HLCMerge",
    "HLC_HEADER",
    "HybridLogicalClock",
    "InterClusterLink",
    "LinkedNetwork",
    "MergedRecord",
    "MirrorLink",
    "OffsetTranslator",
    "SequencerMerge",
    "make_merge",
    "stamp_hlc",
]
