"""Global message ordering across clusters: sequencer vs HLC merge.

Records produced independently in several regions have no global order —
each region's log orders only its own appends. Two classic ways to impose
one, with opposite cost profiles, both implemented as driver actors that
consume every region's copy of a topic and emit one totally-ordered
stream:

* :class:`SequencerMerge` — a **central sequencer**: one designated region
  assigns a dense global sequence number in arrival order. Total order is
  immediate and gap-free, but every remote record pays a cross-region
  round trip *before* it can be sequenced, and the sequencer is a serial
  bottleneck and a single point of failure (its region dying takes global
  ordering down with it).
* :class:`HLCMerge` — a decentralized **hybrid-logical-clock merge**
  (Lamport-ordered timestamps that hug physical time): every region
  stamps its records locally at produce time and the merge releases a
  record only once every region's *frontier* has passed its stamp, so the
  output is ordered by ``(hlc, region)`` regardless of arrival order.
  Nothing serializes through one region, but release latency is bounded
  below by the slowest link plus the idle-region heartbeat — the
  ordering-vs-latency trade ``bench_mirror_ordering.py`` measures.

Both merges read remote regions through
:class:`~repro.mirror.netlink.LinkedNetwork` consumers, so link faults
stall exactly the region they cut.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.broker.partition import TopicPartition
from repro.clients.consumer import Consumer
from repro.config import READ_COMMITTED, ConsumerConfig
from repro.errors import RetriableError
from repro.metrics.latency import CREATED_AT_HEADER


class HybridLogicalClock:
    """A hybrid logical clock (Kulkarni et al.): ``(l, c)`` where ``l``
    tracks the max physical time seen and ``c`` breaks ties among events
    sharing it. Monotone under local events and message receipt alike."""

    def __init__(self, clock) -> None:
        self.clock = clock
        self.l = 0.0
        self.c = 0

    def tick(self) -> Tuple[float, int]:
        """Stamp a local event."""
        now = self.clock.now
        if now > self.l:
            self.l, self.c = now, 0
        else:
            self.c += 1
        return (self.l, self.c)

    def observe(self, remote: Tuple[float, int]) -> Tuple[float, int]:
        """Merge a received stamp (keeps causality across regions)."""
        now = self.clock.now
        rl, rc = remote
        if now > self.l and now > rl:
            self.l, self.c = now, 0
        elif rl > self.l:
            self.l, self.c = rl, rc + 1
        elif rl == self.l:
            self.c = max(self.c, rc) + 1
        else:
            self.c += 1
        return (self.l, self.c)


#: Header carrying a record's HLC stamp across regions.
HLC_HEADER = "__hlc"


def stamp_hlc(headers: Dict[str, Any], hlc: HybridLogicalClock) -> Dict[str, Any]:
    """Stamp ``headers`` with the region's next HLC value (produce-side)."""
    headers = dict(headers)
    headers[HLC_HEADER] = hlc.tick()
    return headers


class _RegionFeed:
    """One region's consumer over the merged topic, WAN-proxied when the
    region is remote to the merge."""

    def __init__(self, merge_name: str, region: str, cluster, topic: str,
                 link=None) -> None:
        self.region = region
        self.cluster = cluster
        self.link = link
        network = None if link is None else link.network_to(cluster)
        self.consumer = Consumer(
            cluster,
            ConsumerConfig(
                client_id=f"{merge_name}-{region}",
                isolation_level=READ_COMMITTED,
                auto_offset_reset="earliest",
            ),
            network=network,
        )
        meta = cluster.topic_metadata(topic)
        self.consumer.assign(
            [TopicPartition(topic, p) for p in range(meta.num_partitions)]
        )

    def poll(self) -> List[Any]:
        if self.link is not None and not self.link.up:
            return []
        try:
            return self.consumer.poll()
        except RetriableError:
            return []


class MergedRecord:
    """One record in the global order, with its provenance and latency."""

    __slots__ = ("global_seq", "region", "key", "value", "hlc",
                 "produced_at", "merged_at")

    def __init__(self, global_seq, region, key, value, hlc, produced_at,
                 merged_at) -> None:
        self.global_seq = global_seq
        self.region = region
        self.key = key
        self.value = value
        self.hlc = hlc
        self.produced_at = produced_at
        self.merged_at = merged_at

    @property
    def merge_latency_ms(self) -> Optional[float]:
        if self.produced_at is None:
            return None
        return self.merged_at - self.produced_at


class SequencerMerge:
    """Central sequencer: global sequence assigned in arrival order at the
    home region. Remote records cross their link inside the fetch, so the
    per-record cost *is* the cross-region hop (plus the serial drain)."""

    strategy = "sequencer"

    def __init__(self, name: str, home, feeds: List[_RegionFeed]) -> None:
        self.name = name
        self.home = home
        self.feeds = feeds
        self.merged: List[MergedRecord] = []
        self._latency = home.metrics.histogram(
            "mirror.merge_latency_ms", merge=name, strategy=self.strategy
        )

    def poll(self) -> int:
        count = 0
        for feed in self.feeds:
            for record in feed.poll():
                merged = MergedRecord(
                    global_seq=len(self.merged),
                    region=feed.region,
                    key=record.key,
                    value=record.value,
                    hlc=record.headers.get(HLC_HEADER),
                    produced_at=record.headers.get(CREATED_AT_HEADER),
                    merged_at=self.home.clock.now,
                )
                self.merged.append(merged)
                if merged.merge_latency_ms is not None:
                    self._latency.observe(merged.merge_latency_ms)
                count += 1
        return count


class HLCMerge:
    """Decentralized merge: buffer per region, release below the global
    frontier, order by ``(hlc, region)``.

    A region's frontier is the stamp of its newest observed record or —
    when the region has been silent longer than ``heartbeat_ms`` — the
    current time minus its link latency and the heartbeat (the stamp any
    not-yet-seen record could still carry). Records at or below every
    region's frontier are safe to release: nothing earlier can arrive.
    """

    strategy = "hlc"

    def __init__(
        self,
        name: str,
        home,
        feeds: List[_RegionFeed],
        heartbeat_ms: float = 20.0,
    ) -> None:
        self.name = name
        self.home = home
        self.feeds = feeds
        self.heartbeat_ms = heartbeat_ms
        self.merged: List[MergedRecord] = []
        self._buffer: List[Tuple[Tuple[float, int], str, Any]] = []
        self._frontier: Dict[str, Tuple[float, int]] = {
            feed.region: (-1.0, 0) for feed in feeds
        }
        self._last_seen: Dict[str, float] = {
            feed.region: home.clock.now for feed in feeds
        }
        self._latency = home.metrics.histogram(
            "mirror.merge_latency_ms", merge=name, strategy=self.strategy
        )

    def poll(self) -> int:
        now = self.home.clock.now
        for feed in self.feeds:
            records = feed.poll()
            if records:
                self._last_seen[feed.region] = now
                for record in records:
                    hlc = tuple(record.headers[HLC_HEADER])
                    self._buffer.append((hlc, feed.region, record))
                    if hlc > self._frontier[feed.region]:
                        self._frontier[feed.region] = hlc
            else:
                # Idle-region heartbeat: after heartbeat_ms of silence the
                # region vouches that any future record will be stamped
                # later than (now - link latency - heartbeat).
                if now - self._last_seen[feed.region] >= self.heartbeat_ms:
                    lat = feed.link.latency_ms if feed.link is not None else 0.0
                    bound = (now - lat - self.heartbeat_ms, 2**31)
                    if bound > self._frontier[feed.region]:
                        self._frontier[feed.region] = bound
        return self._release()

    def _release(self) -> int:
        if not self._buffer:
            return 0
        horizon = min(self._frontier.values())
        ready = [entry for entry in self._buffer if entry[0] <= horizon]
        if not ready:
            return 0
        self._buffer = [e for e in self._buffer if e[0] > horizon]
        ready.sort(key=lambda e: (e[0], e[1]))
        now = self.home.clock.now
        for hlc, region, record in ready:
            merged = MergedRecord(
                global_seq=len(self.merged),
                region=region,
                key=record.key,
                value=record.value,
                hlc=hlc,
                produced_at=record.headers.get(CREATED_AT_HEADER),
                merged_at=now,
            )
            self.merged.append(merged)
            if merged.merge_latency_ms is not None:
                self._latency.observe(merged.merge_latency_ms)
        return len(ready)

    def flush(self) -> None:
        """Idle drain: advance every silent region's frontier as if its
        heartbeat had just fired, then release what that unblocks."""
        now = self.home.clock.now
        for feed in self.feeds:
            lat = feed.link.latency_ms if feed.link is not None else 0.0
            bound = (now - lat - self.heartbeat_ms, 2**31)
            if bound > self._frontier[feed.region]:
                self._frontier[feed.region] = bound
        self._release()


def make_merge(
    strategy: str,
    federation,
    home_region: str,
    topic: str,
    name: Optional[str] = None,
    heartbeat_ms: float = 20.0,
):
    """Build a merge actor over every federation region's copy of
    ``topic`` (home region read locally, others through their links) and
    register it on the federation driver."""
    home = federation.cluster(home_region)
    name = name or f"merge-{home_region}-{topic}"
    feeds = []
    for region in federation.regions:
        cluster = federation.cluster(region)
        link = None if region == home_region else federation.link(
            home_region, region
        )
        feeds.append(_RegionFeed(name, region, cluster, topic, link=link))
    if strategy == "sequencer":
        merge = SequencerMerge(name, home, feeds)
    elif strategy == "hlc":
        merge = HLCMerge(name, home, feeds, heartbeat_ms=heartbeat_ms)
    else:
        raise ValueError(
            f"unknown merge strategy {strategy!r} "
            "(expected 'sequencer' or 'hlc')"
        )
    federation.register(merge)
    return merge
