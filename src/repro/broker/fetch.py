"""The fetch path: isolation levels and transactional filtering.

Implements Section 4.2.3 of the paper. A read-committed fetch

* never returns records at or beyond the partition's last stable offset
  (LSO) — i.e. past the first offset of any still-open transaction — so a
  transaction's records become visible *atomically* when its commit marker
  lands;
* filters out records belonging to aborted transactions, using the log's
  aborted-transaction index;
* skips control (marker) records, which are protocol metadata, while still
  advancing the consumer's position across them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import READ_COMMITTED, READ_SPECULATIVE, READ_UNCOMMITTED
from repro.log.partition_log import PartitionLog
from repro.log.record import Record


@dataclass
class FetchResult:
    """Records visible to the consumer plus the position to resume from.

    ``next_offset`` can be larger than the last returned record's offset + 1
    because markers and aborted records are consumed (position-wise) but
    not returned.
    """

    records: List[Record] = field(default_factory=list)
    next_offset: int = 0
    high_watermark: int = 0
    last_stable_offset: int = 0


def fetch(
    log: PartitionLog,
    from_offset: int,
    max_records: int = 500,
    isolation_level: str = READ_UNCOMMITTED,
) -> FetchResult:
    """Fetch visible records from ``log`` starting at ``from_offset``."""
    if isolation_level == READ_COMMITTED:
        limit = log.last_stable_offset
    elif isolation_level in (READ_UNCOMMITTED, READ_SPECULATIVE):
        # Speculative reads see past the LSO (open transactions included)
        # but, unlike plain read_uncommitted, still filter aborted data.
        limit = log.high_watermark
    else:
        raise ValueError(f"unknown isolation level: {isolation_level!r}")

    from_offset = max(from_offset, log.log_start_offset)
    result = FetchResult(
        next_offset=from_offset,
        high_watermark=log.high_watermark,
        last_stable_offset=log.last_stable_offset,
    )
    if from_offset >= limit:
        return result

    raw = log.read(from_offset, up_to_offset=limit)
    filter_aborted = isolation_level in (READ_COMMITTED, READ_SPECULATIVE)
    aborted = log.aborted_transactions() if filter_aborted else []
    for record in raw:
        if len(result.records) >= max_records:
            break
        result.next_offset = record.offset + 1
        if record.is_control:
            continue
        if filter_aborted and _is_aborted(record, aborted):
            continue
        result.records.append(record)
    return result


def _is_aborted(record: Record, aborted) -> bool:
    for txn in aborted:
        if (
            txn.producer_id == record.producer_id
            and txn.first_offset <= record.offset <= txn.last_offset
        ):
            return True
    return False
