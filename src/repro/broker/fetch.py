"""The fetch path: isolation levels and transactional filtering.

Implements Section 4.2.3 of the paper. A read-committed fetch

* never returns records at or beyond the partition's last stable offset
  (LSO) — i.e. past the first offset of any still-open transaction — so a
  transaction's records become visible *atomically* when its commit marker
  lands;
* filters out records belonging to aborted transactions, using the log's
  aborted-transaction index;
* skips control (marker) records, which are protocol metadata, while still
  advancing the consumer's position across them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import READ_COMMITTED, READ_SPECULATIVE, READ_UNCOMMITTED
from repro.log.columnar import ColumnarBatch
from repro.log.partition_log import PartitionLog
from repro.log.record import Record


@dataclass
class FetchResult:
    """Records visible to the consumer plus the position to resume from.

    ``next_offset`` can be larger than the last returned record's offset + 1
    because markers and aborted records are consumed (position-wise) but
    not returned.
    """

    records: List[Record] = field(default_factory=list)
    next_offset: int = 0
    high_watermark: int = 0
    last_stable_offset: int = 0


def fetch(
    log: PartitionLog,
    from_offset: int,
    max_records: int = 500,
    isolation_level: str = READ_UNCOMMITTED,
) -> FetchResult:
    """Fetch visible records from ``log`` starting at ``from_offset``."""
    if isolation_level == READ_COMMITTED:
        limit = log.last_stable_offset
    elif isolation_level in (READ_UNCOMMITTED, READ_SPECULATIVE):
        # Speculative reads see past the LSO (open transactions included)
        # but, unlike plain read_uncommitted, still filter aborted data.
        limit = log.high_watermark
    else:
        raise ValueError(f"unknown isolation level: {isolation_level!r}")

    from_offset = max(from_offset, log.log_start_offset)
    result = FetchResult(
        next_offset=from_offset,
        high_watermark=log.high_watermark,
        last_stable_offset=log.last_stable_offset,
    )
    if from_offset >= limit:
        return result

    # Read in budget-bounded chunks: a 500-record poll against a
    # million-record tail slices out ~500 records, not the whole tail.
    # Skipped entries (markers, aborted spans) don't count against the
    # budget, so the loop keeps reading until it either fills the budget
    # or exhausts the visible range — exactly the records a full-tail
    # scan would have returned.
    filter_aborted = isolation_level in (READ_COMMITTED, READ_SPECULATIVE)
    out = result.records
    position = from_offset
    while len(out) < max_records and position < limit:
        chunk = log.read(
            position, max_records=max_records - len(out), up_to_offset=limit
        )
        if not chunk:
            break
        for record in chunk:
            result.next_offset = record.offset + 1
            if record.is_control:
                continue
            if filter_aborted and log.is_offset_aborted(
                record.producer_id, record.offset
            ):
                continue
            out.append(record)
        position = chunk[-1].offset + 1
    return result


def fetch_columnar(
    log: PartitionLog,
    from_offset: int,
    max_records: int = 500,
    isolation_level: str = READ_UNCOMMITTED,
) -> ColumnarBatch:
    """Columnar twin of :func:`fetch`: same visibility semantics, but the
    result is a :class:`ColumnarBatch` — a slice of the log plus validity
    runs — with no per-record scanning or materialization. Control-marker
    skipping and aborted-span filtering happen as bisected run masking
    inside :meth:`PartitionLog.read_columnar`."""
    if isolation_level == READ_COMMITTED:
        limit = log.last_stable_offset
    elif isolation_level in (READ_UNCOMMITTED, READ_SPECULATIVE):
        limit = log.high_watermark
    else:
        raise ValueError(f"unknown isolation level: {isolation_level!r}")

    from_offset = max(from_offset, log.log_start_offset)
    if from_offset >= limit:
        return ColumnarBatch(
            [], [], from_offset, log.high_watermark, log.last_stable_offset
        )
    return log.read_columnar(
        from_offset,
        max_records=max_records,
        up_to_offset=limit,
        filter_aborted=isolation_level in (READ_COMMITTED, READ_SPECULATIVE),
    )
