"""Consumer-group coordination and durable offset commits.

Implements the group protocol the paper's Section 3.1 relies on: members
join a group, the coordinator assigns partitions and bumps a *generation*
on every membership change, and stale-generation commits are rejected so a
kicked (zombie) member cannot clobber progress.

Committed offsets are **records in the compacted ``__consumer_offsets``
topic** (Section 4.2: "offset commits in Kafka are translated internally as
appends to an internal Kafka topic"). Transactional producers commit
offsets *inside* their transaction by writing to this topic with their
producer id, so the offsets become visible if and only if the transaction
commits — the key to exactly-once read-process-write cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.config import READ_COMMITTED
from repro.errors import (
    IllegalGenerationError,
    UnknownMemberError,
)
from repro.broker.fetch import fetch
from repro.broker.partition import CONSUMER_OFFSETS_TOPIC, TopicPartition
from repro.log.record import NO_PRODUCER_ID, Record, RecordBatch
from repro.util import stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from repro.broker.cluster import Cluster


@dataclass
class GroupMember:
    member_id: str
    subscription: Tuple[str, ...]
    assignment: List[TopicPartition] = field(default_factory=list)
    # Session tracking: 0 disables expiry for this member (legacy callers
    # that never heartbeat keep their membership forever, as before).
    session_timeout_ms: float = 0.0
    last_heartbeat_ms: float = -1.0
    # Optional probe standing in for the client's background heartbeat
    # thread: when the session deadline passes, the coordinator asks the
    # probe whether the process is still alive before evicting. This keeps
    # discrete-event time jumps (which can skip many heartbeat intervals at
    # once) from expiring perfectly healthy members.
    liveness: Optional[object] = field(default=None, repr=False, compare=False)
    session_timer: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )


@dataclass
class GroupState:
    group_id: str
    generation: int = 0
    members: Dict[str, GroupMember] = field(default_factory=dict)


class GroupCoordinator:
    """Cluster-side group membership plus offset commit/fetch."""

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster
        self._groups: Dict[str, GroupState] = {}
        self._member_seq = 0
        # group_id -> custom assignor fn(members, partitions) -> {member: [tp]}
        # (Kafka computes the assignment client-side with a pluggable
        # assignor; Kafka Streams installs a task-aware sticky one.)
        self._assignors: Dict[str, object] = {}
        # (group_id, member_id) -> revocation-barrier callback.
        self._rebalance_listeners: Dict[Tuple[str, str], object] = {}
        # Members whose session timer found them expired *and* dead. The
        # eviction (and its rebalance) is deferred to the next safe point —
        # a heartbeat/join/leave or an explicit expire_sessions() — because
        # session timers can fire mid-advance, inside another member's
        # processing step, where a reentrant rebalance could commit that
        # member's transaction out from under it.
        self._pending_evictions: List[Tuple[str, str]] = []

    def set_rebalance_listener(
        self, group_id: str, member_id: str, listener
    ) -> None:
        """Register a zero-arg callback run for every group member *before*
        each rebalance reassigns partitions.

        This models the revocation barrier of Kafka's eager rebalance
        protocol: current owners finish (commit) their in-flight work
        before anyone else can take their partitions — without it, a new
        owner could read committed offsets that are about to be advanced
        by the old owner's revocation commit and duplicate its work.
        """
        self._rebalance_listeners[(group_id, member_id)] = listener

    def set_assignor(self, group_id: str, assignor) -> None:
        """Install a custom partition assignor for ``group_id``.

        ``assignor(members, partitions)`` receives the member map
        (member_id -> GroupMember, whose ``assignment`` holds the previous
        assignment for stickiness) and the full sorted partition list, and
        must return {member_id: [TopicPartition, ...]} covering it.
        """
        self._assignors[group_id] = assignor

    # -- membership -------------------------------------------------------------

    def join_group(
        self,
        group_id: str,
        subscription: Tuple[str, ...],
        member_id: Optional[str] = None,
        session_timeout_ms: float = 0.0,
        liveness=None,
    ) -> Tuple[str, int]:
        """Add (or re-add) a member; rebalances eagerly.

        ``session_timeout_ms > 0`` arms a self-rescheduling session timer:
        if the member neither heartbeats nor passes its ``liveness`` probe
        for a full timeout window, it is evicted and the group rebalances.
        Returns (member_id, generation).
        """
        self._apply_pending_evictions()
        group = self._groups.setdefault(group_id, GroupState(group_id))
        if member_id is None:
            self._member_seq += 1
            member_id = f"{group_id}-member-{self._member_seq}"
        existing = group.members.get(member_id)
        if existing is not None and existing.subscription == tuple(subscription):
            # Re-sync: the member is already part of the group with the
            # same subscription — hand it the current generation instead of
            # forcing yet another rebalance (models SyncGroup).
            existing.last_heartbeat_ms = self._cluster.clock.now
            if session_timeout_ms != existing.session_timeout_ms or liveness:
                existing.session_timeout_ms = session_timeout_ms
                existing.liveness = liveness or existing.liveness
                self._arm_session_timer(group, existing)
            return member_id, group.generation
        member = GroupMember(
            member_id,
            tuple(subscription),
            session_timeout_ms=session_timeout_ms,
            last_heartbeat_ms=self._cluster.clock.now,
            liveness=liveness,
        )
        group.members[member_id] = member
        tracer = self._cluster.tracer
        if tracer.enabled:
            tracer.event(
                "group.join", "group-coordinator", group_id,
                category="group", member=member_id,
            )
        self._arm_session_timer(group, member)
        self._rebalance(group)
        return member_id, group.generation

    def leave_group(self, group_id: str, member_id: str) -> None:
        self._apply_pending_evictions()
        group = self._groups.get(group_id)
        if group is None or member_id not in group.members:
            return
        self._remove_member(group, member_id)
        if group.members:
            self._rebalance(group)
        else:
            group.generation += 1

    def heartbeat(self, group_id: str, member_id: str) -> bool:
        """Record liveness for a member; returns False if it is no longer
        in the group (the client should rejoin). Also a safe point at which
        deferred session evictions are applied."""
        self._apply_pending_evictions()
        group = self._groups.get(group_id)
        if group is None or member_id not in group.members:
            return False
        group.members[member_id].last_heartbeat_ms = self._cluster.clock.now
        return True

    def assignment(self, group_id: str, member_id: str, generation: int) -> List[TopicPartition]:
        group = self._require_member(group_id, member_id)
        if generation != group.generation:
            raise IllegalGenerationError(
                f"group {group_id}: generation {generation} != {group.generation}"
            )
        return list(group.members[member_id].assignment)

    def generation(self, group_id: str) -> int:
        group = self._groups.get(group_id)
        return 0 if group is None else group.generation

    def is_member(self, group_id: str, member_id: str) -> bool:
        group = self._groups.get(group_id)
        return group is not None and member_id in group.members

    def members(self, group_id: str) -> List[str]:
        group = self._groups.get(group_id)
        return [] if group is None else sorted(group.members)

    def _require_member(self, group_id: str, member_id: str) -> GroupState:
        group = self._groups.get(group_id)
        if group is None or member_id not in group.members:
            raise UnknownMemberError(f"{member_id} not in group {group_id}")
        return group

    # -- session expiry ---------------------------------------------------------------

    def expire_sessions(self) -> List[str]:
        """Apply deferred session evictions now; returns evicted member ids.

        Session timers queue expired members as they fire; this (like any
        heartbeat/join/leave) is the safe point where the evictions and the
        resulting rebalances actually happen.
        """
        return self._apply_pending_evictions()

    def _arm_session_timer(self, group: GroupState, member: GroupMember) -> None:
        """Self-rescheduling session deadline for one member.

        Housekeeping (non-wake) timer: expiry happens when simulated time
        passes the deadline for other reasons; an idle driver does not
        fast-forward a finished run just to expire sessions.
        """
        if member.session_timer is not None:
            member.session_timer.cancel()
            member.session_timer = None
        if member.session_timeout_ms <= 0:
            return
        clock = self._cluster.clock
        deadline = member.last_heartbeat_ms + member.session_timeout_ms
        member.session_timer = clock.schedule(
            max(0.0, deadline - clock.now),
            lambda g=group, m=member: self._on_session_timer(g, m),
            wake=False,
        )

    def _on_session_timer(self, group: GroupState, member: GroupMember) -> None:
        member.session_timer = None
        if group.members.get(member.member_id) is not member:
            return  # left or was replaced since the timer was armed
        now = self._cluster.clock.now
        deadline = member.last_heartbeat_ms + member.session_timeout_ms
        if now < deadline:
            self._arm_session_timer(group, member)  # heartbeat moved it
            return
        probe = member.liveness
        if probe is not None and probe():
            # The process is alive — its background heartbeat thread would
            # have kept the session fresh in real time; the discrete-event
            # clock simply jumped several heartbeat intervals at once.
            member.last_heartbeat_ms = now
            self._arm_session_timer(group, member)
            return
        self._pending_evictions.append((group.group_id, member.member_id))

    def _apply_pending_evictions(self) -> List[str]:
        if not self._pending_evictions:
            return []
        pending, self._pending_evictions = self._pending_evictions, []
        evicted: List[str] = []
        affected: Dict[str, GroupState] = {}
        for group_id, member_id in pending:
            group = self._groups.get(group_id)
            member = None if group is None else group.members.get(member_id)
            if member is None:
                continue
            # Re-check at the safe point: the member may have heartbeated
            # or come back to life between timer fire and application.
            expired = (
                self._cluster.clock.now
                >= member.last_heartbeat_ms + member.session_timeout_ms
            )
            alive = member.liveness is not None and member.liveness()
            if not expired or alive:
                member.last_heartbeat_ms = self._cluster.clock.now
                self._arm_session_timer(group, member)
                continue
            self._remove_member(group, member_id)
            evicted.append(member_id)
            affected[group_id] = group
            tracer = self._cluster.tracer
            if tracer.enabled:
                tracer.event(
                    "group.session_expired", "group-coordinator", group_id,
                    category="group", member=member_id,
                )
        for group in affected.values():
            if group.members:
                self._rebalance(group)
            else:
                group.generation += 1
        return evicted

    def _remove_member(self, group: GroupState, member_id: str) -> None:
        member = group.members.pop(member_id)
        if member.session_timer is not None:
            member.session_timer.cancel()
            member.session_timer = None
        self._rebalance_listeners.pop((group.group_id, member_id), None)

    def _rebalance(self, group: GroupState) -> None:
        """Eager rebalance: bump generation, reassign round-robin with
        stickiness (a partition stays with its old owner when possible).

        Revocation barrier first: every member's listener runs (committing
        in-flight work) before partitions change hands.
        """
        tracer = self._cluster.tracer
        if tracer.enabled:
            # The span covers the revocation barrier (whose commits charge
            # latency) through reassignment; generation is stamped at close.
            with tracer.begin(
                "group.rebalance", "group-coordinator", group.group_id,
                category="group", members=len(group.members),
            ) as span:
                self._do_rebalance(group)
                span.add(generation=group.generation)
            return
        self._do_rebalance(group)

    def _do_rebalance(self, group: GroupState) -> None:
        for member_id in sorted(group.members):
            listener = self._rebalance_listeners.get((group.group_id, member_id))
            if listener is not None:
                listener()
        group.generation += 1
        partitions: List[TopicPartition] = []
        topics: Set[str] = set()
        for member in group.members.values():
            topics.update(member.subscription)
        for topic in sorted(topics):
            meta = self._cluster.topic_metadata(topic)
            partitions.extend(
                TopicPartition(topic, p) for p in range(meta.num_partitions)
            )

        custom = self._assignors.get(group.group_id)
        if custom is not None:
            new = custom(group.members, partitions)
            for member_id, member in group.members.items():
                member.assignment = list(new.get(member_id, []))
            return

        previous_owner: Dict[TopicPartition, str] = {}
        for member in group.members.values():
            for tp in member.assignment:
                previous_owner[tp] = member.member_id

        member_ids = sorted(group.members)
        quota = -(-len(partitions) // len(member_ids)) if member_ids else 0
        new_assignment: Dict[str, List[TopicPartition]] = {m: [] for m in member_ids}

        unplaced: List[TopicPartition] = []
        for tp in partitions:
            owner = previous_owner.get(tp)
            if (
                owner in new_assignment
                and len(new_assignment[owner]) < quota
                and tp.topic in group.members[owner].subscription
            ):
                new_assignment[owner].append(tp)
            else:
                unplaced.append(tp)
        for tp in unplaced:
            eligible = [
                m for m in member_ids if tp.topic in group.members[m].subscription
            ]
            if not eligible:
                continue
            target = min(eligible, key=lambda m: len(new_assignment[m]))
            new_assignment[target].append(tp)

        for member_id, assigned in new_assignment.items():
            group.members[member_id].assignment = assigned

    # -- offsets ------------------------------------------------------------------

    def offsets_partition(self, group_id: str) -> TopicPartition:
        """Which ``__consumer_offsets`` partition stores this group."""
        meta = self._cluster.topic_metadata(CONSUMER_OFFSETS_TOPIC)
        index = stable_hash(group_id) % meta.num_partitions
        return TopicPartition(CONSUMER_OFFSETS_TOPIC, index)

    def commit_offsets(
        self,
        group_id: str,
        offsets: Dict[TopicPartition, int],
        member_id: Optional[str] = None,
        generation: Optional[int] = None,
        producer_id: int = NO_PRODUCER_ID,
        producer_epoch: int = -1,
        transactional: bool = False,
    ) -> None:
        """Append offset-commit records to the offsets topic.

        With ``transactional=True`` the records are part of the producer's
        open transaction and only become effective on commit.
        """
        if member_id is not None:
            group = self._require_member(group_id, member_id)
            if generation is not None and generation != group.generation:
                raise IllegalGenerationError(
                    f"group {group_id}: commit with stale generation "
                    f"{generation} (current {group.generation})"
                )
        tp = self.offsets_partition(group_id)
        records = [
            Record(
                key=(group_id, target.topic, target.partition),
                value=offset,
                timestamp=self._cluster.clock.now,
            )
            for target, offset in sorted(offsets.items())
        ]
        batch = RecordBatch(
            records=records,
            producer_id=producer_id,
            producer_epoch=producer_epoch,
            is_transactional=transactional,
        )
        self._cluster.partition_state(tp).append(batch, acks="all")

    def fetch_committed(
        self, group_id: str, partitions: List[TopicPartition]
    ) -> Dict[TopicPartition, Optional[int]]:
        """Latest *committed* offset per partition (None if never committed).

        Reads the offsets-topic partition with read_committed isolation, so
        offsets written inside open or aborted transactions do not count —
        this is what rolls a failed task's position back to its last
        committed transaction (Section 4.2.3).
        """
        tp = self.offsets_partition(group_id)
        log = self._cluster.partition_state(tp).leader_log()
        result = fetch(
            log, log.log_start_offset, max_records=2**31,
            isolation_level=READ_COMMITTED,
        )
        latest: Dict[TopicPartition, Optional[int]] = {p: None for p in partitions}
        wanted = set(partitions)
        for record in result.records:
            group, topic, partition = record.key
            target = TopicPartition(topic, partition)
            if group == group_id and target in wanted:
                latest[target] = record.value
        return latest
