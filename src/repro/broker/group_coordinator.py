"""Consumer-group coordination and durable offset commits.

Implements the group protocol the paper's Section 3.1 relies on: members
join a group, the coordinator assigns partitions and bumps a *generation*
on every membership change, and stale-generation commits are rejected so a
kicked (zombie) member cannot clobber progress.

Committed offsets are **records in the compacted ``__consumer_offsets``
topic** (Section 4.2: "offset commits in Kafka are translated internally as
appends to an internal Kafka topic"). Transactional producers commit
offsets *inside* their transaction by writing to this topic with their
producer id, so the offsets become visible if and only if the transaction
commits — the key to exactly-once read-process-write cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.config import COOPERATIVE, EAGER, READ_COMMITTED
from repro.errors import (
    CommitFailedError,
    IllegalGenerationError,
    UnknownMemberError,
)
from repro.broker.fetch import fetch
from repro.broker.partition import CONSUMER_OFFSETS_TOPIC, TopicPartition
from repro.log.record import NO_PRODUCER_ID, Record, RecordBatch
from repro.util import stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from repro.broker.cluster import Cluster


@dataclass
class GroupMember:
    member_id: str
    subscription: Tuple[str, ...]
    assignment: List[TopicPartition] = field(default_factory=list)
    # Rebalance protocol this member offered at join. The group runs
    # cooperatively only when *every* member offers COOPERATIVE (Kafka's
    # protocol negotiation downgrades to the common denominator).
    protocol: str = EAGER
    # Session tracking: 0 disables expiry for this member (legacy callers
    # that never heartbeat keep their membership forever, as before).
    session_timeout_ms: float = 0.0
    last_heartbeat_ms: float = -1.0
    # Optional probe standing in for the client's background heartbeat
    # thread: when the session deadline passes, the coordinator asks the
    # probe whether the process is still alive before evicting. This keeps
    # discrete-event time jumps (which can skip many heartbeat intervals at
    # once) from expiring perfectly healthy members.
    liveness: Optional[object] = field(default=None, repr=False, compare=False)
    session_timer: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )


@dataclass
class GroupState:
    group_id: str
    generation: int = 0
    members: Dict[str, GroupMember] = field(default_factory=dict)
    # Negotiated protocol of the last rebalance (EAGER or COOPERATIVE).
    protocol: str = EAGER
    # Cooperative handover bookkeeping: partitions withheld from their new
    # owner because the previous owner has not yet confirmed (via
    # rebalance_ack) that it committed and closed them. tp -> old owner.
    unreleased: Dict[TopicPartition, str] = field(default_factory=dict)


class GroupCoordinator:
    """Cluster-side group membership plus offset commit/fetch."""

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster
        self._groups: Dict[str, GroupState] = {}
        self._member_seq = 0
        # group_id -> custom assignor fn(members, partitions) -> {member: [tp]}
        # (Kafka computes the assignment client-side with a pluggable
        # assignor; Kafka Streams installs a task-aware sticky one.)
        self._assignors: Dict[str, object] = {}
        # (group_id, member_id) -> revocation-barrier callback.
        self._rebalance_listeners: Dict[Tuple[str, str], object] = {}
        # Members whose session timer found them expired *and* dead. The
        # eviction (and its rebalance) is deferred to the next safe point —
        # a heartbeat/join/leave or an explicit expire_sessions() — because
        # session timers can fire mid-advance, inside another member's
        # processing step, where a reentrant rebalance could commit that
        # member's transaction out from under it.
        self._pending_evictions: List[Tuple[str, str]] = []
        # Groups with a rebalance requested out-of-band — cooperative
        # follow-ups (granting partitions freed by a rebalance_ack) and
        # probing rebalances from the streams assignor's warmup timer.
        # Applied at the same safe points as evictions, for the same
        # reentrancy reason.
        self._pending_rebalances: Set[str] = set()

    def set_rebalance_listener(
        self, group_id: str, member_id: str, listener
    ) -> None:
        """Register a zero-arg callback run for every group member *before*
        each rebalance reassigns partitions.

        This models the revocation barrier of Kafka's eager rebalance
        protocol: current owners finish (commit) their in-flight work
        before anyone else can take their partitions — without it, a new
        owner could read committed offsets that are about to be advanced
        by the old owner's revocation commit and duplicate its work.
        """
        self._rebalance_listeners[(group_id, member_id)] = listener

    def set_assignor(self, group_id: str, assignor) -> None:
        """Install a custom partition assignor for ``group_id``.

        ``assignor(members, partitions)`` receives the member map
        (member_id -> GroupMember, whose ``assignment`` holds the previous
        assignment for stickiness) and the full sorted partition list, and
        must return {member_id: [TopicPartition, ...]} covering it.
        """
        self._assignors[group_id] = assignor

    # -- membership -------------------------------------------------------------

    def join_group(
        self,
        group_id: str,
        subscription: Tuple[str, ...],
        member_id: Optional[str] = None,
        session_timeout_ms: float = 0.0,
        liveness=None,
        protocol: str = EAGER,
    ) -> Tuple[str, int]:
        """Add (or re-add) a member; rebalances eagerly.

        ``session_timeout_ms > 0`` arms a self-rescheduling session timer:
        if the member neither heartbeats nor passes its ``liveness`` probe
        for a full timeout window, it is evicted and the group rebalances.
        Returns (member_id, generation).
        """
        self._apply_pending_evictions()
        group = self._groups.setdefault(group_id, GroupState(group_id))
        if member_id is None:
            self._member_seq += 1
            member_id = f"{group_id}-member-{self._member_seq}"
        existing = group.members.get(member_id)
        if existing is not None and existing.subscription == tuple(subscription):
            # Re-sync: the member is already part of the group with the
            # same subscription — hand it the current generation instead of
            # forcing yet another rebalance (models SyncGroup).
            existing.last_heartbeat_ms = self._cluster.clock.now
            existing.protocol = protocol
            if session_timeout_ms != existing.session_timeout_ms or liveness:
                existing.session_timeout_ms = session_timeout_ms
                existing.liveness = liveness or existing.liveness
                self._arm_session_timer(group, existing)
            return member_id, group.generation
        member = GroupMember(
            member_id,
            tuple(subscription),
            session_timeout_ms=session_timeout_ms,
            last_heartbeat_ms=self._cluster.clock.now,
            liveness=liveness,
            protocol=protocol,
        )
        group.members[member_id] = member
        tracer = self._cluster.tracer
        if tracer.enabled:
            tracer.event(
                "group.join", "group-coordinator", group_id,
                category="group", member=member_id,
            )
        self._arm_session_timer(group, member)
        self._rebalance(group)
        return member_id, group.generation

    def leave_group(self, group_id: str, member_id: str) -> None:
        self._apply_pending_evictions()
        group = self._groups.get(group_id)
        if group is None or member_id not in group.members:
            return
        self._remove_member(group, member_id)
        if group.members:
            self._rebalance(group)
        else:
            group.generation += 1

    def heartbeat(self, group_id: str, member_id: str) -> bool:
        """Record liveness for a member; returns False if it is no longer
        in the group (the client should rejoin). Also a safe point at which
        deferred session evictions are applied."""
        self._apply_pending_evictions()
        group = self._groups.get(group_id)
        if group is None or member_id not in group.members:
            return False
        group.members[member_id].last_heartbeat_ms = self._cluster.clock.now
        return True

    def assignment(self, group_id: str, member_id: str, generation: int) -> List[TopicPartition]:
        group = self._require_member(group_id, member_id)
        if generation != group.generation:
            raise IllegalGenerationError(
                f"group {group_id}: generation {generation} != {group.generation}"
            )
        return list(group.members[member_id].assignment)

    def generation(self, group_id: str) -> int:
        group = self._groups.get(group_id)
        return 0 if group is None else group.generation

    def is_member(self, group_id: str, member_id: str) -> bool:
        group = self._groups.get(group_id)
        return group is not None and member_id in group.members

    def members(self, group_id: str) -> List[str]:
        group = self._groups.get(group_id)
        return [] if group is None else sorted(group.members)

    def _require_member(self, group_id: str, member_id: str) -> GroupState:
        group = self._groups.get(group_id)
        if group is None or member_id not in group.members:
            raise UnknownMemberError(f"{member_id} not in group {group_id}")
        return group

    # -- session expiry ---------------------------------------------------------------

    def expire_sessions(self) -> List[str]:
        """Apply deferred session evictions now; returns evicted member ids.

        Session timers queue expired members as they fire; this (like any
        heartbeat/join/leave) is the safe point where the evictions and the
        resulting rebalances actually happen.
        """
        return self._apply_pending_evictions()

    def _arm_session_timer(self, group: GroupState, member: GroupMember) -> None:
        """Self-rescheduling session deadline for one member.

        Housekeeping (non-wake) timer: expiry happens when simulated time
        passes the deadline for other reasons; an idle driver does not
        fast-forward a finished run just to expire sessions.
        """
        if member.session_timer is not None:
            member.session_timer.cancel()
            member.session_timer = None
        if member.session_timeout_ms <= 0:
            return
        clock = self._cluster.clock
        deadline = member.last_heartbeat_ms + member.session_timeout_ms
        member.session_timer = clock.schedule(
            max(0.0, deadline - clock.now),
            lambda g=group, m=member: self._on_session_timer(g, m),
            wake=False,
        )

    def _on_session_timer(self, group: GroupState, member: GroupMember) -> None:
        member.session_timer = None
        if group.members.get(member.member_id) is not member:
            return  # left or was replaced since the timer was armed
        now = self._cluster.clock.now
        deadline = member.last_heartbeat_ms + member.session_timeout_ms
        if now < deadline:
            self._arm_session_timer(group, member)  # heartbeat moved it
            return
        probe = member.liveness
        if probe is not None and probe():
            # The process is alive — its background heartbeat thread would
            # have kept the session fresh in real time; the discrete-event
            # clock simply jumped several heartbeat intervals at once.
            member.last_heartbeat_ms = now
            self._arm_session_timer(group, member)
            return
        self._pending_evictions.append((group.group_id, member.member_id))

    def _apply_pending_evictions(self) -> List[str]:
        if not self._pending_evictions:
            self._apply_pending_rebalances()
            return []
        pending, self._pending_evictions = self._pending_evictions, []
        evicted: List[str] = []
        affected: Dict[str, GroupState] = {}
        for group_id, member_id in pending:
            group = self._groups.get(group_id)
            member = None if group is None else group.members.get(member_id)
            if member is None:
                continue
            # Re-check at the safe point: the member may have heartbeated
            # or come back to life between timer fire and application.
            expired = (
                self._cluster.clock.now
                >= member.last_heartbeat_ms + member.session_timeout_ms
            )
            alive = member.liveness is not None and member.liveness()
            if not expired or alive:
                member.last_heartbeat_ms = self._cluster.clock.now
                self._arm_session_timer(group, member)
                continue
            self._remove_member(group, member_id)
            evicted.append(member_id)
            affected[group_id] = group
            tracer = self._cluster.tracer
            if tracer.enabled:
                tracer.event(
                    "group.session_expired", "group-coordinator", group_id,
                    category="group", member=member_id,
                )
            rec = self._cluster.recovery
            if rec is not None:
                rec.note_detection(
                    "session_expired", group=group_id, member=member_id
                )
        for group in affected.values():
            if group.members:
                self._rebalance(group)
            else:
                group.generation += 1
        self._apply_pending_rebalances(just_rebalanced=set(affected))
        return evicted

    def _remove_member(self, group: GroupState, member_id: str) -> None:
        member = group.members.pop(member_id)
        if member.session_timer is not None:
            member.session_timer.cancel()
            member.session_timer = None
        self._rebalance_listeners.pop((group.group_id, member_id), None)
        # A departed member can no longer confirm its revocations. Graceful
        # leavers committed before leave_group; a crashed member's dangling
        # transaction will be aborted, so the last *committed* offsets are
        # the correct handover point either way — release its claims.
        for tp in [t for t, m in group.unreleased.items() if m == member_id]:
            del group.unreleased[tp]

    # -- out-of-band rebalance requests -------------------------------------------

    def request_rebalance(self, group_id: str) -> None:
        """Ask for a rebalance at the next safe point (heartbeat/join/leave
        or expire_sessions). Used by cooperative follow-ups and by the
        streams assignor's probing-rebalance timer (KIP-441): probing
        wake timers fire between actor polls, where a synchronous rebalance
        could reach into a member mid-step."""
        self._pending_rebalances.add(group_id)
        # Wake timer (empty callback): the request is applied at the next
        # heartbeat, so make sure an otherwise-idle driver performs one
        # more poll round instead of concluding with the rebalance pending.
        self._cluster.clock.schedule(0.0, lambda: None)

    def rebalance_ack(self, group_id: str, member_id: str) -> None:
        """Cooperative revocation confirmation: ``member_id`` has committed
        and closed every partition the last rebalance took away from it.
        Once a member's claims are all released, a follow-up rebalance is
        requested so the freed partitions reach their new owners."""
        group = self._groups.get(group_id)
        if group is None:
            return
        released = [t for t, m in group.unreleased.items() if m == member_id]
        for tp in released:
            del group.unreleased[tp]
        if released and group.members:
            self.request_rebalance(group_id)

    def _apply_pending_rebalances(self, just_rebalanced: Set[str] = frozenset()) -> None:
        if not self._pending_rebalances:
            return
        pending, self._pending_rebalances = self._pending_rebalances, set()
        for group_id in sorted(pending):
            if group_id in just_rebalanced:
                continue
            group = self._groups.get(group_id)
            if group is not None and group.members:
                self._rebalance(group)

    # -- introspection (invariants / tests) ----------------------------------------

    def group_protocol(self, group_id: str) -> str:
        group = self._groups.get(group_id)
        return EAGER if group is None else group.protocol

    def assignment_snapshot(self, group_id: str) -> Dict[str, List[TopicPartition]]:
        """Current owner map, regardless of generation (for observers)."""
        group = self._groups.get(group_id)
        if group is None:
            return {}
        return {m: list(member.assignment) for m, member in group.members.items()}

    def unreleased_partitions(self, group_id: str) -> Dict[TopicPartition, str]:
        """Partitions mid-handover: withheld until the old owner acks."""
        group = self._groups.get(group_id)
        return {} if group is None else dict(group.unreleased)

    def rebalance_pending(self, group_id: str) -> bool:
        """True while an out-of-band rebalance request awaits its safe
        point (observers must expect transiently unowned partitions)."""
        return group_id in self._pending_rebalances

    def offsets_stable(self, group_id: str) -> bool:
        """True when the group's ``__consumer_offsets`` partition has no
        open transaction (Kafka's UNSTABLE_OFFSET_COMMIT condition). While
        a commit's markers are still in flight, a read_committed offset
        fetch would return the *previous* committed offsets; adopting a
        partition on those would replay work its old owner already
        committed."""
        tp = self.offsets_partition(group_id)
        log = self._cluster.partition_state(tp).leader_log()
        return not log.open_transactions()

    # -- rebalancing ----------------------------------------------------------------

    def _rebalance(self, group: GroupState) -> None:
        """Bump the generation and reassign partitions.

        The negotiated protocol decides how: EAGER runs every member's
        revocation-barrier listener (committing in-flight work) and then
        moves everything in one step; COOPERATIVE hands each member only
        the partitions no other member might still hold, withholding moved
        partitions until their previous owner acks the revocation in a
        follow-up generation (KIP-429).
        """
        tracer = self._cluster.tracer
        if tracer.enabled:
            # The span covers the revocation barrier (whose commits charge
            # latency) through reassignment; generation is stamped at close.
            with tracer.begin(
                "group.rebalance", "group-coordinator", group.group_id,
                category="group", members=len(group.members),
            ) as span:
                self._do_rebalance(group)
                span.add(
                    generation=group.generation,
                    protocol=group.protocol,
                    deferred=len(group.unreleased),
                )
            self._note_realigned(group)
            return
        self._do_rebalance(group)
        self._note_realigned(group)

    def _note_realigned(self, group: GroupState) -> None:
        rec = self._cluster.recovery
        if rec is not None:
            rec.note_realign(
                "rebalance",
                group=group.group_id,
                generation=group.generation,
                protocol=group.protocol,
            )

    def _do_rebalance(self, group: GroupState) -> None:
        group.protocol = (
            COOPERATIVE
            if group.members
            and all(m.protocol == COOPERATIVE for m in group.members.values())
            else EAGER
        )
        self._cluster.metrics.counter(
            "rebalance_count", group=group.group_id, protocol=group.protocol
        ).increment()
        if group.protocol == EAGER:
            # Revocation barrier: current owners finish (commit) in-flight
            # work before any partition changes hands.
            for member_id in sorted(group.members):
                listener = self._rebalance_listeners.get((group.group_id, member_id))
                if listener is not None:
                    listener()
            group.unreleased.clear()
        group.generation += 1
        target = self._target_assignment(group)
        if group.protocol == EAGER:
            for member_id, member in group.members.items():
                member.assignment = list(target.get(member_id, []))
            return

        # Cooperative: a member may still hold uncommitted work for every
        # partition in its current assignment, plus any earlier revocation
        # it has not acked yet. Withhold those from their new owners.
        holder: Dict[TopicPartition, str] = {}
        for member in group.members.values():
            for tp in member.assignment:
                holder[tp] = member.member_id
        for tp, member_id in group.unreleased.items():
            if member_id in group.members:
                holder.setdefault(tp, member_id)

        granted: Dict[str, Set[TopicPartition]] = {m: set() for m in group.members}
        for member_id in group.members:
            for tp in target.get(member_id, []):
                if holder.get(tp) in (None, member_id):
                    granted[member_id].add(tp)
        group.unreleased = {
            tp: member_id
            for tp, member_id in holder.items()
            if tp not in granted[member_id]
        }
        for member_id, member in group.members.items():
            member.assignment = sorted(granted[member_id])

    def _target_assignment(self, group: GroupState) -> Dict[str, List[TopicPartition]]:
        """The assignment the group is converging to (custom assignor, or
        sticky round-robin over the subscribed partitions)."""
        partitions: List[TopicPartition] = []
        topics: Set[str] = set()
        for member in group.members.values():
            topics.update(member.subscription)
        for topic in sorted(topics):
            meta = self._cluster.topic_metadata(topic)
            partitions.extend(
                TopicPartition(topic, p) for p in range(meta.num_partitions)
            )

        custom = self._assignors.get(group.group_id)
        if custom is not None:
            new = custom(group.members, partitions)
            return {m: list(new.get(m, [])) for m in group.members}

        previous_owner: Dict[TopicPartition, str] = {}
        for member in group.members.values():
            for tp in member.assignment:
                previous_owner[tp] = member.member_id

        member_ids = sorted(group.members)
        quota = -(-len(partitions) // len(member_ids)) if member_ids else 0
        new_assignment: Dict[str, List[TopicPartition]] = {m: [] for m in member_ids}

        unplaced: List[TopicPartition] = []
        for tp in partitions:
            owner = previous_owner.get(tp)
            if (
                owner in new_assignment
                and len(new_assignment[owner]) < quota
                and tp.topic in group.members[owner].subscription
            ):
                new_assignment[owner].append(tp)
            else:
                unplaced.append(tp)
        for tp in unplaced:
            eligible = [
                m for m in member_ids if tp.topic in group.members[m].subscription
            ]
            if not eligible:
                continue
            target = min(eligible, key=lambda m: len(new_assignment[m]))
            new_assignment[target].append(tp)
        return new_assignment

    # -- offsets ------------------------------------------------------------------

    def offsets_partition(self, group_id: str) -> TopicPartition:
        """Which ``__consumer_offsets`` partition stores this group."""
        meta = self._cluster.topic_metadata(CONSUMER_OFFSETS_TOPIC)
        index = stable_hash(group_id) % meta.num_partitions
        return TopicPartition(CONSUMER_OFFSETS_TOPIC, index)

    def commit_offsets(
        self,
        group_id: str,
        offsets: Dict[TopicPartition, int],
        member_id: Optional[str] = None,
        generation: Optional[int] = None,
        producer_id: int = NO_PRODUCER_ID,
        producer_epoch: int = -1,
        transactional: bool = False,
    ) -> None:
        """Append offset-commit records to the offsets topic.

        With ``transactional=True`` the records are part of the producer's
        open transaction and only become effective on commit.
        """
        if member_id is not None:
            group = self._require_member(group_id, member_id)
            if generation is not None and generation != group.generation:
                raise IllegalGenerationError(
                    f"group {group_id}: commit with stale generation "
                    f"{generation} (current {group.generation})"
                )
            if generation is not None:
                self._check_ownership(group, member_id, offsets)
        tp = self.offsets_partition(group_id)
        records = [
            Record(
                key=(group_id, target.topic, target.partition),
                value=offset,
                timestamp=self._cluster.clock.now,
            )
            for target, offset in sorted(offsets.items())
        ]
        batch = RecordBatch(
            records=records,
            producer_id=producer_id,
            producer_epoch=producer_epoch,
            is_transactional=transactional,
        )
        self._cluster.partition_state(tp).append(batch, acks="all")

    def _check_ownership(
        self,
        group: GroupState,
        member_id: str,
        offsets: Dict[TopicPartition, int],
    ) -> None:
        """Reject commits for partitions owned by *another* member.

        The generation check alone cannot fence a zombie window: the real
        protocol only completes a rebalance once every member has rejoined
        (having committed revoked work first), but this coordinator
        completes rebalances instantly and runs revocation barriers on the
        members' behalf. A member that kept processing already-fetched
        records for a partition it lost would pass the generation check
        after its next (generation-refreshing) rejoin and commit work the
        partition's new owner is about to redo — duplicated output under
        exactly-once. Ownership is checked against the current assignment;
        a cooperative handover still in flight (``unreleased``) keeps the
        old owner commit-eligible until it acks.
        """
        owned = set(group.members[member_id].assignment)
        foreign = sorted(
            str(tp)
            for tp in offsets
            if tp not in owned and group.unreleased.get(tp) != member_id
        )
        if foreign:
            raise CommitFailedError(
                f"group {group.group_id}: member {member_id} committed "
                f"offsets for partitions it does not own in generation "
                f"{group.generation}: {foreign}"
            )

    def fetch_committed(
        self, group_id: str, partitions: List[TopicPartition]
    ) -> Dict[TopicPartition, Optional[int]]:
        """Latest *committed* offset per partition (None if never committed).

        Reads the offsets-topic partition with read_committed isolation, so
        offsets written inside open or aborted transactions do not count —
        this is what rolls a failed task's position back to its last
        committed transaction (Section 4.2.3).
        """
        tp = self.offsets_partition(group_id)
        log = self._cluster.partition_state(tp).leader_log()
        result = fetch(
            log, log.log_start_offset, max_records=2**31,
            isolation_level=READ_COMMITTED,
        )
        latest: Dict[TopicPartition, Optional[int]] = {p: None for p in partitions}
        wanted = set(partitions)
        for record in result.records:
            group, topic, partition = record.key
            target = TopicPartition(topic, partition)
            if group == group_id and target in wanted:
                latest[target] = record.value
        return latest
