"""Simulated Kafka broker cluster: replicated logs, coordinators, fetch path."""

from repro.broker.partition import TopicPartition, PartitionState
from repro.broker.cluster import Cluster
from repro.broker.fetch import FetchResult

__all__ = ["TopicPartition", "PartitionState", "Cluster", "FetchResult"]
