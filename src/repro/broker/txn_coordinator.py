"""The transaction coordinator (Section 4.2 of the paper).

Each transactional producer registers a *transactional id*; the coordinator
maps the id (by stable hash) to a partition of the internal
``__transaction_state`` topic and keeps that transaction's metadata — state
(Empty / Ongoing / PrepareCommit / PrepareAbort / CompleteCommit /
CompleteAbort), producer id, epoch, and registered partitions — in memory,
persisting every change as a record in the transaction log.

The two-phase commit works exactly as in Figure 4:

1. the producer flushes its writes and calls ``end_transaction``;
2. **phase one** — the coordinator writes ``PrepareCommit`` to the
   transaction log. Once that append is replicated the transaction is
   guaranteed to commit, even if the coordinator crashes immediately after;
3. **phase two** — the coordinator writes commit markers to every partition
   registered in the transaction (data partitions, changelog partitions,
   and the consumer-offsets partition), then records ``CompleteCommit``.

Zombie fencing: registration bumps the producer epoch; markers are written
with the *current* epoch, and partition logs reject appends from older
epochs, so a fenced producer cannot slip data into committed output.

Coordinator failover is modelled by :meth:`recover`, which drops the
in-memory cache and rebuilds it by replaying the transaction log, rolling
forward transactions stuck in ``PrepareCommit`` and aborting ones stuck in
``PrepareAbort``/``Ongoing`` — the behaviour the paper describes for a new
leader of a transaction-log partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.errors import (
    ConcurrentTransactionsError,
    InvalidTxnStateError,
    ProducerFencedError,
)
from repro.broker.partition import TRANSACTION_STATE_TOPIC, TopicPartition
from repro.log.record import (
    ABORT_MARKER,
    COMMIT_MARKER,
    Record,
    RecordBatch,
    control_marker,
)
from repro.util import stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from repro.broker.cluster import Cluster

EMPTY = "Empty"
ONGOING = "Ongoing"
PREPARE_COMMIT = "PrepareCommit"
PREPARE_ABORT = "PrepareAbort"
COMPLETE_COMMIT = "CompleteCommit"
COMPLETE_ABORT = "CompleteAbort"


@dataclass
class TxnMetadata:
    """In-memory (and logged) metadata of one transactional id."""

    transactional_id: str
    producer_id: int
    producer_epoch: int
    state: str = EMPTY
    partitions: Set[TopicPartition] = field(default_factory=set)
    txn_start_ms: float = -1.0
    timeout_ms: float = 60_000.0
    # Guards scheduled (asynchronous) phase-two completions: a scheduled
    # marker write no-ops if the epoch of completions has moved on.
    completion_seq: int = 0
    # Self-rescheduling timeout timer armed while the transaction is
    # Ongoing; runtime-only, never logged.
    abort_timer: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )

    def snapshot(self) -> dict:
        """Serializable form written to the transaction log."""
        return {
            "transactional_id": self.transactional_id,
            "producer_id": self.producer_id,
            "producer_epoch": self.producer_epoch,
            "state": self.state,
            "partitions": sorted(self.partitions),
            "txn_start_ms": self.txn_start_ms,
            "timeout_ms": self.timeout_ms,
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "TxnMetadata":
        return cls(
            transactional_id=snap["transactional_id"],
            producer_id=snap["producer_id"],
            producer_epoch=snap["producer_epoch"],
            state=snap["state"],
            partitions={TopicPartition(t, p) for t, p in snap["partitions"]},
            txn_start_ms=snap["txn_start_ms"],
            timeout_ms=snap["timeout_ms"],
        )


class TransactionCoordinator:
    """Cluster-side transaction management backed by the transaction log."""

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster
        self._txns: Dict[str, TxnMetadata] = {}
        self.markers_written = 0      # metric: phase-two marker appends
        self.log_appends = 0          # metric: txn-log metadata appends

    # -- routing -----------------------------------------------------------------

    def txn_log_partition(self, transactional_id: str) -> TopicPartition:
        meta = self._cluster.topic_metadata(TRANSACTION_STATE_TOPIC)
        index = stable_hash(transactional_id) % meta.num_partitions
        return TopicPartition(TRANSACTION_STATE_TOPIC, index)

    # -- producer registration (Figure 4.b) ------------------------------------

    def init_producer_id(
        self, transactional_id: str, timeout_ms: float = 60_000.0
    ) -> Tuple[int, int]:
        """Register a transactional id; completes any dangling transaction.

        Returns (producer_id, producer_epoch) with the epoch bumped, which
        fences all earlier incarnations.
        """
        txn = self._txns.get(transactional_id)
        if txn is None:
            txn = TxnMetadata(
                transactional_id=transactional_id,
                producer_id=self._cluster.allocate_producer_id(),
                producer_epoch=-1,
                timeout_ms=timeout_ms,
            )
            self._txns[transactional_id] = txn
        # Bump the epoch first so that the markers written while completing a
        # dangling transaction already carry the new epoch — fencing zombie
        # writers on every registered partition immediately.
        txn.producer_epoch += 1
        if txn.state in (PREPARE_COMMIT, PREPARE_ABORT):
            # Mid-phase-two (possibly with marker writes still in flight):
            # drive it to completion synchronously before handing the id
            # to the new incarnation.
            self.force_complete_pending(transactional_id)
        elif txn.state == ONGOING:
            self._transition(txn, PREPARE_ABORT)
            self.force_complete_pending(transactional_id)

        txn.timeout_ms = timeout_ms
        txn.state = EMPTY
        txn.partitions = set()
        txn.txn_start_ms = -1.0
        self._disarm_abort_timer(txn)
        self._persist(txn)
        return txn.producer_id, txn.producer_epoch

    # -- partition registration (Figure 4.c) -------------------------------------

    def add_partitions(
        self,
        transactional_id: str,
        producer_id: int,
        producer_epoch: int,
        partitions: List[TopicPartition],
    ) -> None:
        txn = self._validate(transactional_id, producer_id, producer_epoch)
        if txn.state in (PREPARE_COMMIT, PREPARE_ABORT):
            # The previous transaction's markers are still being written;
            # the producer must wait before starting the next one.
            raise ConcurrentTransactionsError(
                f"{transactional_id}: previous transaction still completing"
            )
        if txn.state not in (EMPTY, ONGOING, COMPLETE_COMMIT, COMPLETE_ABORT):
            raise InvalidTxnStateError(
                f"{transactional_id}: cannot add partitions in state {txn.state}"
            )
        started = txn.state != ONGOING
        if started:
            txn.state = ONGOING
            txn.txn_start_ms = self._cluster.clock.now
            self._arm_abort_timer(txn)
        new = set(partitions) - txn.partitions
        if new or started:
            txn.partitions.update(new)
            self._persist(txn)

    # -- two-phase commit / abort (Figure 4.e/f) -----------------------------------

    def end_transaction(
        self,
        transactional_id: str,
        producer_id: int,
        producer_epoch: int,
        commit: bool,
    ) -> None:
        txn = self._validate(transactional_id, producer_id, producer_epoch)
        if txn.state in (EMPTY, COMPLETE_COMMIT, COMPLETE_ABORT):
            # Nothing was sent since the last completion; committing an
            # empty transaction is a no-op.
            return
        if txn.state in (PREPARE_COMMIT, PREPARE_ABORT):
            # The *previous* transaction's markers are still landing and
            # the new one never registered a partition (it is empty):
            # nothing to do. A non-empty new transaction would have waited
            # in add_partitions on ConcurrentTransactions.
            return
        if txn.state != ONGOING:
            raise InvalidTxnStateError(
                f"{transactional_id}: cannot end transaction in state {txn.state}"
            )
        prepare = PREPARE_COMMIT if commit else PREPARE_ABORT
        self._transition(txn, prepare)  # phase one: the synchronization barrier
        self._complete(txn, COMMIT_MARKER if commit else ABORT_MARKER)

    def abort_timed_out(self) -> List[str]:
        """Abort every ongoing transaction past its timeout (coordinator-
        initiated abort, Section 4.2.2). Returns the aborted ids.

        Timeouts are normally enforced by the self-rescheduling timer armed
        when a transaction starts (:meth:`_arm_abort_timer`), which fires
        as soon as virtual time passes the deadline — no driver needs to
        sweep every cycle. This method remains as an explicit sweep for
        callers that manage time themselves.
        """
        now = self._cluster.clock.now
        aborted = []
        for txn in list(self._txns.values()):
            if txn.state != ONGOING:
                continue
            if now - txn.txn_start_ms < txn.timeout_ms:
                continue
            self._abort_for_timeout(txn)
            aborted.append(txn.transactional_id)
        return aborted

    def _abort_for_timeout(self, txn: TxnMetadata) -> None:
        tracer = self._cluster.tracer
        if tracer.enabled:
            tracer.event(
                "txn.timeout_abort",
                "txn-coordinator",
                txn.transactional_id,
                category="txn",
                started_ms=txn.txn_start_ms,
                timeout_ms=txn.timeout_ms,
            )
        # Bump the epoch so the timed-out producer is fenced when it
        # eventually tries to commit.
        txn.producer_epoch += 1
        self._transition(txn, PREPARE_ABORT)
        self._complete(txn, ABORT_MARKER)

    # -- timeout timers ----------------------------------------------------------------

    def _arm_abort_timer(self, txn: TxnMetadata) -> None:
        """(Re-)arm the transaction-timeout timer at ``start + timeout``.

        Housekeeping (non-wake) timer: it fires whenever simulated time
        actually crosses the deadline, but an otherwise idle driver does
        not fast-forward the run just to expire transactions.
        """
        self._disarm_abort_timer(txn)
        if txn.timeout_ms <= 0:
            return
        clock = self._cluster.clock
        delay = max(0.0, txn.txn_start_ms + txn.timeout_ms - clock.now)
        txn.abort_timer = clock.schedule(
            delay, lambda txn=txn: self._on_abort_timer(txn), wake=False
        )

    def _disarm_abort_timer(self, txn: TxnMetadata) -> None:
        if txn.abort_timer is not None:
            txn.abort_timer.cancel()
            txn.abort_timer = None

    def _on_abort_timer(self, txn: TxnMetadata) -> None:
        txn.abort_timer = None
        if self._txns.get(txn.transactional_id) is not txn:
            return  # superseded by recovery
        if txn.state != ONGOING:
            return
        deadline = txn.txn_start_ms + txn.timeout_ms
        if self._cluster.clock.now < deadline:
            # The deadline moved (a newer transaction started under the
            # same id); re-arm for the remaining window.
            self._arm_abort_timer(txn)
            return
        self._abort_for_timeout(txn)

    # -- failover -------------------------------------------------------------------

    def recover(self) -> None:
        """Drop the in-memory cache and rebuild it from the transaction log,
        completing transactions that were mid-two-phase-commit."""
        self._txns.clear()
        max_pid = 0
        meta = self._cluster.topic_metadata(TRANSACTION_STATE_TOPIC)
        for index in range(meta.num_partitions):
            tp = TopicPartition(TRANSACTION_STATE_TOPIC, index)
            log = self._cluster.partition_state(tp).leader_log()
            for record in log.read(log.log_start_offset, up_to_offset=log.log_end_offset):
                if record.is_control:
                    continue
                txn = TxnMetadata.from_snapshot(record.value)
                self._txns[txn.transactional_id] = txn
                max_pid = max(max_pid, txn.producer_id + 1)
        self._cluster.reserve_producer_id(max_pid)
        for txn in self._txns.values():
            # Transactions past the synchronization barrier are driven to
            # completion; Ongoing ones stay ongoing — their (possibly still
            # live) producer continues or they eventually time out, so the
            # new coordinator re-arms their timeout timers.
            if txn.state in (PREPARE_COMMIT, PREPARE_ABORT):
                self.force_complete_pending(txn.transactional_id)
            elif txn.state == ONGOING:
                self._arm_abort_timer(txn)

    # -- introspection ----------------------------------------------------------------

    def transaction_state(self, transactional_id: str) -> Optional[str]:
        txn = self._txns.get(transactional_id)
        return None if txn is None else txn.state

    def transaction_metadata(self, transactional_id: str) -> Optional[TxnMetadata]:
        return self._txns.get(transactional_id)

    # -- internals ----------------------------------------------------------------------

    def _validate(
        self, transactional_id: str, producer_id: int, producer_epoch: int
    ) -> TxnMetadata:
        txn = self._txns.get(transactional_id)
        if txn is None or txn.producer_id != producer_id:
            raise InvalidTxnStateError(
                f"unknown transactional id / producer id: {transactional_id}"
            )
        if producer_epoch < txn.producer_epoch:
            raise ProducerFencedError(
                f"{transactional_id}: epoch {producer_epoch} fenced by "
                f"{txn.producer_epoch}"
            )
        return txn

    def _transition(self, txn: TxnMetadata, state: str) -> None:
        txn.state = state
        if state != ONGOING:
            self._disarm_abort_timer(txn)
        self._persist(txn)

    def _persist(self, txn: TxnMetadata) -> None:
        """Append the latest metadata to the transaction log (replicated)."""
        tracer = self._cluster.tracer
        if tracer.enabled:
            # Every durable 2PC transition flows through here — synchronous
            # _transition() calls and the scheduled phase-two finishes alike
            # — so one event site covers the whole state machine.
            tracer.event(
                f"txn.{txn.state}",
                "txn-coordinator",
                txn.transactional_id,
                category="txn",
                epoch=txn.producer_epoch,
                partitions=len(txn.partitions),
            )
        tp = self.txn_log_partition(txn.transactional_id)
        record = Record(
            key=txn.transactional_id,
            value=txn.snapshot(),
            timestamp=self._cluster.clock.now,
        )
        network = self._cluster.network
        state = self._cluster.partition_state(tp)
        leader = self._cluster.leader_of(tp)
        network.call(
            "txn_log_append",
            leader,
            lambda: state.append(RecordBatch([record]), acks="all"),
            base_cost_ms=network.coordinator_cost(),
        )
        self.log_appends += 1

    def _complete(self, txn: TxnMetadata, marker_type: str) -> None:
        """Phase two: write markers to every registered partition, then
        record the Complete state.

        Markers are inter-broker appends issued *by the coordinator*, not
        by the client: they do not block the producer's pipeline, but the
        transaction's records only become visible to read-committed
        consumers once the markers land. When the network charges latency,
        marker writes are therefore *scheduled* on the virtual clock —
        batched per destination broker, with a per-marker append cost —
        which is what makes end-to-end latency grow linearly with the
        number of partitions in the transaction (Figure 5.a) while
        throughput barely moves.
        """
        txn.completion_seq += 1
        network = self._cluster.network
        partitions = sorted(txn.partitions)
        done = COMPLETE_COMMIT if marker_type == COMMIT_MARKER else COMPLETE_ABORT

        if not network.charge_latency or not partitions:
            for tp in partitions:
                self._write_marker(tp, txn, marker_type)
            txn.state = done
            txn.partitions = set()
            txn.txn_start_ms = -1.0
            self._persist(txn)
            return

        # Asynchronous completion: one RPC per destination broker, each
        # appending that broker's markers sequentially.
        by_broker: Dict[int, List[TopicPartition]] = {}
        for tp in partitions:
            by_broker.setdefault(self._cluster.leader_of(tp), []).append(tp)
        clock = self._cluster.clock
        seq = txn.completion_seq
        delay = 0.0
        for broker_id in sorted(by_broker):
            delay += network.costs.rpc_base_ms
            for tp in by_broker[broker_id]:
                delay += network.costs.marker_write_ms
                clock.schedule(
                    delay,
                    lambda tp=tp, txn=txn, mt=marker_type, s=seq: (
                        self._write_marker(tp, txn, mt)
                        if txn.completion_seq == s
                        else None
                    ),
                )

        def finish(txn=txn, done=done, s=seq):
            if txn.completion_seq != s:
                return
            txn.state = done
            txn.partitions = set()
            txn.txn_start_ms = -1.0
            self._persist(txn)

        clock.schedule(delay, finish)
        txn.partitions = set(partitions)   # keep until markers land

    def _write_marker(self, tp: TopicPartition, txn: TxnMetadata, marker_type: str) -> None:
        marker = control_marker(
            marker_type,
            txn.producer_id,
            txn.producer_epoch,
            timestamp=self._cluster.clock.now,
        )
        self._cluster.partition_state(tp).append_marker(marker)
        self.markers_written += 1
        tracer = self._cluster.tracer
        if tracer.enabled:
            tracer.event(
                "txn.marker",
                "txn-coordinator",
                txn.transactional_id,
                category="txn",
                marker=marker_type,
                partition=str(tp),
            )

    def force_complete_pending(self, transactional_id: str) -> None:
        """Synchronously finish a transaction whose phase two is still in
        flight (used when a new incarnation registers mid-completion)."""
        txn = self._txns.get(transactional_id)
        if txn is None or txn.state not in (PREPARE_COMMIT, PREPARE_ABORT):
            return
        marker_type = COMMIT_MARKER if txn.state == PREPARE_COMMIT else ABORT_MARKER
        txn.completion_seq += 1   # invalidate scheduled writers
        remaining = sorted(
            tp for tp in txn.partitions
            if txn.producer_id in self._cluster.partition_state(tp)
            .leader_log().open_transactions()
        )
        for tp in remaining:
            self._write_marker(tp, txn, marker_type)
        done = COMPLETE_COMMIT if marker_type == COMMIT_MARKER else COMPLETE_ABORT
        txn.state = done
        txn.partitions = set()
        txn.txn_start_ms = -1.0
        self._persist(txn)
