"""The simulated Kafka cluster.

Owns brokers (failure domains), topics and their replicated partitions, the
group and transaction coordinators, and the shared virtual clock + network.
All RPC entry points used by the clients live here (`handle_produce`,
`handle_fetch`, coordinator accessors); clients reach them *through* the
:class:`~repro.sim.network.Network` so latency and faults apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import READ_COMMITTED, BrokerConfig
from repro.errors import (
    BrokerUnavailableError,
    NotEnoughReplicasError,
    NotLeaderError,
    TopicAlreadyExistsError,
    UnknownTopicOrPartitionError,
)
from repro.broker.fetch import FetchResult, fetch, fetch_columnar
from repro.broker.group_coordinator import GroupCoordinator
from repro.broker.partition import (
    CONSUMER_OFFSETS_TOPIC,
    TRANSACTION_STATE_TOPIC,
    PartitionOffsets,
    PartitionState,
    TopicPartition,
)
from repro.broker.txn_coordinator import TransactionCoordinator
from repro.log.compaction import compact_log
from repro.log.partition_log import AppendResult
from repro.log.record import RecordBatch
from repro.metrics.registry import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sim.clock import SimClock
from repro.sim.network import Network, NetworkCosts


@dataclass
class Broker:
    """A failure domain hosting partition replicas."""

    broker_id: int
    alive: bool = True


@dataclass
class TopicMetadata:
    name: str
    num_partitions: int
    replication_factor: int
    compacted: bool = False
    internal: bool = False


class Cluster:
    """A complete in-process Kafka cluster on a virtual clock."""

    def __init__(
        self,
        num_brokers: int = 3,
        config: Optional[BrokerConfig] = None,
        clock: Optional[SimClock] = None,
        network: Optional[Network] = None,
        seed: int = 17,
        tracer: Optional[Tracer] = None,
        name: str = "cluster",
    ) -> None:
        if num_brokers < 1:
            raise ValueError("need at least one broker")
        # Region/cluster identity: surfaced by federation topologies and
        # IQ routing metadata (cluster-qualified owners); cosmetic for a
        # standalone cluster.
        self.name = name
        self.config = config or BrokerConfig()
        self.config.validate()
        self.clock = clock or SimClock()
        # One registry for brokers and the network, so fault-injection
        # counters land next to the broker counters chaos runs report.
        self.metrics = MetricsRegistry()
        # Always a real (if disabled) tracer on the shared clock, so every
        # component can cache the reference at construction and tracing can
        # be toggled at any point (`cluster.tracer.enabled = True`).
        # None check, not truthiness: an empty Tracer is falsy (__len__).
        self.tracer = Tracer(self.clock) if tracer is None else tracer
        self.network = network or Network(
            self.clock, NetworkCosts(), seed=seed, metrics=self.metrics
        )
        self.network.tracer = self.tracer
        self.brokers: Dict[int, Broker] = {
            i: Broker(broker_id=i) for i in range(num_brokers)
        }
        self.topics: Dict[str, TopicMetadata] = {}
        self._partitions: Dict[TopicPartition, PartitionState] = {}
        self._placement_cursor = 0
        self._next_producer_id = 1
        # Bumped whenever routing facts change (leadership, partition
        # counts); clients key their metadata/leader caches on it.
        self._metadata_epoch = 0
        # Optional RecoveryTracker (repro.obs.recovery). Components feed
        # it recovery milestones with the same cheap guarded idiom as the
        # tracer: ``rec = cluster.recovery; if rec is not None: ...``.
        self.recovery = None
        # Optional HealthMonitor (repro.obs.health), installed by its
        # ``install()``; chaos debug bundles attach its report when set.
        self.health = None

        self.group_coordinator = GroupCoordinator(self)
        self.txn_coordinator = TransactionCoordinator(self)
        self._create_internal_topics()

    def _create_internal_topics(self) -> None:
        self.create_topic(
            CONSUMER_OFFSETS_TOPIC,
            self.config.offsets_topic_partitions,
            compacted=True,
            internal=True,
        )
        self.create_topic(
            TRANSACTION_STATE_TOPIC,
            self.config.transaction_log_partitions,
            compacted=True,
            internal=True,
        )

    # -- producer ids -----------------------------------------------------------------

    def allocate_producer_id(self) -> int:
        """Cluster-unique producer id (idempotent and transactional alike)."""
        pid = self._next_producer_id
        self._next_producer_id += 1
        return pid

    def reserve_producer_id(self, minimum: int) -> None:
        """Ensure future allocations start at or above ``minimum``."""
        self._next_producer_id = max(self._next_producer_id, minimum)

    # -- topics --------------------------------------------------------------------

    def create_topic(
        self,
        name: str,
        num_partitions: int,
        replication_factor: Optional[int] = None,
        compacted: bool = False,
        internal: bool = False,
    ) -> TopicMetadata:
        if name in self.topics:
            raise TopicAlreadyExistsError(name)
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        rf = replication_factor or min(self.config.replication_factor, len(self.brokers))
        rf = min(rf, len(self.brokers))
        meta = TopicMetadata(name, num_partitions, rf, compacted, internal)
        self.topics[name] = meta
        for p in range(num_partitions):
            tp = TopicPartition(name, p)
            broker_ids = self._place_replicas(rf)
            self._partitions[tp] = PartitionState(
                tp,
                broker_ids,
                min_insync_replicas=min(self.config.min_insync_replicas, rf),
                compacted=compacted,
            )
        self._metadata_epoch += 1
        return meta

    def create_partitions(self, name: str, new_partition_count: int) -> TopicMetadata:
        """Grow a topic to ``new_partition_count`` partitions.

        As in Kafka, partitions can only be added, never removed. Bumps the
        metadata epoch so client routing caches stop mapping keys onto the
        old partition count.
        """
        meta = self.topic_metadata(name)
        if new_partition_count <= meta.num_partitions:
            raise ValueError(
                f"{name}: new partition count {new_partition_count} must exceed "
                f"current {meta.num_partitions}"
            )
        for p in range(meta.num_partitions, new_partition_count):
            tp = TopicPartition(name, p)
            broker_ids = self._place_replicas(meta.replication_factor)
            self._partitions[tp] = PartitionState(
                tp,
                broker_ids,
                min_insync_replicas=min(
                    self.config.min_insync_replicas, meta.replication_factor
                ),
                compacted=meta.compacted,
            )
        meta.num_partitions = new_partition_count
        self._metadata_epoch += 1
        return meta

    def _place_replicas(self, rf: int) -> List[int]:
        """Round-robin replica placement across brokers."""
        ids = sorted(self.brokers)
        chosen = []
        for i in range(rf):
            chosen.append(ids[(self._placement_cursor + i) % len(ids)])
        self._placement_cursor += 1
        return chosen

    def topic_metadata(self, name: str) -> TopicMetadata:
        meta = self.topics.get(name)
        if meta is None:
            raise UnknownTopicOrPartitionError(name)
        return meta

    def has_topic(self, name: str) -> bool:
        return name in self.topics

    def partitions_for(self, topic: str) -> List[TopicPartition]:
        meta = self.topic_metadata(topic)
        return [TopicPartition(topic, p) for p in range(meta.num_partitions)]

    def partition_state(self, tp: TopicPartition) -> PartitionState:
        state = self._partitions.get(tp)
        if state is None:
            raise UnknownTopicOrPartitionError(str(tp))
        return state

    def leader_of(self, tp: TopicPartition) -> int:
        leader = self.partition_state(tp).leader
        if leader is None:
            raise BrokerUnavailableError(f"{tp}: no live leader")
        return leader

    @property
    def metadata_epoch(self) -> int:
        """Monotonic version of the cluster's routing facts (leaders and
        partition counts). Client caches are valid only within one epoch."""
        return self._metadata_epoch

    # -- invariant probes (read-only; used by repro.sim.invariants) -----------------

    def partition_states(self) -> Dict[TopicPartition, PartitionState]:
        """Every partition's replica state. Read-only view — do not mutate."""
        return self._partitions

    def user_topics(self) -> List[str]:
        """Topics that are not cluster-internal (``__``-prefixed)."""
        return sorted(name for name, meta in self.topics.items() if not meta.internal)

    def is_broker_alive(self, broker_id: int) -> bool:
        return self.brokers[broker_id].alive

    def transfer_leadership(self, tp: TopicPartition) -> Optional[int]:
        """Move leadership of ``tp`` to another in-sync replica (preferred
        leader election / controlled churn). Returns the new leader id, or
        ``None`` when no other ISR member exists. Only ISR members are
        eligible — they hold every acked record, so no data moves."""
        state = self.partition_state(tp)
        candidates = sorted(state.isr - ({state.leader} if state.leader is not None else set()))
        if not candidates:
            return None
        old = state.leader
        state.leader = candidates[0]
        self._metadata_epoch += 1
        if self.tracer.enabled:
            self.tracer.event(
                "partition.leader_change",
                f"broker-{state.leader}",
                str(tp),
                category="lifecycle",
                previous=old,
            )
        return state.leader

    # -- tracing ---------------------------------------------------------------------

    def enable_tracing(self) -> Tracer:
        """Switch the cluster-wide tracer on; returns it for convenience."""
        self.tracer.enabled = True
        return self.tracer

    # -- RPC handlers (called through the Network by clients) -----------------------

    def handle_produce(
        self, tp: TopicPartition, batch: RecordBatch, acks: str = "all"
    ) -> AppendResult:
        try:
            result = self.partition_state(tp).append(batch, acks=acks)
        except NotEnoughReplicasError:
            # Surface under-replicated rejections: chaos runs and the
            # min-ISR tests observe how often acks=all writes were refused.
            self.metrics.counter("broker.not_enough_replicas").increment()
            raise
        if not result.duplicate:
            self.metrics.counter("broker.produced_records").increment(
                batch.record_count
            )
        return result

    def handle_fetch(
        self,
        tp: TopicPartition,
        from_offset: int,
        max_records: int,
        isolation_level: str,
    ) -> FetchResult:
        log = self.partition_state(tp).leader_log()
        result = fetch(log, from_offset, max_records, isolation_level)
        if result.records:
            self.metrics.counter("broker.fetched_records").increment(
                len(result.records)
            )
        return result

    def handle_fetch_replica(
        self,
        tp: TopicPartition,
        broker_id: int,
        from_offset: int,
        max_records: int,
        isolation_level: str,
    ) -> FetchResult:
        """Fetch from a *specific* in-sync replica (KIP-392-style follower
        read), used by the gray-failure hedge when the leader is demoted.

        Only ISR members serve: their logs hold every acked record and —
        since followers mirror the leader's index state — the same
        high-watermark/LSO bounds, so a follower read never returns
        uncommitted or unreplicated data."""
        state = self.partition_state(tp)
        if not self.brokers[broker_id].alive:
            raise BrokerUnavailableError(f"broker {broker_id} is down (fetch)")
        if broker_id not in state.isr:
            raise NotLeaderError(
                f"{tp}: broker {broker_id} is not in the ISR; cannot serve reads"
            )
        result = fetch(state.replicas[broker_id], from_offset, max_records,
                       isolation_level)
        if result.records:
            self.metrics.counter("broker.fetched_records").increment(
                len(result.records)
            )
            self.metrics.counter("broker.follower_reads").increment()
        return result

    def handle_fetch_columnar(
        self,
        tp: TopicPartition,
        from_offset: int,
        max_records: int,
        isolation_level: str,
    ):
        """Columnar fetch: returns a ColumnarBatch (slice + validity runs)
        instead of materialized records."""
        log = self.partition_state(tp).leader_log()
        batch = fetch_columnar(log, from_offset, max_records, isolation_level)
        if batch.valid_count:
            self.metrics.counter("broker.fetched_records").increment(
                batch.valid_count
            )
        return batch

    def end_offset(self, tp: TopicPartition, isolation_level: str) -> int:
        """The offset a new consumer with ``latest`` reset would start from."""
        log = self.partition_state(tp).leader_log()
        if isolation_level == READ_COMMITTED:
            return log.last_stable_offset
        return log.high_watermark

    def partition_offsets(self, tp: TopicPartition) -> PartitionOffsets:
        """The partition's offset landmarks (lag bookkeeping reads these)."""
        return self.partition_state(tp).watermarks()

    def delete_records(self, tp: TopicPartition, before_offset: int) -> int:
        """Purge records below ``before_offset`` (repartition-topic cleanup)."""
        state = self.partition_state(tp)
        removed = state.leader_log().delete_records_before(before_offset)
        for broker_id, log in state.replicas.items():
            if broker_id != state.leader:
                log.delete_records_before(before_offset)
        return removed

    def run_compaction(self) -> Dict[TopicPartition, int]:
        """Compact every compacted topic's partitions; returns removals."""
        removed = {}
        for tp, state in self._partitions.items():
            if not state.compacted or state.leader is None:
                continue
            n = compact_log(state.leader_log())
            if n:
                removed[tp] = n
        return removed

    # -- failure handling -------------------------------------------------------------

    def crash_broker(self, broker_id: int) -> None:
        """Fail a broker: partitions it led elect new leaders from the ISR;
        coordinators whose log partitions moved rebuild from the logs."""
        broker = self.brokers[broker_id]
        if not broker.alive:
            return
        broker.alive = False
        self.network.set_broker_down(broker_id)
        self._metadata_epoch += 1
        if self.tracer.enabled:
            self.tracer.event(
                "broker.crash", f"broker-{broker_id}", "lifecycle",
                category="fault",
            )
        coordinator_moved = False
        for tp, state in self._partitions.items():
            was_leader = state.leader == broker_id
            state.on_broker_failure(broker_id)
            if was_leader and tp.topic == TRANSACTION_STATE_TOPIC:
                coordinator_moved = True
        if coordinator_moved:
            # The new leader replica of the moved transaction-log partition
            # becomes the coordinator: replay the log to rebuild state and
            # complete in-flight transactions (Section 4.2.1).
            self.txn_coordinator.recover()

    def restart_broker(self, broker_id: int) -> None:
        broker = self.brokers[broker_id]
        if broker.alive:
            return
        broker.alive = True
        self.network.set_broker_down(broker_id, down=False)
        self._metadata_epoch += 1
        if self.tracer.enabled:
            self.tracer.event(
                "broker.restart", f"broker-{broker_id}", "lifecycle",
                category="fault",
            )
        for state in self._partitions.values():
            state.on_broker_restart(broker_id)

    def alive_brokers(self) -> List[int]:
        return sorted(b.broker_id for b in self.brokers.values() if b.alive)
