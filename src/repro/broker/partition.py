"""Topic partitions and their replica sets.

A :class:`PartitionState` owns one replica :class:`~repro.log.PartitionLog`
per assigned broker, tracks the leader and the in-sync replica set (ISR),
and implements the replication contract of Section 4 of the paper: a record
acknowledged with ``acks=all`` is replicated to every in-sync replica before
the acknowledgement, so the partition survives n−1 broker failures without
losing acknowledged data.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set

from repro.errors import (
    NotEnoughReplicasError,
    NotLeaderError,
)
from repro.log.partition_log import AppendResult, PartitionLog
from repro.log.record import Record, RecordBatch


class TopicPartition(NamedTuple):
    """Identifies one partition of one topic."""

    topic: str
    partition: int

    def __repr__(self) -> str:
        return f"{self.topic}-{self.partition}"


# Internal topic naming (matches Kafka's conventions).
CONSUMER_OFFSETS_TOPIC = "__consumer_offsets"
TRANSACTION_STATE_TOPIC = "__transaction_state"


def repartition_topic(application_id: str, name: str) -> str:
    return f"{application_id}-{name}-repartition"


def changelog_topic(application_id: str, store_name: str) -> str:
    return f"{application_id}-{store_name}-changelog"


def is_internal_topic(topic: str) -> bool:
    return topic.startswith("__")


class PartitionOffsets(NamedTuple):
    """One partition's offset landmarks, as of one virtual instant.

    ``log_end`` is the leader's append cursor, ``high_watermark`` the
    replication frontier visible to read-uncommitted readers, and
    ``last_stable_offset`` the transaction frontier visible to
    read-committed readers. ``log_start`` moves with retention deletes.
    """

    log_start: int
    log_end: int
    high_watermark: int
    last_stable_offset: int


class PartitionState:
    """Replica set, leadership, and ISR for one topic partition."""

    def __init__(
        self,
        tp: TopicPartition,
        broker_ids: List[int],
        min_insync_replicas: int = 1,
        compacted: bool = False,
    ) -> None:
        if not broker_ids:
            raise ValueError("a partition needs at least one replica")
        self.tp = tp
        self.replicas: Dict[int, PartitionLog] = {
            b: PartitionLog(name=f"{tp}@{b}") for b in broker_ids
        }
        self.leader: Optional[int] = broker_ids[0]
        self.isr: Set[int] = set(broker_ids)
        self.min_insync_replicas = min_insync_replicas
        self.compacted = compacted
        # Clean-election bookkeeping: when the whole ISR is gone, only the
        # replicas that were in the ISR at that moment hold every acked
        # record and may lead again. Others wait (no unclean election).
        self._eligible_leaders: Set[int] = set()
        self._waiting_replicas: Set[int] = set()

    # -- leadership ------------------------------------------------------------

    def leader_log(self) -> PartitionLog:
        if self.leader is None:
            raise NotLeaderError(f"{self.tp}: no leader available")
        return self.replicas[self.leader]

    def watermarks(self) -> PartitionOffsets:
        """The leader's offset landmarks (raises while leaderless)."""
        log = self.leader_log()
        return PartitionOffsets(
            log_start=log.log_start_offset,
            log_end=log.log_end_offset,
            high_watermark=log.high_watermark,
            last_stable_offset=log.last_stable_offset,
        )

    def on_broker_failure(self, broker_id: int) -> None:
        """Remove the broker from the ISR; elect a new leader if needed."""
        if broker_id not in self.replicas:
            return
        was_last_insync = self.isr == {broker_id}
        self.isr.discard(broker_id)
        self._waiting_replicas.discard(broker_id)
        if was_last_insync:
            # The partition is now fully unavailable; remember who is
            # allowed to lead when brokers return.
            self._eligible_leaders = {broker_id}
        if self.leader == broker_id:
            self._elect_leader()

    def on_broker_restart(self, broker_id: int) -> None:
        """Bring a restarted broker's replica back in sync and into the ISR."""
        if broker_id not in self.replicas:
            return
        if self.leader is None:
            if broker_id not in self._eligible_leaders:
                # Clean election only: this replica was already out of the
                # ISR when the partition went down, so it may be missing
                # acked records. It waits for an eligible leader.
                self._waiting_replicas.add(broker_id)
                return
            # The returning replica held every acked record when the
            # partition went down; it leads, and replicas that returned
            # earlier catch up from it now.
            self.leader = broker_id
            self.isr = {broker_id}
            self._eligible_leaders = set()
            for waiting in sorted(self._waiting_replicas):
                self._truncate_divergence(waiting)
                self._sync_follower(waiting)
                self.isr.add(waiting)
            self._waiting_replicas.clear()
            return
        # The returning replica may have diverged (e.g. it led briefly with
        # unacked appends). Truncate to its longest common prefix with the
        # current leader before catching up — the in-memory equivalent of
        # Kafka's leader-epoch-based truncation.
        self._truncate_divergence(broker_id)
        self._sync_follower(broker_id)
        self.isr.add(broker_id)

    def _truncate_divergence(self, broker_id: int) -> None:
        leader_log = self.leader_log()
        follower = self.replicas[broker_id]
        start = max(follower.log_start_offset, leader_log.log_start_offset)
        end = min(follower.log_end_offset, leader_log.log_end_offset)
        follower_records = {r.offset: r for r in follower.records()}
        leader_records = {r.offset: r for r in leader_log.records()}
        for offset in range(start, end):
            if follower_records.get(offset) != leader_records.get(offset):
                follower.truncate_to(offset)
                return
        follower.truncate_to(end)

    def _elect_leader(self) -> None:
        """Prefer an in-sync replica (clean election)."""
        candidates = sorted(self.isr)
        if candidates:
            self.leader = candidates[0]
        else:
            self.leader = None

    # -- appends ------------------------------------------------------------------

    def append(self, batch: RecordBatch, acks: str = "all") -> AppendResult:
        """Append on the leader and replicate.

        ``acks="all"`` replicates synchronously to every in-sync follower
        and advances the high watermark before returning (the paper's
        durability contract). ``acks="1"`` returns after the leader append;
        the data is exposed only after a later replication round.
        """
        if acks == "all" and len(self.isr) < self.min_insync_replicas:
            raise NotEnoughReplicasError(
                f"{self.tp}: ISR {sorted(self.isr)} below min "
                f"{self.min_insync_replicas}"
            )
        leader_log = self.leader_log()
        result = leader_log.append_batch(batch)
        if acks == "all":
            self.replicate()
        return result

    def append_marker(self, marker: Record) -> int:
        """Append a transaction marker on the leader and replicate it."""
        offset = self.leader_log().append_marker(marker)
        self.replicate()
        return offset

    def replicate(self) -> None:
        """Follower fetch round: copy new leader records to in-sync
        followers and advance the high watermark to min(ISR log ends)."""
        leader_log = self.leader_log()
        for broker_id in self.isr:
            if broker_id == self.leader:
                continue
            self._sync_follower(broker_id)
        self._advance_high_watermark()

    def _sync_follower(self, broker_id: int) -> None:
        leader_log = self.leader_log()
        follower = self.replicas[broker_id]
        if follower.log_end_offset < leader_log.log_start_offset:
            # The records the follower is missing were already deleted on
            # the leader (e.g. repartition-topic purging): full resync from
            # the leader's earliest retained offset.
            follower.reset_to(leader_log.log_start_offset)
        if follower.log_end_offset > leader_log.log_end_offset:
            # The follower diverged (e.g. it briefly led with unacked
            # appends); truncate to the leader.
            follower.truncate_to(leader_log.log_end_offset)
        if follower.log_end_offset < leader_log.log_end_offset:
            # Mirror the leader's records and index state by slice — the
            # follower is a prefix of the leader at this point (truncated/
            # reset above), so no per-record metadata walk is needed.
            follower.replicate_mirror(leader_log)
        follower.high_watermark = leader_log.high_watermark
        follower.log_start_offset = leader_log.log_start_offset

    def _advance_high_watermark(self) -> None:
        leader_log = self.leader_log()
        ends = [self.replicas[b].log_end_offset for b in self.isr]
        hw = min(ends) if ends else leader_log.log_end_offset
        if hw > leader_log.high_watermark:
            leader_log.high_watermark = hw
            for broker_id in self.isr:
                self.replicas[broker_id].high_watermark = hw
