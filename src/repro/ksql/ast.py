"""AST node types for the ksql dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional


# --- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    name: str               # "ROWKEY" refers to the record key


@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class BinaryOp:
    op: str                 # = != < <= > >= + - * / AND OR
    left: Any
    right: Any


@dataclass(frozen=True)
class FunctionCall:
    name: str               # COUNT SUM AVG MIN MAX (aggregates only)
    argument: Optional[Any]  # None for COUNT(*)


@dataclass(frozen=True)
class Projection:
    expression: Any
    alias: Optional[str] = None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        if isinstance(self.expression, FunctionCall):
            arg = (
                self.expression.argument.name
                if isinstance(self.expression.argument, ColumnRef)
                else "expr"
            )
            return f"{self.expression.name.lower()}_{arg}".lower()
        return "expr"


# --- window specs -------------------------------------------------------------


@dataclass(frozen=True)
class WindowSpec:
    kind: str               # TUMBLING | HOPPING | SESSION
    size_ms: float = 0.0    # gap for SESSION
    advance_ms: Optional[float] = None
    grace_ms: Optional[float] = None


# --- statements -----------------------------------------------------------------


@dataclass(frozen=True)
class CreateSource:
    """CREATE STREAM/TABLE name WITH (KAFKA_TOPIC=..., PARTITIONS=...)."""

    name: str
    kind: str               # STREAM | TABLE
    topic: str
    partitions: int = 1


@dataclass(frozen=True)
class JoinClause:
    """[LEFT] JOIN <table> ON <stream_column> = <table_name>.ROWKEY"""

    table: str
    stream_column: ColumnRef
    left: bool = False


@dataclass(frozen=True)
class SelectQuery:
    projections: List[Projection]
    source: str
    where: Optional[Any] = None
    group_by: Optional[ColumnRef] = None
    window: Optional[WindowSpec] = None
    join: Optional[JoinClause] = None
    partition_by: Optional[ColumnRef] = None
    # A bare SELECT is a statement of its own: without EMIT CHANGES it is
    # a *pull* query (one-shot lookup against a materialized table);
    # with EMIT CHANGES it is a *push* query (a standing subscription).
    emit_changes: bool = False


@dataclass(frozen=True)
class CreateAsSelect:
    """CREATE STREAM/TABLE name [WITH(...)] AS SELECT ..."""

    name: str
    kind: str               # STREAM | TABLE
    query: SelectQuery
    topic: Optional[str] = None
    partitions: Optional[int] = None


@dataclass(frozen=True)
class DropStatement:
    name: str
