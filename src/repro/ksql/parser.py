"""Tokenizer + recursive-descent parser for the ksql dialect.

Supported grammar (case-insensitive keywords; `--` line comments):

    CREATE STREAM name WITH (KAFKA_TOPIC='t' [, PARTITIONS=n]) ;
    CREATE TABLE  name WITH (KAFKA_TOPIC='t' [, PARTITIONS=n]) ;

    CREATE STREAM name [WITH (...)] AS
        SELECT proj [, proj ...] FROM source
        [LEFT] JOIN table ON source_col = table.ROWKEY
        [WHERE condition]
        [PARTITION BY col] ;

    CREATE TABLE name [WITH (...)] AS
        SELECT proj [, proj ...] FROM source
        [WHERE condition]
        [WINDOW TUMBLING (SIZE n MILLISECONDS [, GRACE n MILLISECONDS])
        |WINDOW HOPPING  (SIZE n MILLISECONDS, ADVANCE BY n MILLISECONDS [, GRACE ...])
        |WINDOW SESSION  (n MILLISECONDS [, GRACE ...])]
        GROUP BY col
        [EMIT CHANGES] ;

    DROP QUERY name ;

    SELECT proj [, proj ...] FROM query_name
        [WHERE condition] [EMIT CHANGES] ;     -- pull / push query

Projections: column, ROWKEY, `*`, literals, arithmetic (+ - * /), AS
aliases, aggregates COUNT(*) / COUNT(col) / SUM / AVG / MIN / MAX.
Conditions: comparisons (= != <> < <= > >=) combined with AND / OR / NOT.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional

from repro.ksql.ast import (
    BinaryOp,
    ColumnRef,
    CreateAsSelect,
    CreateSource,
    DropStatement,
    FunctionCall,
    JoinClause,
    Literal,
    Projection,
    SelectQuery,
    WindowSpec,
)


class KsqlParseError(Exception):
    """The statement is not valid ksql-lite."""


_TOKEN_RE = re.compile(
    r"""
    \s+
  | --[^\n]*
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9.]*)
  | (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|;|\*|\+|-|/)
    """,
    re.VERBOSE,
)

AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}

_TIME_UNITS = {
    "MILLISECONDS": 1.0,
    "MILLISECOND": 1.0,
    "SECONDS": 1000.0,
    "SECOND": 1000.0,
    "MINUTES": 60_000.0,
    "MINUTE": 60_000.0,
    "HOURS": 3_600_000.0,
    "HOUR": 3_600_000.0,
}


def tokenize(sql: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise KsqlParseError(
                f"unexpected character {sql[position]!r} at offset {position}"
            )
        position = match.end()
        for group in ("string", "number", "ident", "op"):
            text = match.group(group)
            if text is not None:
                tokens.append(text)
                break
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ---------------------------------------------------------

    def peek(self) -> Optional[str]:
        if self.position >= len(self.tokens):
            return None
        return self.tokens[self.position]

    def peek_upper(self) -> Optional[str]:
        token = self.peek()
        return token.upper() if token is not None else None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise KsqlParseError("unexpected end of statement")
        self.position += 1
        return token

    def expect(self, keyword: str) -> str:
        token = self.advance()
        if token.upper() != keyword.upper():
            raise KsqlParseError(f"expected {keyword!r}, got {token!r}")
        return token

    def accept(self, keyword: str) -> bool:
        if self.peek_upper() == keyword.upper():
            self.advance()
            return True
        return False

    def identifier(self) -> str:
        token = self.advance()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token):
            raise KsqlParseError(f"expected identifier, got {token!r}")
        return token

    # -- statements -----------------------------------------------------------------

    def statement(self):
        keyword = self.peek_upper()
        if keyword == "CREATE":
            return self._create()
        if keyword == "SELECT":
            # A bare SELECT is a pull query (or, with EMIT CHANGES, a push
            # query) against a running persistent query's state.
            query = self._select()
            self.accept(";")
            return query
        if keyword == "DROP":
            self.advance()
            self.expect("QUERY")
            name = self.identifier()
            self.accept(";")
            return DropStatement(name)
        raise KsqlParseError(f"unsupported statement start: {keyword!r}")

    def _create(self):
        self.expect("CREATE")
        kind = self.advance().upper()
        if kind not in ("STREAM", "TABLE"):
            raise KsqlParseError(f"expected STREAM or TABLE, got {kind!r}")
        name = self.identifier()
        topic = None
        partitions = None
        if self.peek_upper() == "WITH":
            topic, partitions = self._with_clause()
        if self.accept("AS"):
            query = self._select()
            self.accept(";")
            return CreateAsSelect(
                name=name, kind=kind, query=query,
                topic=topic, partitions=partitions,
            )
        if topic is None:
            raise KsqlParseError(
                "CREATE without AS SELECT requires WITH (KAFKA_TOPIC=...)"
            )
        self.accept(";")
        return CreateSource(
            name=name, kind=kind, topic=topic, partitions=partitions or 1
        )

    def _with_clause(self):
        self.expect("WITH")
        self.expect("(")
        topic = None
        partitions = None
        while True:
            key = self.identifier().upper()
            self.expect("=")
            value = self.advance()
            if key == "KAFKA_TOPIC":
                topic = self._string_value(value)
            elif key == "PARTITIONS":
                partitions = int(value)
            else:
                raise KsqlParseError(f"unknown WITH property: {key}")
            if not self.accept(","):
                break
        self.expect(")")
        return topic, partitions

    @staticmethod
    def _string_value(token: str) -> str:
        if not (token.startswith("'") and token.endswith("'")):
            raise KsqlParseError(f"expected a quoted string, got {token!r}")
        return token[1:-1].replace("''", "'")

    # -- SELECT ------------------------------------------------------------------------

    def _select(self) -> SelectQuery:
        self.expect("SELECT")
        projections = [self._projection()]
        while self.accept(","):
            projections.append(self._projection())
        self.expect("FROM")
        source = self.identifier()

        join = None
        left = False
        if self.peek_upper() in ("JOIN", "LEFT"):
            if self.accept("LEFT"):
                left = True
            self.expect("JOIN")
            table = self.identifier()
            self.expect("ON")
            join_left = self._primary()
            self.expect("=")
            join_right = self._primary()
            join = self._make_join(table, join_left, join_right, left)

        where = None
        if self.accept("WHERE"):
            where = self._condition()
        window = None
        if self.accept("WINDOW"):
            window = self._window()
        group_by = None
        if self.accept("GROUP"):
            self.expect("BY")
            group_by = ColumnRef(self.identifier())
        partition_by = None
        if self.accept("PARTITION"):
            self.expect("BY")
            partition_by = ColumnRef(self.identifier())
        emit_changes = False
        if self.accept("EMIT"):
            self.expect("CHANGES")
            emit_changes = True
        return SelectQuery(
            projections=projections,
            source=source,
            where=where,
            group_by=group_by,
            window=window,
            join=join,
            partition_by=partition_by,
            emit_changes=emit_changes,
        )

    def _make_join(self, table, a, b, left) -> JoinClause:
        def is_rowkey_of(expr, name):
            return isinstance(expr, ColumnRef) and expr.name.upper() == f"{name.upper()}.ROWKEY"

        if is_rowkey_of(b, table) and isinstance(a, ColumnRef):
            return JoinClause(table=table, stream_column=a, left=left)
        if is_rowkey_of(a, table) and isinstance(b, ColumnRef):
            return JoinClause(table=table, stream_column=b, left=left)
        raise KsqlParseError(
            "joins must equate a stream column with <table>.ROWKEY"
        )

    def _projection(self) -> Projection:
        if self.peek() == "*":
            # SELECT *: every column of the source row (pull/push queries).
            self.advance()
            return Projection(expression=ColumnRef("*"))
        expression = self._expression()
        alias = None
        if self.accept("AS"):
            alias = self.identifier()
        return Projection(expression=expression, alias=alias)

    def _window(self) -> WindowSpec:
        kind = self.advance().upper()
        if kind not in ("TUMBLING", "HOPPING", "SESSION"):
            raise KsqlParseError(f"unknown window kind: {kind}")
        self.expect("(")
        size = None
        advance = None
        grace = None
        if kind == "SESSION":
            size = self._duration()
        while self.peek() != ")":
            keyword = self.advance().upper()
            if keyword == ",":
                continue
            if keyword == "SIZE":
                size = self._duration()
            elif keyword == "ADVANCE":
                self.expect("BY")
                advance = self._duration()
            elif keyword == "GRACE":
                self.accept("PERIOD")
                grace = self._duration()
            else:
                raise KsqlParseError(f"unexpected token in window spec: {keyword}")
        self.expect(")")
        if size is None:
            raise KsqlParseError("window requires a SIZE")
        return WindowSpec(kind=kind, size_ms=size, advance_ms=advance, grace_ms=grace)

    def _duration(self) -> float:
        amount = float(self.advance())
        unit = self.advance().upper()
        if unit not in _TIME_UNITS:
            raise KsqlParseError(f"unknown time unit: {unit}")
        return amount * _TIME_UNITS[unit]

    # -- expressions ------------------------------------------------------------------------

    def _condition(self):
        return self._or()

    def _or(self):
        node = self._and()
        while self.peek_upper() == "OR":
            self.advance()
            node = BinaryOp("OR", node, self._and())
        return node

    def _and(self):
        node = self._not()
        while self.peek_upper() == "AND":
            self.advance()
            node = BinaryOp("AND", node, self._not())
        return node

    def _not(self):
        if self.peek_upper() == "NOT":
            self.advance()
            return BinaryOp("=", self._not(), Literal(False))
        return self._comparison()

    def _comparison(self):
        node = self._expression()
        op = self.peek()
        if op in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self.advance()
            right = self._expression()
            return BinaryOp("!=" if op == "<>" else op, node, right)
        return node

    def _expression(self):
        node = self._term()
        while self.peek() in ("+", "-"):
            op = self.advance()
            node = BinaryOp(op, node, self._term())
        return node

    def _term(self):
        node = self._primary()
        while self.peek() in ("*", "/"):
            op = self.advance()
            node = BinaryOp(op, node, self._primary())
        return node

    def _primary(self):
        token = self.advance()
        upper = token.upper()
        if token == "(":
            node = self._condition()
            self.expect(")")
            return node
        if token.startswith("'"):
            return Literal(self._string_value(token))
        if re.fullmatch(r"\d+(\.\d+)?", token):
            return Literal(float(token) if "." in token else int(token))
        if upper in ("TRUE", "FALSE"):
            return Literal(upper == "TRUE")
        if upper == "NULL":
            return Literal(None)
        if upper in AGGREGATES and self.peek() == "(":
            self.advance()
            if self.accept("*"):
                argument = None
            else:
                argument = self._expression()
            self.expect(")")
            return FunctionCall(upper, argument)
        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9.]*", token):
            return ColumnRef(token)
        raise KsqlParseError(f"unexpected token: {token!r}")


def parse(sql: str):
    """Parse one or more ';'-separated statements; returns a list."""
    tokens = tokenize(sql)
    parser = _Parser(tokens)
    statements = []
    while parser.peek() is not None:
        statements.append(parser.statement())
    if not statements:
        raise KsqlParseError("empty statement")
    return statements
