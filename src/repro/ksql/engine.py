"""The ksql engine: catalog, query lifecycle, and execution.

Every persistent query (CREATE ... AS SELECT) runs as its own Kafka
Streams application against the shared cluster — the deployment model the
paper attributes to ksqlDB. The engine steps all running queries
cooperatively and exposes their materialized state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.broker.cluster import Cluster
from repro.config import EXACTLY_ONCE, StreamsConfig
from repro.ksql.ast import CreateAsSelect, CreateSource, DropStatement
from repro.ksql.compiler import CompiledQuery, Compiler, SourceInfo
from repro.ksql.parser import KsqlParseError, parse
from repro.sim.scheduler import Driver
from repro.streams import KafkaStreams


@dataclass
class QueryHandle:
    """A running persistent query."""

    name: str
    statement: CreateAsSelect
    app: KafkaStreams
    compiled: CompiledQuery

    def table_contents(self) -> Dict[Any, Any]:
        """Materialized, finalized result of a CTAS query (empty for CSAS).

        Window-store keys are (group key, window start) tuples; plain
        aggregations are keyed by the group key."""
        if self.compiled.table_store is None:
            return {}
        raw = self.app.store_contents(self.compiled.table_store)
        finalize = self.compiled.finalizer
        if finalize is None:
            return raw
        window = self.statement.query.window
        if window is not None and window.kind == "SESSION":
            # Session stores hold (session last-timestamp, state) values.
            return {
                key: finalize(key, state)
                for key, (_last_ts, state) in raw.items()
            }
        return {key: finalize(key, state) for key, state in raw.items()}


class KsqlEngine:
    """Executes ksql statements against a simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        processing_guarantee: str = EXACTLY_ONCE,
        commit_interval_ms: float = 100.0,
    ) -> None:
        self.cluster = cluster
        self.processing_guarantee = processing_guarantee
        self.commit_interval_ms = commit_interval_ms
        self.catalog: Dict[str, SourceInfo] = {}
        self.queries: Dict[str, QueryHandle] = {}
        self._compiler = Compiler(self.catalog)
        # Each query's KafkaStreams app registers here, so every running
        # query shares one deterministic timeline (queries feed each other
        # through topics, and idle gaps jump to the next commit deadline).
        self._driver = Driver(cluster.clock)

    # -- statement execution -----------------------------------------------------------

    def execute(self, sql: str) -> List[Any]:
        """Execute one or more statements; returns per-statement results
        (SourceInfo, QueryHandle, or the dropped query's name)."""
        results = []
        for statement in parse(sql):
            if isinstance(statement, CreateSource):
                results.append(self._create_source(statement))
            elif isinstance(statement, CreateAsSelect):
                results.append(self._create_query(statement))
            elif isinstance(statement, DropStatement):
                results.append(self._drop_query(statement.name))
            else:  # pragma: no cover - parser only emits the above
                raise KsqlParseError(f"unsupported statement: {statement}")
        return results

    def _create_source(self, statement: CreateSource) -> SourceInfo:
        key = statement.name.lower()
        if key in self.catalog:
            raise KsqlParseError(f"{statement.name} already exists")
        if not self.cluster.has_topic(statement.topic):
            self.cluster.create_topic(statement.topic, statement.partitions)
        partitions = self.cluster.topic_metadata(statement.topic).num_partitions
        info = SourceInfo(
            name=statement.name,
            kind=statement.kind,
            topic=statement.topic,
            partitions=partitions,
        )
        self.catalog[key] = info
        return info

    def _create_query(self, statement: CreateAsSelect) -> QueryHandle:
        key = statement.name.lower()
        if key in self.catalog or key in self.queries:
            raise KsqlParseError(f"{statement.name} already exists")
        compiled = self._compiler.compile(statement)
        if not self.cluster.has_topic(compiled.sink_topic):
            self.cluster.create_topic(
                compiled.sink_topic, compiled.sink_partitions
            )
        app = KafkaStreams(
            compiled.builder.build(),
            self.cluster,
            StreamsConfig(
                application_id=f"ksql-{key}",
                processing_guarantee=self.processing_guarantee,
                commit_interval_ms=self.commit_interval_ms,
            ),
        )
        app.start(1)
        self._driver.register(app)
        handle = QueryHandle(
            name=statement.name, statement=statement, app=app, compiled=compiled
        )
        self.queries[key] = handle
        # The query's sink is itself a stream/table other queries may read.
        self.catalog[key] = SourceInfo(
            name=statement.name,
            kind=statement.kind,
            topic=compiled.sink_topic,
            partitions=compiled.sink_partitions,
        )
        return handle

    def _drop_query(self, name: str) -> str:
        key = name.lower()
        handle = self.queries.pop(key, None)
        if handle is None:
            raise KsqlParseError(f"unknown query: {name}")
        self._driver.unregister(handle.app)
        handle.app.close()
        self.catalog.pop(key, None)
        return name

    # -- driving ---------------------------------------------------------------------------

    def query(self, name: str) -> QueryHandle:
        handle = self.queries.get(name.lower())
        if handle is None:
            raise KsqlParseError(f"unknown query: {name}")
        return handle

    def step(self) -> int:
        processed = 0
        for handle in self.queries.values():
            processed += handle.app.step()
        return processed

    # Actor protocol: an engine full of queries is itself one pollable
    # work source, so a ksql engine can share a Driver with standalone
    # Streams apps or the checkpoint baseline on the same cluster.
    def poll(self) -> int:
        return self.step()

    def flush(self) -> None:
        for handle in self.queries.values():
            handle.app.commit_all()

    @property
    def driver(self) -> Driver:
        return self._driver

    def run_until_idle(self, max_steps: int = 10_000) -> int:
        """Drive all queries (they feed each other through topics) until
        nothing moves, jumping idle gaps to the next commit deadline."""
        return self._driver.run_until_idle(max_cycles=max_steps)

    def close(self) -> None:
        for key in list(self.queries):
            self._drop_query(key)
