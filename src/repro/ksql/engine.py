"""The ksql engine: catalog, query lifecycle, and execution.

Every persistent query (CREATE ... AS SELECT) runs as its own Kafka
Streams application against the shared cluster — the deployment model the
paper attributes to ksqlDB. The engine steps all running queries
cooperatively and exposes their materialized state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.broker.cluster import Cluster
from repro.config import EXACTLY_ONCE, StreamsConfig
from repro.ksql.ast import (
    BinaryOp,
    ColumnRef,
    CreateAsSelect,
    CreateSource,
    DropStatement,
    Literal,
    SelectQuery,
)
from repro.ksql.compiler import CompiledQuery, Compiler, SourceInfo
from repro.ksql.evaluator import evaluate
from repro.ksql.parser import KsqlParseError, parse
from repro.sim.scheduler import Driver
from repro.streams import KafkaStreams


@dataclass
class QueryHandle:
    """A running persistent query."""

    name: str
    statement: CreateAsSelect
    app: KafkaStreams
    compiled: CompiledQuery

    def table_contents(self) -> Dict[Any, Any]:
        """Materialized, finalized result of a CTAS query (empty for CSAS).

        Window-store keys are (group key, window start) tuples; plain
        aggregations are keyed by the group key."""
        if self.compiled.table_store is None:
            return {}
        raw = self.app.store_contents(self.compiled.table_store)
        finalize = self.compiled.finalizer
        if finalize is None:
            return raw
        window = self.statement.query.window
        if window is not None and window.kind == "SESSION":
            # Session stores hold (session last-timestamp, state) values.
            return {
                key: finalize(key, state)
                for key, (_last_ts, state) in raw.items()
            }
        return {key: finalize(key, state) for key, state in raw.items()}


# --- pull/push query plumbing --------------------------------------------------


def _analyze_where(where, group_column: Optional[str]):
    """Split a pull-query WHERE into (key equality, WINDOWSTART bounds,
    residual predicates). Key equality against ROWKEY or the query's GROUP
    BY column routes the lookup; WINDOWSTART >=/<=/= bounds the window
    scan; everything else is evaluated row by row after the read."""
    key_values: List[Any] = []
    lo = None
    hi = None
    residual: List[Any] = []

    def walk(node) -> None:
        nonlocal lo, hi
        if isinstance(node, BinaryOp) and node.op == "AND":
            walk(node.left)
            walk(node.right)
            return
        if isinstance(node, BinaryOp):
            left, right, op = node.left, node.right, node.op
            if isinstance(left, Literal) and isinstance(right, ColumnRef):
                left, right = right, left
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            if isinstance(left, ColumnRef) and isinstance(right, Literal):
                name = left.name.upper()
                if name == "WINDOWSTART" and op in ("=", ">=", "<="):
                    if op in ("=", ">="):
                        lo = right.value if lo is None else max(lo, right.value)
                    if op in ("=", "<="):
                        hi = right.value if hi is None else min(hi, right.value)
                    return
                if op == "=" and (
                    name == "ROWKEY"
                    or (group_column is not None and name == group_column.upper())
                ):
                    key_values.append(right.value)
                    return
        residual.append(node)

    if where is not None:
        walk(where)
    if len(key_values) > 1 and len(set(map(repr, key_values))) > 1:
        return None, lo, hi, residual + [Literal(False)]
    return (key_values[0] if key_values else None), lo, hi, residual


def _project_row(
    statement: SelectQuery,
    key: Any,
    state: Any,
    handle: "QueryHandle",
    window_start: Optional[float],
    residual: Optional[List[Any]] = None,
) -> Optional[Dict[str, Any]]:
    """Finalize raw aggregation state and apply projections; None when a
    residual predicate rejects the row."""
    window = handle.statement.query.window
    if window is not None and window.kind == "SESSION":
        _last_ts, state = state
    finalize = handle.compiled.finalizer
    row = finalize(key, state) if finalize is not None else state
    full: Dict[str, Any] = {"ROWKEY": key}
    if window_start is not None:
        full["WINDOWSTART"] = window_start
    if isinstance(row, dict):
        full.update(row)
    else:
        full["VALUE"] = row
    for condition in residual or ():
        if not bool(evaluate(condition, key, full)):
            return None
    projections = statement.projections
    if len(projections) == 1 and (
        isinstance(projections[0].expression, ColumnRef)
        and projections[0].expression.name == "*"
    ):
        return full
    return {
        p.output_name(): evaluate(p.expression, key, full)
        for p in projections
    }


class PushQuerySubscription:
    """A standing EMIT CHANGES query: every store update that passes the
    WHERE clause lands in the subscription's buffer, already finalized and
    projected. Updates arrive as the aggregation applies them, *before*
    the enclosing transaction commits — push queries trade the committed
    guarantee for immediacy (read-uncommitted semantics); a later abort is
    never retracted here."""

    def __init__(self, handle: "QueryHandle", statement: SelectQuery) -> None:
        self.name = handle.name
        self.statement = statement
        self._handle = handle
        window = handle.statement.query.window
        self._windowed = window is not None
        self._residual = (
            [statement.where] if statement.where is not None else []
        )
        self._rows: List[Dict[str, Any]] = []
        self.emitted = 0
        self.active = True
        handle.app.add_store_listener(
            handle.compiled.table_store, self._on_update
        )

    def _on_update(self, key: Any, value: Any) -> None:
        if not self.active or value is None:
            return
        window_start = None
        if self._windowed and isinstance(key, tuple):
            key, window_start = key
        row = _project_row(
            self.statement,
            key,
            value,
            self._handle,
            window_start,
            residual=self._residual,
        )
        if row is not None:
            self._rows.append(row)
            self.emitted += 1

    def poll(self) -> List[Dict[str, Any]]:
        """Drain the rows emitted since the last poll."""
        rows, self._rows = self._rows, []
        return rows

    def close(self) -> None:
        self.active = False
        self._handle.app.remove_store_listener(
            self._handle.compiled.table_store, self._on_update
        )


class KsqlEngine:
    """Executes ksql statements against a simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        processing_guarantee: str = EXACTLY_ONCE,
        commit_interval_ms: float = 100.0,
    ) -> None:
        self.cluster = cluster
        self.processing_guarantee = processing_guarantee
        self.commit_interval_ms = commit_interval_ms
        self.catalog: Dict[str, SourceInfo] = {}
        self.queries: Dict[str, QueryHandle] = {}
        self._compiler = Compiler(self.catalog)
        # Each query's KafkaStreams app registers here, so every running
        # query shares one deterministic timeline (queries feed each other
        # through topics, and idle gaps jump to the next commit deadline).
        self._driver = Driver(cluster.clock)

    # -- statement execution -----------------------------------------------------------

    def execute(self, sql: str) -> List[Any]:
        """Execute one or more statements; returns per-statement results
        (SourceInfo, QueryHandle, or the dropped query's name)."""
        results = []
        for statement in parse(sql):
            if isinstance(statement, CreateSource):
                results.append(self._create_source(statement))
            elif isinstance(statement, CreateAsSelect):
                results.append(self._create_query(statement))
            elif isinstance(statement, DropStatement):
                results.append(self._drop_query(statement.name))
            elif isinstance(statement, SelectQuery):
                if statement.emit_changes:
                    results.append(self._push(statement))
                else:
                    results.append(self._pull(statement))
            else:  # pragma: no cover - parser only emits the above
                raise KsqlParseError(f"unsupported statement: {statement}")
        return results

    def _create_source(self, statement: CreateSource) -> SourceInfo:
        key = statement.name.lower()
        if key in self.catalog:
            raise KsqlParseError(f"{statement.name} already exists")
        if not self.cluster.has_topic(statement.topic):
            self.cluster.create_topic(statement.topic, statement.partitions)
        partitions = self.cluster.topic_metadata(statement.topic).num_partitions
        info = SourceInfo(
            name=statement.name,
            kind=statement.kind,
            topic=statement.topic,
            partitions=partitions,
        )
        self.catalog[key] = info
        return info

    def _create_query(self, statement: CreateAsSelect) -> QueryHandle:
        key = statement.name.lower()
        if key in self.catalog or key in self.queries:
            raise KsqlParseError(f"{statement.name} already exists")
        compiled = self._compiler.compile(statement)
        if not self.cluster.has_topic(compiled.sink_topic):
            self.cluster.create_topic(
                compiled.sink_topic, compiled.sink_partitions
            )
        app = KafkaStreams(
            compiled.builder.build(),
            self.cluster,
            StreamsConfig(
                application_id=f"ksql-{key}",
                processing_guarantee=self.processing_guarantee,
                commit_interval_ms=self.commit_interval_ms,
            ),
        )
        app.start(1)
        self._driver.register(app)
        handle = QueryHandle(
            name=statement.name, statement=statement, app=app, compiled=compiled
        )
        self.queries[key] = handle
        # The query's sink is itself a stream/table other queries may read.
        self.catalog[key] = SourceInfo(
            name=statement.name,
            kind=statement.kind,
            topic=compiled.sink_topic,
            partitions=compiled.sink_partitions,
        )
        return handle

    def _drop_query(self, name: str) -> str:
        key = name.lower()
        handle = self.queries.pop(key, None)
        if handle is None:
            raise KsqlParseError(f"unknown query: {name}")
        self._driver.unregister(handle.app)
        handle.app.close()
        self.catalog.pop(key, None)
        return name

    # -- pull / push queries -----------------------------------------------------------

    def pull_query(
        self,
        sql: str,
        consistency: Optional[str] = None,
        max_staleness: float = float("inf"),
    ) -> List[Dict[str, Any]]:
        """One-shot lookup against a CTAS query's materialized state.

        ``consistency`` is the interactive-query menu: ``"strong"``
        (committed-changelog reads from the owner only) or the default
        ``"bounded_staleness"`` (active store, or any standby within
        ``max_staleness`` changelog records)."""
        statement = self._single_select(sql, emit=False)
        return self._pull(
            statement, consistency=consistency, max_staleness=max_staleness
        )

    def push_query(self, sql: str) -> PushQuerySubscription:
        """Open an EMIT CHANGES subscription; close() it when done."""
        statement = self._single_select(sql, emit=True)
        return self._push(statement)

    def _single_select(self, sql: str, emit: bool) -> SelectQuery:
        statements = parse(sql)
        if len(statements) != 1 or not isinstance(statements[0], SelectQuery):
            raise KsqlParseError("expected a single SELECT statement")
        statement = statements[0]
        if emit and not statement.emit_changes:
            raise KsqlParseError("push queries require EMIT CHANGES")
        if not emit and statement.emit_changes:
            raise KsqlParseError(
                "EMIT CHANGES opens a push query: use push_query()"
            )
        return statement

    def _pull_target(self, statement: SelectQuery) -> QueryHandle:
        handle = self.queries.get(statement.source.lower())
        if handle is None or handle.compiled.table_store is None:
            raise KsqlParseError(
                f"{statement.source} is not a materialized table "
                f"(pull/push queries read CREATE TABLE ... AS state)"
            )
        if statement.group_by or statement.join or statement.window:
            raise KsqlParseError(
                "pull/push queries cannot aggregate, join, or window — "
                "they read the persistent query's materialized state"
            )
        return handle

    def _pull(
        self,
        statement: SelectQuery,
        consistency: Optional[str] = None,
        max_staleness: float = float("inf"),
    ) -> List[Dict[str, Any]]:
        from repro.iq.server import BOUNDED

        consistency = consistency or BOUNDED
        handle = self._pull_target(statement)
        store = handle.compiled.table_store
        router = handle.app.query_router()
        group_by = handle.statement.query.group_by
        key, lo, hi, residual = _analyze_where(
            statement.where, group_by.name if group_by else None
        )
        windowed = handle.statement.query.window is not None
        rows: List[Dict[str, Any]] = []

        def emit(entry_key: Any, state: Any, start: Optional[float]) -> None:
            if start is not None and (
                (lo is not None and start < lo)
                or (hi is not None and start > hi)
            ):
                return
            row = _project_row(
                statement, entry_key, state, handle, start, residual=residual
            )
            if row is not None:
                rows.append(row)

        if key is None:
            # No key predicate: scatter-gather over every partition.
            for entry_key, state in router.all(
                store, consistency=consistency, max_staleness=max_staleness
            ):
                if windowed and isinstance(entry_key, tuple):
                    entry_key, start = entry_key
                    emit(entry_key, state, start)
                else:
                    emit(entry_key, state, None)
        elif windowed:
            result = router.window_fetch(
                store,
                key,
                from_start=lo,
                to_start=hi,
                consistency=consistency,
                max_staleness=max_staleness,
            )
            for start, state in result.value:
                emit(key, state, start)
        else:
            result = router.get(
                store,
                key,
                consistency=consistency,
                max_staleness=max_staleness,
            )
            if result.value is not None:
                emit(key, result.value, None)
        return rows

    def _push(self, statement: SelectQuery) -> PushQuerySubscription:
        return PushQuerySubscription(self._pull_target(statement), statement)

    # -- driving ---------------------------------------------------------------------------

    def query(self, name: str) -> QueryHandle:
        handle = self.queries.get(name.lower())
        if handle is None:
            raise KsqlParseError(f"unknown query: {name}")
        return handle

    def step(self) -> int:
        processed = 0
        for handle in self.queries.values():
            processed += handle.app.step()
        return processed

    # Actor protocol: an engine full of queries is itself one pollable
    # work source, so a ksql engine can share a Driver with standalone
    # Streams apps or the checkpoint baseline on the same cluster.
    def poll(self) -> int:
        return self.step()

    def flush(self) -> None:
        for handle in self.queries.values():
            handle.app.commit_all()

    @property
    def driver(self) -> Driver:
        return self._driver

    def run_until_idle(self, max_steps: int = 10_000) -> int:
        """Drive all queries (they feed each other through topics) until
        nothing moves, jumping idle gaps to the next commit deadline."""
        return self._driver.run_until_idle(max_cycles=max_steps)

    def close(self) -> None:
        for key in list(self.queries):
            self._drop_query(key)
