"""ksqlDB-lite: continuous SQL queries compiled to Kafka Streams apps.

The paper (Section 3.2) describes ksqlDB as "an event streaming database
built to work with streaming data in Apache Kafka. ... Those continuous
queries submitted to ksqlDB are compiled and executed as Kafka Streams
applications that run indefinitely until terminated." This package
reproduces that layer: a small SQL dialect (CREATE STREAM/TABLE, CSAS/CTAS
with WHERE, PARTITION BY, GROUP BY, windowing, and stream-table joins)
parsed into an AST and compiled onto :class:`~repro.streams.StreamsBuilder`.
"""

from repro.ksql.engine import KsqlEngine, QueryHandle
from repro.ksql.parser import KsqlParseError, parse

__all__ = ["KsqlEngine", "QueryHandle", "parse", "KsqlParseError"]
