"""Compile parsed ksql statements onto a StreamsBuilder topology.

Each CREATE ... AS SELECT becomes one Kafka Streams application, exactly
as the paper describes ksqlDB executing its continuous queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.ksql.ast import (
    ColumnRef,
    CreateAsSelect,
    FunctionCall,
    Projection,
    SelectQuery,
    WindowSpec,
)
from repro.ksql.evaluator import evaluate
from repro.ksql.parser import KsqlParseError
from repro.streams.builder import StreamsBuilder
from repro.streams.windows import SessionWindows, TimeWindows


@dataclass
class SourceInfo:
    """Catalog entry for a stream/table name."""

    name: str
    kind: str               # STREAM | TABLE
    topic: str
    partitions: int


@dataclass
class CompiledQuery:
    """A ready-to-run continuous query."""

    name: str
    builder: StreamsBuilder
    sink_topic: str
    sink_partitions: int
    table_store: Optional[str] = None     # set for CTAS results
    # Maps raw aggregation state to the projected row (CTAS only).
    finalizer: Optional[Any] = None


# --- aggregate machinery ----------------------------------------------------------


def _aggregate_projections(projections: List[Projection]) -> List[Projection]:
    return [p for p in projections if isinstance(p.expression, FunctionCall)]


def _update_state(name: str, state: Any, value: Any) -> Any:
    if name == "COUNT":
        return (state or 0) + 1
    if value is None:
        return state
    if name == "SUM":
        return (state or 0) + value
    if name == "MIN":
        return value if state is None else min(state, value)
    if name == "MAX":
        return value if state is None else max(state, value)
    if name == "AVG":
        total, count = state or (0, 0)
        return (total + value, count + 1)
    raise KsqlParseError(f"unknown aggregate: {name}")


def _merge_state(name: str, a: Any, b: Any) -> Any:
    if a is None:
        return b
    if b is None:
        return a
    if name in ("COUNT", "SUM"):
        return a + b
    if name == "MIN":
        return min(a, b)
    if name == "MAX":
        return max(a, b)
    if name == "AVG":
        return (a[0] + b[0], a[1] + b[1])
    raise KsqlParseError(f"unknown aggregate: {name}")


def _finalize_state(name: str, state: Any) -> Any:
    if state is None:
        return 0 if name == "COUNT" else None
    if name == "AVG":
        total, count = state
        return total / count if count else None
    return state


# --- compilation ---------------------------------------------------------------------


class Compiler:
    """Stateless compiler over a catalog of known sources."""

    def __init__(self, catalog: Dict[str, SourceInfo]) -> None:
        self.catalog = catalog

    def lookup(self, name: str) -> SourceInfo:
        info = self.catalog.get(name.lower())
        if info is None:
            raise KsqlParseError(f"unknown stream/table: {name}")
        return info

    def compile(self, statement: CreateAsSelect) -> CompiledQuery:
        source = self.lookup(statement.query.source)
        sink_topic = statement.topic or statement.name.lower()
        sink_partitions = statement.partitions or source.partitions
        builder = StreamsBuilder()
        if statement.kind == "TABLE":
            store, finalizer = self._compile_ctas(
                builder, statement.query, sink_topic
            )
            return CompiledQuery(
                name=statement.name,
                builder=builder,
                sink_topic=sink_topic,
                sink_partitions=sink_partitions,
                table_store=store,
                finalizer=finalizer,
            )
        self._compile_csas(builder, statement.query, sink_topic)
        return CompiledQuery(
            name=statement.name,
            builder=builder,
            sink_topic=sink_topic,
            sink_partitions=sink_partitions,
        )

    # -- CSAS: stream in, stream out ---------------------------------------------------

    def _compile_csas(
        self, builder: StreamsBuilder, query: SelectQuery, sink_topic: str
    ) -> None:
        source = self.lookup(query.source)
        if source.kind != "STREAM":
            raise KsqlParseError("CREATE STREAM AS must select FROM a stream")
        if query.group_by is not None or _aggregate_projections(query.projections):
            raise KsqlParseError(
                "aggregations require CREATE TABLE ... GROUP BY"
            )
        stream = builder.stream(source.topic)

        if query.join is not None:
            join = query.join
            table_info = self.lookup(join.table)
            if table_info.kind != "TABLE":
                raise KsqlParseError(f"{join.table} is not a table")
            table = builder.table(table_info.topic)
            column = join.stream_column
            stream = stream.select_key(
                lambda k, v, column=column: evaluate(column, k, v)
            )
            def joiner(stream_value, table_value):
                merged = dict(stream_value) if isinstance(stream_value, dict) else {
                    "value": stream_value
                }
                if isinstance(table_value, dict):
                    for field, field_value in table_value.items():
                        merged.setdefault(field, field_value)
                elif table_value is not None:
                    merged.setdefault("joined", table_value)
                return merged

            if join.left:
                stream = stream.left_join(table, joiner)
            else:
                stream = stream.join(table, joiner)

        if query.where is not None:
            where = query.where
            stream = stream.filter(
                lambda k, v, where=where: bool(evaluate(where, k, v))
            )

        projections = query.projections
        def project(key, value, projections=projections):
            return {
                p.output_name(): evaluate(p.expression, key, value)
                for p in projections
            }

        stream = stream.map(lambda k, v: (k, project(k, v)))
        if query.partition_by is not None:
            column = query.partition_by
            stream = stream.select_key(
                lambda k, v, column=column: evaluate(column, k, v)
            )
        stream.to(sink_topic)

    # -- CTAS: stream in, aggregated table out ---------------------------------------------

    def _compile_ctas(
        self, builder: StreamsBuilder, query: SelectQuery, sink_topic: str
    ) -> Tuple[str, Any]:
        source = self.lookup(query.source)
        if source.kind != "STREAM":
            raise KsqlParseError("CREATE TABLE AS must select FROM a stream")
        if query.group_by is None:
            raise KsqlParseError("CREATE TABLE AS requires GROUP BY")
        aggregates = _aggregate_projections(query.projections)
        if not aggregates:
            raise KsqlParseError(
                "CREATE TABLE AS requires at least one aggregate projection"
            )
        for projection in query.projections:
            expr = projection.expression
            if isinstance(expr, FunctionCall):
                continue
            if isinstance(expr, ColumnRef) and (
                expr.name.upper() == "ROWKEY"
                or expr.name.lower() == query.group_by.name.lower()
            ):
                continue
            raise KsqlParseError(
                "non-aggregate projections must be the GROUP BY column"
            )

        stream = builder.stream(source.topic)
        if query.where is not None:
            where = query.where
            stream = stream.filter(
                lambda k, v, where=where: bool(evaluate(where, k, v))
            )
        group_col = query.group_by
        grouped = stream.group_by(
            lambda k, v, column=group_col: evaluate(column, k, v)
        )

        agg_specs: List[Tuple[str, str, Any]] = [
            (p.output_name(), p.expression.name, p.expression.argument)
            for p in aggregates
        ]

        def initializer():
            return {name: None for name, _, _ in agg_specs}

        def aggregator(key, value, state, specs=tuple(agg_specs)):
            new_state = dict(state)
            for name, fn, argument in specs:
                arg_value = (
                    None if argument is None else evaluate(argument, key, value)
                )
                if fn == "COUNT" and argument is not None and arg_value is None:
                    continue   # COUNT(col) skips NULLs
                new_state[name] = _update_state(fn, state.get(name), arg_value)
            return new_state

        store_name = f"{sink_topic}-store"
        window = query.window
        if window is None:
            table = grouped.aggregate(initializer, aggregator, store_name)
        elif window.kind == "SESSION":
            session = SessionWindows.with_gap(window.size_ms)
            if window.grace_ms is not None:
                session = session.grace(window.grace_ms)

            def merger(key, a, b, specs=tuple(agg_specs)):
                return {
                    name: _merge_state(fn, a.get(name), b.get(name))
                    for name, fn, _ in specs
                }

            table = grouped.windowed_by(session).aggregate(
                initializer, aggregator, merger, store_name
            )
        else:
            windows = TimeWindows.of(window.size_ms)
            if window.advance_ms is not None:
                windows = windows.advance_by(window.advance_ms)
            if window.grace_ms is not None:
                windows = windows.grace(window.grace_ms)
            table = grouped.windowed_by(windows).aggregate(
                initializer, aggregator, store_name=store_name
            )

        def finalize(key, state, specs=tuple(agg_specs)):
            return {
                name: _finalize_state(fn, state.get(name))
                for name, fn, _ in specs
            }

        table.map_values(finalize).to_stream().to(sink_topic)
        return store_name, finalize
