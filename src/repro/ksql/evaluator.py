"""Row-expression evaluation over (key, value-dict) records.

SQL-ish null semantics, simplified: comparisons involving NULL are false,
arithmetic involving NULL yields NULL.
"""

from __future__ import annotations

from typing import Any

from repro.ksql.ast import BinaryOp, ColumnRef, FunctionCall, Literal
from repro.ksql.parser import KsqlParseError


def evaluate(expr: Any, key: Any, value: Any) -> Any:
    """Evaluate a non-aggregate expression against one record."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return _resolve_column(expr.name, key, value)
    if isinstance(expr, BinaryOp):
        return _binary(expr, key, value)
    if isinstance(expr, FunctionCall):
        raise KsqlParseError(
            f"aggregate {expr.name} is only allowed in CREATE TABLE ... "
            f"GROUP BY queries"
        )
    raise KsqlParseError(f"cannot evaluate {expr!r}")


def _resolve_column(name: str, key: Any, value: Any) -> Any:
    if name.upper() == "ROWKEY":
        return key
    if isinstance(value, dict):
        if name in value:
            return value[name]
        lowered = name.lower()
        for field, field_value in value.items():
            if isinstance(field, str) and field.lower() == lowered:
                return field_value
        return None
    # Scalar values: the only addressable column is the value itself.
    if name.upper() in ("ROWVAL", "VALUE"):
        return value
    return None


def _binary(expr: BinaryOp, key: Any, value: Any) -> Any:
    op = expr.op
    if op == "AND":
        return bool(evaluate(expr.left, key, value)) and bool(
            evaluate(expr.right, key, value)
        )
    if op == "OR":
        return bool(evaluate(expr.left, key, value)) or bool(
            evaluate(expr.right, key, value)
        )
    left = evaluate(expr.left, key, value)
    right = evaluate(expr.right, key, value)
    if op in ("+", "-", "*", "/"):
        if left is None or right is None:
            return None
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            return None
        return left / right
    if left is None or right is None:
        return False
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise KsqlParseError(f"unknown operator: {op}")
