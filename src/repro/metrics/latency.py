"""End-to-end latency tracking, as the paper measures it (Section 4.3):
per record, from the creation time when produced to the input topic to the
time a read-committed consumer receives that record's result.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.registry import Histogram

CREATED_AT_HEADER = "created_at"


class LatencyTracker:
    """Collects per-record end-to-end latencies (virtual milliseconds)."""

    def __init__(self) -> None:
        self.histogram = Histogram("e2e_latency_ms")

    def record_output(self, record, received_at_ms: float) -> Optional[float]:
        """Note one output record's arrival; returns its latency, or None
        if the record carries no creation timestamp."""
        created = record.headers.get(CREATED_AT_HEADER)
        if created is None:
            return None
        latency = received_at_ms - created
        self.histogram.observe(latency)
        return latency

    def record_batch_output(self, headers_list, received_at_ms: float) -> int:
        """Columnar twin of :meth:`record_output`: observe the latency of
        every header dict carrying a creation stamp in one histogram
        extension. Returns how many observations were made. (Stage
        decomposition needs per-record stamps, which the per-batch span
        mode deliberately does not write, so subclasses inherit this
        plain end-to-end accounting.)"""
        latencies = [
            received_at_ms - created
            for headers in headers_list
            if (created := headers.get(CREATED_AT_HEADER)) is not None
        ]
        if latencies:
            self.histogram.observe_many(latencies)
        return len(latencies)

    @property
    def count(self) -> int:
        return self.histogram.count

    def mean_ms(self) -> float:
        return self.histogram.mean()

    def p50_ms(self) -> float:
        return self.histogram.percentile(50)

    def p99_ms(self) -> float:
        return self.histogram.percentile(99)
