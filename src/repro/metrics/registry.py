"""Minimal metrics primitives used by benchmarks and examples."""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counters only increase")
        self.value += by

    def reset(self) -> None:
        """Restart the count (e.g. between chaos-run phases)."""
        self.value = 0


class Histogram:
    """Stores observations; exposes mean and percentiles."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    def mean(self) -> float:
        if not self._values:
            return 0.0
        return math.fsum(self._values) / len(self._values)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high or ordered[low] == ordered[high]:
            return ordered[low]
        frac = rank - low
        # Exact at the endpoints; no one-ulp overshoot past the max.
        return ordered[low] + (ordered[high] - ordered[low]) * frac

    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Summary stats at a point in time (chaos/bench reporting)."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max(),
        }

    def reset(self) -> None:
        """Discard all observations (e.g. between chaos-run phases)."""
        self._values.clear()


class MetricsRegistry:
    """Named counters and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram(name))

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> Dict[str, Dict[str, float]]:
        """Snapshot of every histogram, keyed by name."""
        return {name: h.snapshot() for name, h in sorted(self._histograms.items())}

    def reset(self) -> None:
        """Zero every counter and clear every histogram (keeps the names
        registered, so held references stay valid)."""
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
