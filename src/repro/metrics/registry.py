"""Minimal metrics primitives used by benchmarks and examples.

Metrics can carry labels, Prometheus-style: ``registry.counter("fetched",
topic="orders", partition=0)`` registers under the key
``fetched{partition=0,topic=orders}`` (label keys sorted, so the same
label set always yields the same key). Unlabeled metrics keep their bare
name, so existing call sites are untouched.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


def labeled_name(name: str, labels: Dict[str, Any]) -> str:
    """Canonical registry key for a metric with labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counters only increase")
        self.value += by

    def reset(self) -> None:
        """Restart the count (e.g. between chaos-run phases)."""
        self.value = 0


class Gauge:
    """A value that can go up and down; reports its last-set value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Stores observations; exposes mean and percentiles.

    The sorted view is computed lazily and cached: ``snapshot()`` asks for
    three percentiles plus min/max, and the telemetry reporter snapshots
    every histogram on every sample tick, so re-sorting per call would be
    O(n log n) per percentile instead of per batch of observations.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        self._values.append(value)
        self._sorted = None

    def observe_many(self, values: List[float]) -> None:
        """Bulk observation for columnar paths: one list extension instead
        of a method call per sample."""
        self._values.extend(values)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._values)

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return self._sorted

    def mean(self) -> float:
        if not self._values:
            return 0.0
        return math.fsum(self._values) / len(self._values)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._values:
            return 0.0
        ordered = self._ordered()
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high or ordered[low] == ordered[high]:
            return ordered[low]
        frac = rank - low
        # Exact at the endpoints; no one-ulp overshoot past the max.
        return ordered[low] + (ordered[high] - ordered[low]) * frac

    def max(self) -> float:
        return self._ordered()[-1] if self._values else 0.0

    def min(self) -> float:
        return self._ordered()[0] if self._values else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Summary stats at a point in time (chaos/bench reporting)."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max(),
        }

    def reset(self) -> None:
        """Discard all observations (e.g. between chaos-run phases)."""
        self._values.clear()
        self._sorted = None


class MetricsRegistry:
    """Named counters, gauges, and histograms, with optional labels."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = labeled_name(name, labels)
        return self._counters.setdefault(key, Counter(key))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = labeled_name(name, labels)
        return self._gauges.setdefault(key, Gauge(key))

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = labeled_name(name, labels)
        return self._histograms.setdefault(key, Histogram(key))

    def counters(self, prefix: str = "") -> Dict[str, int]:
        return {
            name: c.value for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def gauges(self, prefix: str = "") -> Dict[str, float]:
        return {
            name: g.value for name, g in sorted(self._gauges.items())
            if name.startswith(prefix)
        }

    def histograms(self, prefix: str = "") -> Dict[str, Dict[str, float]]:
        """Snapshot of every matching histogram, keyed by name."""
        return {
            name: h.snapshot() for name, h in sorted(self._histograms.items())
            if name.startswith(prefix)
        }

    def snapshot(self, prefix: str = "") -> Dict[str, Dict[str, Any]]:
        """Point-in-time view of every metric whose name starts with
        ``prefix`` (empty prefix = everything)."""
        return {
            "counters": self.counters(prefix),
            "gauges": self.gauges(prefix),
            "histograms": self.histograms(prefix),
        }

    def reset(self, prefix: str = "") -> None:
        """Zero matching counters/gauges and clear matching histograms
        (keeps the names registered, so held references stay valid). An
        empty prefix resets everything."""
        for name, counter in self._counters.items():
            if name.startswith(prefix):
                counter.reset()
        for name, gauge in self._gauges.items():
            if name.startswith(prefix):
                gauge.reset()
        for name, histogram in self._histograms.items():
            if name.startswith(prefix):
                histogram.reset()

    @contextmanager
    def scoped(self, prefix: str = "") -> Iterator["MetricsRegistry"]:
        """Reset metrics under ``prefix`` on entry so readings taken inside
        the block reflect only work done there — one grid cell's counters
        don't bleed into the next when many cells share a process."""
        self.reset(prefix)
        yield self
