"""Metrics: counters, histograms, end-to-end latency, bench reporting."""

from repro.metrics.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.metrics.latency import LatencyTracker
from repro.metrics.reporter import format_series, format_table

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LatencyTracker",
    "format_table",
    "format_series",
]
