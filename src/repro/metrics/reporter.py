"""Plain-text table/series formatting for benchmark output."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Fixed-width text table."""
    str_rows: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(
    title: str, xs: Sequence[Any], series: dict
) -> str:
    """A titled table with one x column and one column per named series."""
    headers = [title] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for values in series.values()])
    return format_table(headers, rows)
