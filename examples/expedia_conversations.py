#!/usr/bin/env python
"""An Expedia Conversational-Platform-style service (paper Section 6.2).

A stateful event-processing application with exactly-once mode maintains
an aggregated view of each conversation ("which can then be queried by
external processors for operational purposes such as purging all closed
conversations from active working queues").

Demonstrates both production configurations the paper reports:

* data-enrichment path, 100 ms commit interval -> sub-second end-to-end;
* conversation-view aggregation, 1500 ms commit interval with output
  suppression to cut disk and network I/O.

Run:  python examples/expedia_conversations.py
"""

from repro import Cluster, Consumer, ConsumerConfig
from repro.config import EXACTLY_ONCE, READ_COMMITTED, StreamsConfig
from repro.metrics.latency import LatencyTracker
from repro.streams import KafkaStreams, StreamsBuilder, Suppressed
from repro.workloads.conversations import ConversationGenerator


def view_topology(suppress_ms=None):
    builder = StreamsBuilder()
    table = (
        builder.stream("conversation-events")
        .group_by_key()
        .aggregate(
            lambda: {"events": 0, "payments": 0.0, "closed": False},
            lambda key, event, view: {
                "events": view["events"] + 1,
                "payments": view["payments"] + event["amount"],
                "closed": view["closed"] or event["type"] == "conversation_closed",
            },
        )
    )
    if suppress_ms is not None:
        table = table.suppress(Suppressed.until_time_limit(suppress_ms))
    table.to_stream().to("conversation-views")
    return builder.build()


def run(commit_interval_ms, suppress_ms, label):
    cluster = Cluster(num_brokers=3)
    cluster.create_topic("conversation-events", 2)
    cluster.create_topic("conversation-views", 2)
    app = KafkaStreams(
        view_topology(suppress_ms),
        cluster,
        StreamsConfig(
            application_id="cp",
            processing_guarantee=EXACTLY_ONCE,
            commit_interval_ms=commit_interval_ms,
        ),
    )
    app.start(num_instances=1)
    generator = ConversationGenerator(cluster, rate_per_sec=200, conversations=30)
    verifier = Consumer(cluster, ConsumerConfig(isolation_level=READ_COMMITTED))
    verifier.assign(cluster.partitions_for("conversation-views"))
    tracker = LatencyTracker()
    views = {}

    start = cluster.clock.now
    while cluster.clock.now < start + 4_000:
        generator.produce_for(25.0)
        app.step()
        for record in verifier.poll(max_records=100_000):
            tracker.record_output(record, cluster.clock.now)
            views[record.key] = record.value
    app.run_until_idle()
    cluster.clock.advance(50.0)
    emitted = 0
    for record in verifier.poll(max_records=100_000):
        views[record.key] = record.value

    print(f"\n[{label}]")
    print(f"  events processed          : {generator.records_produced}")
    print(f"  view updates emitted      : {tracker.count}")
    print(f"  mean end-to-end latency   : {tracker.mean_ms():8.1f} ms")
    print(f"  p99 end-to-end latency    : {tracker.p99_ms():8.1f} ms")
    closed = [k for k, v in views.items() if v["closed"]]
    print(f"  conversations tracked     : {len(views)}, closed: {len(closed)}")
    return views


def main():
    fast = run(100.0, None, "enrichment service: commit every 100 ms")
    assert max(v["events"] for v in fast.values()) > 0
    suppressed = run(
        1500.0, 1500.0,
        "view aggregation: commit 1500 ms + suppression (reduced I/O)",
    )
    print("\nOperational query: conversations safe to purge "
          "(closed, from the aggregated view):")
    for key in sorted(k for k, v in suppressed.items() if v["closed"])[:6]:
        print(f"  {key}")


if __name__ == "__main__":
    main()
