#!/usr/bin/env python
"""Quickstart: the paper's Figure 2 application, end to end.

Builds the pageview pipeline from the Kafka Streams DSL example —

    builder.stream("pageview-events")
        .filter((key, view) -> view.period >= 30000)
        .map((key, view) -> new KeyValue(view.category, view))
        .groupByKey()
        .windowedBy(TimeWindows.of(5000))
        .count()
        .toStream().to("pageview-windowed-counts")

— runs it with exactly-once processing on a simulated three-broker
cluster, and prints the generated topology (Figure 3) plus the windowed
counts a read-committed consumer observes.

Run:  python examples/quickstart.py
"""

from repro import Cluster, Consumer, ConsumerConfig, READ_COMMITTED
from repro.config import EXACTLY_ONCE, StreamsConfig
from repro.streams import KafkaStreams, StreamsBuilder, TimeWindows
from repro.workloads.pageviews import PageViewGenerator


def build_topology():
    builder = StreamsBuilder()
    (
        builder.stream("pageview-events")
        .filter(lambda key, view: view["period"] >= 30_000)
        .map(lambda key, view: (view["category"], view))
        .group_by_key(num_partitions=3)       # Figure 3: repartition to 3
        .windowed_by(TimeWindows.of(5_000).grace(10_000))
        .count()
        .to_stream()
        .to("pageview-windowed-counts")
    )
    return builder.build()


def main():
    cluster = Cluster(num_brokers=3)
    cluster.create_topic("pageview-events", 2)          # as in Figure 3
    cluster.create_topic("pageview-windowed-counts", 3)

    topology = build_topology()
    print("Generated topology (compare with the paper's Figure 3):\n")
    print(topology.describe())

    app = KafkaStreams(
        topology,
        cluster,
        StreamsConfig(
            application_id="pageviews",
            processing_guarantee=EXACTLY_ONCE,
            commit_interval_ms=100.0,
        ),
    )
    app.start(num_instances=2)
    print(f"\nTasks: {app.task_ids()}  (2 upstream + 3 downstream, Figure 3)")

    generator = PageViewGenerator(cluster, rate_per_sec=2_000, users=500)
    print("\nProducing ~3 seconds of pageview events...")
    start = cluster.clock.now
    while cluster.clock.now < start + 3_000:
        generator.produce_for(25.0)
        app.step()
    app.run_until_idle()
    cluster.clock.advance(50.0)   # let the last transaction markers land

    consumer = Consumer(
        cluster, ConsumerConfig(isolation_level=READ_COMMITTED)
    )
    consumer.assign(cluster.partitions_for("pageview-windowed-counts"))
    finals = {}
    while True:
        records = consumer.poll(max_records=100_000)
        if not records:
            break
        for record in records:
            finals[record.key] = record.value

    print(f"\n{generator.records_produced} events in, "
          f"{len(finals)} (category, window) counts out. A sample:")
    for key in sorted(finals, key=repr)[:10]:
        print(f"  {key.key:10s} {key.window}  ->  {finals[key]}")
    total = sum(finals.values())
    print(f"\nSum of counts: {total} "
          f"(= events that passed the 30s period filter, exactly once)")


if __name__ == "__main__":
    main()
