#!/usr/bin/env python
"""ksqlDB-lite: continuous SQL queries compiled to Kafka Streams apps.

The paper (Section 3.2) notes that Kafka Streams "is also used as the
underlying parallel runtime of ksqlDB ... continuous queries submitted to
ksqlDB are compiled and executed as Kafka Streams applications that run
indefinitely until terminated." This example runs a small pipeline of
such queries — enrichment, filtering, and a windowed aggregation — over
the simulated cluster, with exactly-once processing underneath.

Run:  python examples/ksql_continuous_queries.py
"""

from repro import Cluster, Producer
from repro.ksql import KsqlEngine


def main():
    cluster = Cluster(num_brokers=3)
    engine = KsqlEngine(cluster)

    print("Submitting continuous queries...\n")
    statements = """
    CREATE STREAM pageviews WITH (KAFKA_TOPIC='pageviews', PARTITIONS=2);
    CREATE TABLE  users     WITH (KAFKA_TOPIC='users', PARTITIONS=2);

    -- enrichment + filtering, as one continuous query
    CREATE STREAM long_views AS
        SELECT user, page, region, period
        FROM pageviews
        LEFT JOIN users ON user = users.ROWKEY
        WHERE period >= 30000;

    -- a windowed aggregate over the first query's output
    CREATE TABLE views_by_region AS
        SELECT region, COUNT(*) AS views, AVG(period) AS avg_period
        FROM long_views
        WINDOW TUMBLING (SIZE 5 SECONDS, GRACE 10 SECONDS)
        GROUP BY region
        EMIT CHANGES;
    """
    print(statements)
    engine.execute(statements)

    producer = Producer(cluster)
    for user, region in [("u1", "emea"), ("u2", "apac"), ("u3", "emea")]:
        producer.send("users", key=user, value={"region": region}, timestamp=0.0)
    producer.flush()
    engine.run_until_idle()

    import random
    rng = random.Random(9)
    for i in range(200):
        producer.send(
            "pageviews",
            key=f"view-{i}",
            value={
                "user": rng.choice(["u1", "u2", "u3"]),
                "page": f"/page/{rng.randrange(20)}",
                "period": rng.choice([5_000, 45_000, 90_000]),
            },
            timestamp=float(i * 40),
        )
    producer.flush()
    engine.run_until_idle()

    print("views_by_region (materialized, queryable):")
    table = engine.query("views_by_region").table_contents()
    for (region, window_start), row in sorted(table.items()):
        print(
            f"  {region:6s} window@{window_start:>6.0f}ms  "
            f"views={row['views']:3d}  avg_period={row['avg_period']:,.0f}ms"
        )

    total = sum(row["views"] for row in table.values())
    print(f"\nTotal long views counted: {total} "
          f"(each pageview with period >= 30s, exactly once)")


if __name__ == "__main__":
    main()
