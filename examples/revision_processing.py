#!/usr/bin/env python
"""Figure 6, narrated: revision-based speculative processing.

Feeds the exact record sequence of the paper's Figure 6 — timestamps 12,
16, 14, 23 (seconds) into a 5-second windowed count with a 10-second grace
period — and prints what Kafka Streams emits at every step: speculative
results, a revision for the out-of-order record, garbage collection of the
expired window, and the drop of a too-late record.

Run:  python examples/revision_processing.py
"""

from repro import Cluster, Consumer, ConsumerConfig, Producer
from repro.config import READ_UNCOMMITTED, StreamsConfig
from repro.streams import KafkaStreams, StreamsBuilder, TimeWindows

SEC = 1000.0   # the paper's units are seconds; ours are milliseconds


def main():
    cluster = Cluster(num_brokers=3)
    cluster.create_topic("events", 1)
    cluster.create_topic("window-counts", 1)

    builder = StreamsBuilder()
    (
        builder.stream("events")
        .group_by_key()
        .windowed_by(TimeWindows.of(5 * SEC).grace(10 * SEC))
        .count()
        .to_stream()
        .to("window-counts")
    )
    app = KafkaStreams(
        builder.build(),
        cluster,
        StreamsConfig(application_id="fig6", commit_interval_ms=10.0),
    )
    app.start(1)

    producer = Producer(cluster)
    consumer = Consumer(
        cluster, ConsumerConfig(isolation_level=READ_UNCOMMITTED)
    )
    consumer.assign(cluster.partitions_for("window-counts"))

    steps = [
        (12, "(a) in-order record"),
        (16, "(b) in-order record, new window"),
        (14, "(c) OUT-OF-ORDER record, within the 10s grace period"),
        (23, "(d) in-order record; window [10,15) falls out of grace -> GC"),
        (12, "(e) too-late record for the collected window [10,15)"),
    ]
    for ts, description in steps:
        print(f"\n>> record at t={ts}s   {description}")
        producer.send("events", key="k", value=1, timestamp=ts * SEC)
        producer.flush()
        app.run_until_idle()
        emitted = consumer.poll(max_records=1000)
        if not emitted:
            print("   emitted: nothing (record dropped)")
        for record in emitted:
            window = record.key.window
            print(
                f"   emitted: window [{window.start/SEC:.0f},{window.end/SEC:.0f})"
                f" count={record.value}"
            )

    dropped = app.metric_total("dropped_records")
    revisions = app.metric_total("revisions_emitted")
    print(f"\nrevisions emitted: {revisions}, late records dropped: {dropped}")
    print("Note: the grace period controlled how much old state was kept —")
    print("it never delayed emission; every update above appeared instantly.")


if __name__ == "__main__":
    main()
