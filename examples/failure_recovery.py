#!/usr/bin/env python
"""Figure 1, live: what a crash does under ALOS vs EOS.

A counting processor consumes the paper's three records (timestamps 11,
13, 12) and crashes after its state updates and outputs were flushed but
*before* the input offsets were committed — the exact window of Figure
1.b. A replacement instance recovers and finishes the stream.

* Under at-least-once, the replacement re-processes the records and the
  count is double-updated (Figure 1.c).
* Under exactly-once, the dangling transaction is aborted, state rolls
  back via the changelog, and the final count is exact.

Run:  python examples/failure_recovery.py
"""

from repro import Cluster, Consumer, ConsumerConfig, Producer
from repro.config import (
    AT_LEAST_ONCE,
    EXACTLY_ONCE,
    READ_COMMITTED,
    READ_UNCOMMITTED,
    ConsumerConfig,
    StreamsConfig,
)
from repro.streams import KafkaStreams, StreamsBuilder


def run_scenario(guarantee: str) -> int:
    cluster = Cluster(num_brokers=3)
    cluster.network.charge_latency = False
    cluster.create_topic("sensor-events", 1)
    cluster.create_topic("event-counts", 1)

    builder = StreamsBuilder()
    builder.stream("sensor-events").group_by_key().count().to_stream().to(
        "event-counts"
    )
    app = KafkaStreams(
        builder.build(),
        cluster,
        StreamsConfig(
            application_id=f"fig1-{guarantee}",
            processing_guarantee=guarantee,
            commit_interval_ms=50.0,
            transaction_timeout_ms=500.0,
        ),
    )
    instance = app.add_instance()

    producer = Producer(cluster)
    for ts in (11.0, 13.0, 12.0):
        producer.send("sensor-events", key="sensor", value=1, timestamp=ts)
    producer.flush()

    # Process everything...
    while instance.step() == 0:
        pass
    # ...then crash in the Figure 1.b window: outputs and state-changelog
    # appends are flushed, the input position is NOT committed.
    instance._thread_producer.flush()
    app.crash_instance(instance)
    print(f"  [{guarantee}] instance crashed after flush, before offset commit")

    # A replacement takes over; state restores from the changelog.
    app.add_instance()
    cluster.clock.advance(600.0)      # EOS: dangling transaction times out
    app.run_until_idle()

    isolation = READ_COMMITTED if guarantee == EXACTLY_ONCE else READ_UNCOMMITTED
    consumer = Consumer(cluster, ConsumerConfig(isolation_level=isolation))
    consumer.assign(cluster.partitions_for("event-counts"))
    final = None
    while True:
        records = consumer.poll(max_records=10_000)
        if not records:
            break
        final = records[-1].value
    return final


def main():
    print("Three input records (ts 11, 13, 12); the correct count is 3.\n")
    alos = run_scenario(AT_LEAST_ONCE)
    print(f"  at-least-once final count: {alos}   <- double-updated state\n")
    eos = run_scenario(EXACTLY_ONCE)
    print(f"  exactly-once  final count: {eos}   <- as if the crash never happened")
    assert alos > 3
    assert eos == 3


if __name__ == "__main__":
    main()
