#!/usr/bin/env python
"""Elastic scaling: task redistribution and state migration (paper §3.3).

"When new instances of the application are launched or existing ones
shutdown or crash, tasks will be re-distributed across instances
automatically to balance the workload. ... If a task with stateful
operators needs to migrate to a new instance, an exact copy of the state
is restored by replaying the corresponding changelog topics."

This example scales a stateful counting application from 1 to 3 instances
and back down through a crash, printing task placements, changelog-replay
volumes, and — with standby replicas enabled — how takeover becomes
near-instant.

Run:  python examples/elastic_scaling.py
"""

from repro import Cluster, Producer
from repro.config import EXACTLY_ONCE, StreamsConfig
from repro.streams import KafkaStreams, StreamsBuilder
from repro.workloads.pageviews import PageViewGenerator


def placements(app):
    return {
        f"instance-{i.instance_id}": sorted(str(t) for t in i.tasks)
        for i in app.instances
    }


def main():
    cluster = Cluster(num_brokers=3)
    cluster.create_topic("pageview-events", 4)
    cluster.create_topic("category-counts", 4)

    builder = StreamsBuilder()
    (
        builder.stream("pageview-events")
        .map(lambda k, v: (v["category"], 1))
        .group_by_key()
        .count("category-count-store")
        .to_stream()
        .to("category-counts")
    )
    app = KafkaStreams(
        builder.build(),
        cluster,
        StreamsConfig(
            application_id="scaling",
            processing_guarantee=EXACTLY_ONCE,
            commit_interval_ms=50.0,
            transaction_timeout_ms=500.0,
            num_standby_replicas=1,      # warm shadows for instant takeover
        ),
    )

    generator = PageViewGenerator(cluster, rate_per_sec=2_000, users=300)

    def pump(duration_ms):
        start = cluster.clock.now
        while cluster.clock.now < start + duration_ms:
            generator.produce_for(25.0)
            app.step()

    print("1 instance:")
    app.add_instance()
    pump(500.0)
    for name, tasks in placements(app).items():
        print(f"  {name}: {tasks}")

    print("\nscale out to 3 instances (sticky rebalance):")
    app.add_instance()
    app.add_instance()
    pump(500.0)
    for name, tasks in placements(app).items():
        print(f"  {name}: {tasks}")

    print("\ncrash the instance owning the most stateful tasks:")
    victim = max(app.instances, key=lambda i: len(i.tasks))
    print(f"  crashing instance-{victim.instance_id} "
          f"(tasks {sorted(str(t) for t in victim.tasks)})")
    app.crash_instance(victim)
    cluster.clock.advance(600.0)    # dangling transaction times out
    pump(500.0)
    for name, tasks in placements(app).items():
        print(f"  {name}: {tasks}")
    replayed = sum(
        task.restored_records
        for instance in app.instances
        for task in instance.tasks.values()
    )
    print(f"  changelog records replayed at takeover: {replayed} "
          f"(standby shadows kept it incremental)")

    app.run_until_idle()
    totals = app.store_contents("category-count-store")
    print(f"\nfinal per-category counts (state intact through scaling):")
    for category in sorted(totals):
        print(f"  {category:10s} {totals[category]}")
    print(f"  sum = {sum(totals.values())} "
          f"(= {generator.records_produced} produced events, exactly once)")
    assert sum(totals.values()) == generator.records_produced


if __name__ == "__main__":
    main()
