#!/usr/bin/env python
"""An MxFlow-style real-time pricing pipeline (paper Section 6.1).

Reproduces the shape of Bloomberg's deployment on the simulated stack:

* source topic with derivative market-data ticks (synthetic stand-in for
  exchange/direct feeds);
* a stateful pipeline of (1) outlier signal detection, (2) per-instrument
  profile windowing, (3) weighted aggregation, with exactly-once mode so
  "every market bid and ask will be processed without duplication or
  loss";
* a *state catalog*: a second application that replays the first one's
  changelog topics with a read-committed consumer to serve consistent
  historical snapshots — possible only because changelog appends happen
  inside atomic transactions.

Run:  python examples/bloomberg_mxflow.py
"""

from repro import Cluster, Consumer, ConsumerConfig
from repro.config import EXACTLY_ONCE, READ_COMMITTED, StreamsConfig
from repro.streams import KafkaStreams, StreamsBuilder, TimeWindows
from repro.workloads.market_data import MarketDataGenerator


def mxflow_topology():
    builder = StreamsBuilder()
    (
        builder.stream("market-data")
        # (1) outlier signal detection
        .filter(lambda key, tick: not tick["outlier_truth"])
        # (2) profile-based windowing per instrument
        .group_by_key()
        .windowed_by(TimeWindows.of(1_000.0).grace(5_000.0))
        # (3) weighted aggregation: a VWAP per instrument per window
        .aggregate(
            lambda: {"notional": 0.0, "size": 0},
            lambda key, tick, agg: {
                "notional": agg["notional"] + tick["mid"] * tick["size"],
                "size": agg["size"] + tick["size"],
            },
        )
        .to_stream()
        .to("market-insights")
    )
    return builder.build()


def main():
    cluster = Cluster(num_brokers=3)
    cluster.create_topic("market-data", 4)
    cluster.create_topic("market-insights", 4)

    app = KafkaStreams(
        mxflow_topology(),
        cluster,
        StreamsConfig(
            application_id="mxflow",
            processing_guarantee=EXACTLY_ONCE,
            commit_interval_ms=100.0,
        ),
    )
    app.start(num_instances=2)

    generator = MarketDataGenerator(
        cluster, rate_per_sec=5_000, instruments=40, outlier_fraction=0.02
    )
    print("Streaming ~2 seconds of market data through the pipeline...")
    start = cluster.clock.now
    while cluster.clock.now < start + 2_000:
        generator.produce_for(25.0)
        app.step()
    app.run_until_idle()
    cluster.clock.advance(50.0)

    print(f"  ticks produced: {generator.records_produced}")

    # --- the state catalog service: consistent snapshots from changelogs ---
    changelog = next(
        t for t in cluster.topics if t.startswith("mxflow-") and "changelog" in t
    )
    catalog = Consumer(
        cluster,
        ConsumerConfig(
            client_id="state-catalog", isolation_level=READ_COMMITTED
        ),
    )
    catalog.assign(cluster.partitions_for(changelog))
    snapshot = {}
    while True:
        records = catalog.poll(max_records=100_000)
        if not records:
            break
        for record in records:
            if record.value is None:
                snapshot.pop(record.key, None)
            else:
                snapshot[record.key] = record.value

    print(f"\nState catalog rebuilt {len(snapshot)} (instrument, window) "
          f"aggregates by replaying {changelog!r} (read-committed).")
    print("Sample VWAPs from the snapshot:")
    shown = 0
    for (key, window_start), agg in sorted(snapshot.items(), key=repr):
        if agg["size"] == 0:
            continue
        vwap = agg["notional"] / agg["size"]
        print(f"  {key:10s} window@{window_start:>7.0f}ms  "
              f"vwap={vwap:9.4f}  volume={agg['size']}")
        shown += 1
        if shown >= 8:
            break

    # The snapshot equals the live stores: the changelog is the
    # source-of-truth and the store is its disposable materialized view.
    store_name = next(iter(app.topology.stores()))
    live = app.store_contents(store_name)
    assert live == snapshot
    print("\nSnapshot matches the live state stores exactly "
          "(changelog = source of truth).")


if __name__ == "__main__":
    main()
