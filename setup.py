"""Setuptools entry point.

Kept alongside pyproject.toml so that legacy editable installs
(``pip install -e .``) work in offline environments where the ``wheel``
package is unavailable for the PEP-660 build path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Consistency and Completeness: Rethinking "
        "Distributed Stream Processing in Apache Kafka' (SIGMOD 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
