"""The simulated object store: latency model and contents."""

import pytest

from repro.barriers.object_store import ObjectStore
from repro.sim.clock import SimClock


def test_put_get_roundtrip():
    store = ObjectStore(SimClock(), charge_latency=False)
    store.put("a/b", {"x": 1})
    assert store.get("a/b") == {"x": 1}


def test_missing_path_raises():
    store = ObjectStore(SimClock(), charge_latency=False)
    with pytest.raises(KeyError):
        store.get("nope")


def test_put_charges_fixed_latency():
    clock = SimClock()
    store = ObjectStore(clock, put_latency_ms=25.0, per_kb_ms=0.0)
    store.put("p", None)
    assert clock.now == pytest.approx(25.0)


def test_size_adds_latency():
    clock = SimClock()
    store = ObjectStore(clock, put_latency_ms=0.0, per_kb_ms=1.0)
    store.put("p", None, size_kb=10.0)
    assert clock.now == pytest.approx(10.0)


def test_list_and_delete():
    store = ObjectStore(SimClock(), charge_latency=False)
    store.put("job/chk-1/a", 1)
    store.put("job/chk-2/a", 2)
    store.put("other", 3)
    assert store.list_paths("job/") == ["job/chk-1/a", "job/chk-2/a"]
    store.delete("job/chk-1/a")
    assert not store.exists("job/chk-1/a")


def test_metrics_accumulate():
    store = ObjectStore(SimClock(), put_latency_ms=5.0, per_kb_ms=0.0)
    store.put("a", 1)
    store.put("b", 2)
    assert store.puts == 2
    assert store.put_time_ms == pytest.approx(10.0)
