"""The checkpoint-based engine: correctness and the cost profile that
drives Figure 5.b."""

import pytest

from repro.barriers.engine import BarrierEngine
from repro.barriers.object_store import ObjectStore
from repro.clients.producer import Producer

from tests.streams.harness import drain_topic, latest_by_key, make_cluster


def counting_reduce(key, value, state):
    return (state or 0) + 1


def make_engine(cluster, interval_ms=100.0, store=None, **kwargs):
    return BarrierEngine(
        cluster,
        source_topic="in",
        sink_topic="out",
        reduce_fn=counting_reduce,
        object_store=store or ObjectStore(cluster.clock, charge_latency=False),
        checkpoint_interval_ms=interval_ms,
        **kwargs,
    )


def produce(cluster, pairs):
    producer = Producer(cluster)
    for i, (key, value) in enumerate(pairs):
        producer.send("in", key=key, value=value, timestamp=float(i))
    producer.flush()


class TestProcessing:
    def test_counts_and_commits(self):
        cluster = make_cluster(**{"in": 1, "out": 1})
        engine = make_engine(cluster)
        produce(cluster, [("a", 1), ("a", 1), ("b", 1)])
        engine.run_for(500.0)
        final = latest_by_key(drain_topic(cluster, "out"))
        assert final == {"a": 2, "b": 1}
        assert engine.state == {"a": 2, "b": 1}

    def test_output_invisible_until_checkpoint_commits(self):
        cluster = make_cluster(**{"in": 1, "out": 1})
        engine = make_engine(cluster, interval_ms=1000.0)
        produce(cluster, [("a", 1)])
        engine.step()
        assert engine.records_processed == 1
        # Transaction still open: read-committed consumers see nothing.
        assert drain_topic(cluster, "out") == []
        cluster.clock.advance(1000.0)
        engine.step()     # triggers the checkpoint -> commit
        assert latest_by_key(drain_topic(cluster, "out")) == {"a": 1}

    def test_offsets_stored_in_checkpoint_not_kafka(self):
        cluster = make_cluster(**{"in": 1, "out": 1})
        engine = make_engine(cluster)
        produce(cluster, [("a", 1)])
        engine.run_for(300.0)
        meta = engine.completed_checkpoints[-1]
        (tp,) = meta.source_offsets
        assert meta.source_offsets[tp] == 1


class TestCheckpointCost:
    def test_minimum_one_file_per_checkpoint(self):
        """Even a single dirty key uploads a whole file — the fixed cost."""
        cluster = make_cluster(**{"in": 1, "out": 1})
        store = ObjectStore(cluster.clock, put_latency_ms=25.0, per_kb_ms=0.0)
        engine = make_engine(cluster, interval_ms=50.0, store=store)
        produce(cluster, [("a", 1)])
        engine.run_for(100.0)
        assert store.puts >= 1
        assert engine.checkpoint_time_ms >= 25.0

    def test_file_count_scales_with_dirty_keys(self):
        cluster = make_cluster(**{"in": 1, "out": 1})
        store = ObjectStore(cluster.clock, charge_latency=False)
        engine = make_engine(cluster, interval_ms=10_000.0, store=store,
                             keys_per_file=10)
        produce(cluster, [(f"k{i}", 1) for i in range(35)])
        engine.step()
        engine.checkpoint()
        # 35 dirty keys / 10 per file -> 4 files.
        assert store.puts == 4

    def test_empty_checkpoint_still_costs_a_file(self):
        cluster = make_cluster(**{"in": 1, "out": 1})
        store = ObjectStore(cluster.clock, charge_latency=False)
        engine = make_engine(cluster, interval_ms=10.0, store=store)
        engine.checkpoint()
        assert store.puts == 1


class TestRecovery:
    def test_crash_and_recover_from_checkpoint(self):
        cluster = make_cluster(**{"in": 1, "out": 1})
        engine = make_engine(cluster)
        produce(cluster, [("a", 1), ("a", 1)])
        engine.run_for(300.0)              # processes + checkpoints
        produce(cluster, [("a", 1)])       # processed but not checkpointed
        engine.step()
        engine.crash()
        restored = engine.recover()
        assert restored == engine.completed_checkpoints[-1].checkpoint_id
        assert engine.state == {"a": 2}    # rolled back to the checkpoint
        engine.run_for(300.0)
        final = latest_by_key(drain_topic(cluster, "out"))
        assert final == {"a": 3}           # exactly-once after recovery

    def test_recover_without_checkpoint_restarts_from_beginning(self):
        cluster = make_cluster(**{"in": 1, "out": 1})
        engine = make_engine(cluster, interval_ms=10_000.0)
        produce(cluster, [("a", 1)])
        engine.step()
        engine.crash()
        assert engine.recover() is None
        engine.run_for(11_000.0)
        assert latest_by_key(drain_topic(cluster, "out")) == {"a": 1}

    def test_dangling_transaction_aborted_on_recovery(self):
        cluster = make_cluster(**{"in": 1, "out": 1})
        engine = make_engine(cluster, interval_ms=10_000.0)
        produce(cluster, [("a", 1)])
        engine.step()                      # output in open txn
        engine.crash()
        engine.recover()                   # init_transactions fences/aborts
        from repro.broker.txn_coordinator import COMPLETE_ABORT

        # The coordinator aborted the dangling txn during re-registration.
        state = cluster.txn_coordinator.transaction_state(
            "barrier-job-sink-txn"
        )
        assert state in ("Empty", COMPLETE_ABORT)
        engine.run_for(11_000.0)
        assert latest_by_key(drain_topic(cluster, "out")) == {"a": 1}
