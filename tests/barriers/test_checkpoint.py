"""Barrier alignment semantics (Chandy-Lamport punctuations)."""

import pytest

from repro.barriers.checkpoint import Barrier, BarrierAligner


def test_single_channel_aligns_immediately():
    aligner = BarrierAligner(["a"])
    assert aligner.offer("a", "r1") == ["r1"]
    assert aligner.offer("a", Barrier(1)) == []
    assert aligner.take_aligned() == 1


def test_records_pass_through_before_barrier():
    aligner = BarrierAligner(["a", "b"])
    assert aligner.offer("a", "r1") == ["r1"]
    assert aligner.offer("b", "r2") == ["r2"]


def test_alignment_blocks_fast_channel():
    """Once channel a delivered the barrier, its further records buffer
    until channel b catches up — the alignment delay the paper discusses."""
    aligner = BarrierAligner(["a", "b"])
    aligner.offer("a", Barrier(1))
    assert aligner.offer("a", "post-barrier") == []     # buffered
    assert aligner.alignment_buffered == 1
    assert aligner.offer("b", "pre-barrier") == ["pre-barrier"]
    released = aligner.offer("b", Barrier(1))
    assert released == ["post-barrier"]
    assert aligner.take_aligned() == 1


def test_take_aligned_is_one_shot():
    aligner = BarrierAligner(["a"])
    aligner.offer("a", Barrier(7))
    assert aligner.take_aligned() == 7
    assert aligner.take_aligned() is None


def test_overlapping_checkpoints_rejected():
    aligner = BarrierAligner(["a", "b"])
    aligner.offer("a", Barrier(1))
    with pytest.raises(ValueError):
        aligner.offer("b", Barrier(2))


def test_unknown_channel_rejected():
    aligner = BarrierAligner(["a"])
    with pytest.raises(ValueError):
        aligner.offer("z", "r")


def test_empty_channel_list_rejected():
    with pytest.raises(ValueError):
        BarrierAligner([])


def test_multiple_rounds():
    aligner = BarrierAligner(["a", "b"])
    for checkpoint_id in (1, 2, 3):
        aligner.offer("a", Barrier(checkpoint_id))
        aligner.offer("b", Barrier(checkpoint_id))
        assert aligner.take_aligned() == checkpoint_id
