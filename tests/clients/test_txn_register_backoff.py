"""CONCURRENT_TRANSACTIONS backoff in ``_register_txn_partitions``.

While the previous transaction's markers are still landing the coordinator
rejects ``add_partitions_to_txn`` with a retriable error; the producer must
back off exponentially (on the virtual clock) and eventually either get
through or give up with a clear timeout once ``max_block_ms`` is spent.
"""

import pytest

from repro.clients.producer import Producer
from repro.config import ProducerConfig
from repro.errors import (
    ConcurrentTransactionsError,
    InvalidConfigError,
    MaxBlockTimeoutError,
)


@pytest.fixture
def topic(fast_cluster):
    fast_cluster.create_topic("t", 2)
    return "t"


def make_txn_producer(cluster, **overrides):
    config = ProducerConfig(transactional_id="app-1", **overrides)
    p = Producer(cluster, config)
    p.init_transactions()
    p.begin_transaction()
    return p


def always_concurrent(coordinator):
    def add_partitions(tid, pid, epoch, partitions):
        raise ConcurrentTransactionsError(tid)

    coordinator.add_partitions = add_partitions


class TestBackoff:
    def test_times_out_with_max_block_error(self, fast_cluster, topic):
        p = make_txn_producer(fast_cluster, max_block_ms=20.0)
        always_concurrent(fast_cluster.txn_coordinator)
        p.send(topic, key="k", value=1)
        start = fast_cluster.clock.now
        with pytest.raises(MaxBlockTimeoutError, match="max_block_ms"):
            p.flush()
        # The producer waited out the whole budget — no more, no less.
        assert fast_cluster.clock.now - start == pytest.approx(20.0)

    def test_backoff_grows_exponentially_and_is_capped(self, fast_cluster, topic):
        p = make_txn_producer(
            fast_cluster,
            max_block_ms=100.0,
            retry_backoff_ms=1.0,
            retry_backoff_max_ms=8.0,
        )
        coordinator = fast_cluster.txn_coordinator
        waits = []
        last = [fast_cluster.clock.now]

        real = coordinator.add_partitions

        def add_partitions(tid, pid, epoch, partitions):
            now = fast_cluster.clock.now
            waits.append(now - last[0])
            last[0] = now
            if len(waits) <= 6:
                raise ConcurrentTransactionsError(tid)
            return real(tid, pid, epoch, partitions)

        coordinator.add_partitions = add_partitions
        p.send(topic, key="k", value=1)
        p.flush()
        # waits[0] is the time before the first attempt (no backoff yet);
        # the rest double up to the cap: 1, 2, 4, 8, 8, 8.
        assert waits[1:] == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]
        p.commit_transaction()

    def test_recovers_when_error_clears(self, fast_cluster, topic):
        p = make_txn_producer(fast_cluster)
        coordinator = fast_cluster.txn_coordinator
        real = coordinator.add_partitions
        attempts = [0]

        def flaky(tid, pid, epoch, partitions):
            attempts[0] += 1
            if attempts[0] < 3:
                raise ConcurrentTransactionsError(tid)
            return real(tid, pid, epoch, partitions)

        coordinator.add_partitions = flaky
        p.send(topic, key="k", value=1)
        p.flush()
        p.commit_transaction()
        assert attempts[0] == 3

    def test_config_validation(self):
        with pytest.raises(InvalidConfigError):
            ProducerConfig(max_block_ms=0).validate()
        with pytest.raises(InvalidConfigError):
            ProducerConfig(retry_backoff_ms=0).validate()
        with pytest.raises(InvalidConfigError):
            ProducerConfig(retry_backoff_ms=10.0, retry_backoff_max_ms=5.0).validate()
