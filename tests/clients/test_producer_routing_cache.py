"""Client routing caches: hit within an epoch, invalidate across one.

The producer and consumer cache topic metadata and partition leadership,
keyed on the cluster's metadata epoch. These tests pin down both halves of
the contract: routing facts are *not* re-resolved while the epoch is
unchanged, and a leader failover or a repartitioned topic (both of which
bump the epoch) must never be served from the stale cache.
"""

import pytest

from repro.broker.partition import TopicPartition
from repro.clients.admin import AdminClient
from repro.clients.consumer import Consumer
from repro.clients.producer import Producer
from repro.config import ConsumerConfig, ProducerConfig
from repro.sim.failures import FailureInjector
from repro.util import partition_for


@pytest.fixture
def topic(fast_cluster):
    fast_cluster.create_topic("t", 2)
    return "t"


def log_values(cluster, tp):
    log = cluster.partition_state(tp).leader_log()
    return [r.value for r in log.records() if not r.is_control]


class TestCacheHits:
    def test_leader_resolved_once_per_epoch(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        calls = []
        real = fast_cluster.leader_of
        fast_cluster.leader_of = lambda tp: (calls.append(tp), real(tp))[1]
        for i in range(10):
            p.send(topic, key="k", value=i, partition=0)
            p.flush()
        assert calls == [TopicPartition(topic, 0)]

    def test_topic_metadata_resolved_once_per_epoch(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        calls = []
        real = fast_cluster.topic_metadata
        fast_cluster.topic_metadata = lambda name: (calls.append(name), real(name))[1]
        for i in range(10):
            p.send(topic, key=f"k{i}", value=i)
        assert calls == [topic]

    def test_consumer_leader_resolved_once_per_epoch(self, fast_cluster, topic):
        Producer(fast_cluster).send(topic, key="k", value=1, partition=0)
        c = Consumer(fast_cluster)
        c.assign([TopicPartition(topic, 0)])
        calls = []
        real = fast_cluster.leader_of
        fast_cluster.leader_of = lambda tp: (calls.append(tp), real(tp))[1]
        for _ in range(5):
            c.poll()
        assert calls == [TopicPartition(topic, 0)]


class TestLeaderFailover:
    def test_send_after_leader_crash_routes_to_new_leader(
        self, fast_cluster, topic
    ):
        tp = TopicPartition(topic, 0)
        p = Producer(fast_cluster)
        p.send(topic, key="k", value=1, partition=0)
        p.flush()  # populates the leader cache

        old_leader = fast_cluster.leader_of(tp)
        FailureInjector(fast_cluster).crash_broker(old_leader)
        new_leader = fast_cluster.leader_of(tp)
        assert new_leader != old_leader

        p.send(topic, key="k", value=2, partition=0)
        p.flush()
        # The record reached the new leader's log, with nothing lost.
        assert log_values(fast_cluster, tp) == [1, 2]
        # And the send did not need the retry path: the epoch bump alone
        # invalidated the cached route.
        assert p.retries_performed == 0

    def test_consumer_poll_after_leader_crash(self, fast_cluster, topic):
        tp = TopicPartition(topic, 0)
        p = Producer(fast_cluster)
        p.send(topic, key="k", value=1, partition=0)
        p.flush()

        c = Consumer(fast_cluster)
        c.assign([tp])
        assert [r.value for r in c.poll()] == [1]

        old_leader = fast_cluster.leader_of(tp)
        FailureInjector(fast_cluster).crash_broker(old_leader)

        p.send(topic, key="k", value=2, partition=0)
        p.flush()
        assert [r.value for r in c.poll()] == [2]

    def test_restart_also_bumps_epoch(self, fast_cluster, topic):
        tp = TopicPartition(topic, 0)
        p = Producer(fast_cluster)
        p.send(topic, key="k", value=1, partition=0)
        p.flush()
        injector = FailureInjector(fast_cluster)
        victim = fast_cluster.leader_of(tp)
        injector.crash_broker(victim)
        p.send(topic, key="k", value=2, partition=0)
        p.flush()
        injector.restart_broker(victim)
        p.send(topic, key="k", value=3, partition=0)
        p.flush()
        assert log_values(fast_cluster, tp) == [1, 2, 3]


class TestRepartitionedTopic:
    def test_send_uses_new_partition_count(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        # Populate the metadata cache at 2 partitions.
        p.send(topic, key="x", value=0)
        p.flush()

        AdminClient(fast_cluster).create_partitions(topic, 8)

        # Pick a key that maps differently under the two counts; the next
        # send must use the *new* count, not the cached metadata.
        key = next(
            k
            for k in (f"k{i}" for i in range(1000))
            if partition_for(k, 2) != partition_for(k, 8)
        )
        tp = p.send(topic, key=key, value=1)
        assert tp.partition == partition_for(key, 8)
        p.flush()
        assert log_values(fast_cluster, tp) == [1]

    def test_stale_metadata_object_is_not_reused(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        p.send(topic, key="x", value=0)
        before = p._topic_metadata(topic).num_partitions
        AdminClient(fast_cluster).create_partitions(topic, 5)
        after = p._topic_metadata(topic).num_partitions
        assert (before, after) == (2, 5)
