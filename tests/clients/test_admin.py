"""Admin client tests."""

import pytest

from repro.broker.partition import TopicPartition
from repro.clients.admin import AdminClient
from repro.clients.producer import Producer
from repro.errors import TopicAlreadyExistsError


def test_create_and_describe(fast_cluster):
    admin = AdminClient(fast_cluster)
    admin.create_topic("t", 3)
    assert admin.describe_topic("t").num_partitions == 3


def test_create_if_absent(fast_cluster):
    admin = AdminClient(fast_cluster)
    admin.create_topic("t", 3)
    meta = admin.create_topic_if_absent("t", 99)
    assert meta.num_partitions == 3
    with pytest.raises(TopicAlreadyExistsError):
        admin.create_topic("t", 1)


def test_list_topics_hides_internal_by_default(fast_cluster):
    admin = AdminClient(fast_cluster)
    admin.create_topic("user-topic", 1)
    assert admin.list_topics() == ["user-topic"]
    assert "__consumer_offsets" in admin.list_topics(include_internal=True)


def test_delete_records(fast_cluster):
    admin = AdminClient(fast_cluster)
    admin.create_topic("t", 1)
    p = Producer(fast_cluster)
    for i in range(10):
        p.send("t", key="k", value=i, partition=0)
    p.flush()
    tp = TopicPartition("t", 0)
    removed = admin.delete_records({tp: 6})
    assert removed[tp] == 6
