"""Gray-failure detection, hedged fetch, and coordinator retry backoff."""

import pytest

from repro.broker.cluster import Cluster
from repro.clients.consumer import Consumer
from repro.clients.gray import GrayFailureDetector
from repro.clients.producer import Producer
from repro.config import ConsumerConfig
from repro.errors import BrokerUnavailableError
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


def feed(detector, broker, latency, n):
    for _ in range(n):
        detector.observe(broker, latency)


class TestGrayFailureDetector:
    def test_parameter_validation(self, clock):
        with pytest.raises(ValueError, match="alpha"):
            GrayFailureDetector(clock, alpha=0.0)
        with pytest.raises(ValueError, match="ratio"):
            GrayFailureDetector(clock, ratio=1.0)

    def test_ewma_update(self, clock):
        detector = GrayFailureDetector(clock, alpha=0.5)
        detector.observe(0, 10.0)
        detector.observe(0, 20.0)
        assert detector.ewma(0) == pytest.approx(15.0)
        assert detector.ewma(1) is None

    def test_no_demotion_below_min_samples(self, clock):
        detector = GrayFailureDetector(clock, min_samples=8)
        feed(detector, 1, 2.0, 8)        # healthy peer baseline
        feed(detector, 0, 100.0, 7)      # gray, but one sample short
        assert not detector.check(0)
        detector.observe(0, 100.0)
        assert detector.check(0)

    def test_demotion_against_peer_median(self, clock):
        detector = GrayFailureDetector(clock)
        feed(detector, 1, 2.0, 8)
        feed(detector, 2, 4.0, 8)
        feed(detector, 0, 100.0, 8)      # EWMA 100 > 3.0 * median(2,4)=9
        assert detector.check(0)
        assert detector.is_demoted(0)
        # Newly-demoted only reports once.
        assert not detector.check(0)
        assert detector.demotions == 1

    def test_healthy_broker_not_demoted(self, clock):
        detector = GrayFailureDetector(clock)
        feed(detector, 1, 2.0, 8)
        feed(detector, 0, 4.0, 8)        # 4 < 3 * 2: within ratio
        assert not detector.check(0)
        assert not detector.is_demoted(0)

    def test_demotion_window_expires_and_regrows(self, clock):
        detector = GrayFailureDetector(
            clock, demote_initial_ms=50.0, demote_max_ms=800.0
        )
        feed(detector, 1, 2.0, 8)
        feed(detector, 0, 100.0, 8)
        assert detector.check(0)
        clock.advance(49.0)
        assert detector.is_demoted(0)
        clock.advance(2.0)
        assert not detector.is_demoted(0)
        # Still gray after the window: the next demotion doubles (100ms).
        feed(detector, 0, 100.0, 8)
        assert detector.check(0)
        clock.advance(99.0)
        assert detector.is_demoted(0)
        clock.advance(2.0)
        assert not detector.is_demoted(0)
        assert detector.demotions == 2

    def test_healthy_check_resets_backoff(self, clock):
        detector = GrayFailureDetector(clock, demote_initial_ms=50.0)
        feed(detector, 1, 2.0, 8)
        feed(detector, 0, 100.0, 8)
        assert detector.check(0)
        clock.advance(51.0)
        # Demotion resets the EWMA to the threshold, so post-demotion
        # healthy samples pull it down; a healthy check resets the window
        # growth.
        feed(detector, 0, 2.0, 8)
        assert not detector.check(0)
        feed(detector, 0, 100.0, 8)
        assert detector.check(0)
        # Back to the initial 50ms window after the healthy interlude.
        clock.advance(51.0)
        assert not detector.is_demoted(0)

    def test_no_peers_uses_absolute_floor(self, clock):
        detector = GrayFailureDetector(clock, floor_ms=1.0)
        feed(detector, 0, 50.0, 8)
        assert detector.check(0)         # 50 > floor with no baseline

    def test_metrics_counter(self, clock):
        from repro.metrics.registry import MetricsRegistry

        metrics = MetricsRegistry()
        detector = GrayFailureDetector(clock, metrics=metrics)
        feed(detector, 1, 2.0, 8)
        feed(detector, 0, 100.0, 8)
        detector.check(0)
        assert metrics.counter("client.gray_demotions").value == 1


class TestHedgedFetch:
    def make_cluster(self):
        cluster = Cluster(num_brokers=3, seed=3)
        cluster.create_topic("t", 1)
        producer = Producer(cluster)
        for i in range(10):
            producer.send("t", key="k", value=i)
        producer.flush()
        return cluster

    def test_demoted_leader_fetch_goes_to_replica(self):
        cluster = self.make_cluster()
        consumer = Consumer(
            cluster, ConsumerConfig(group_id="g", hedged_fetch=True)
        )
        consumer.subscribe(["t"])
        leader = cluster.leader_of(("t", 0))
        consumer._gray._demoted_until[leader] = cluster.clock.now + 10_000.0
        records = consumer.poll(max_records=100)
        assert len(records) == 10
        assert consumer.hedged_fetches > 0
        assert cluster.metrics.counter("consumer.hedged_fetches").value > 0

    def test_hedge_disabled_without_config(self):
        cluster = self.make_cluster()
        consumer = Consumer(cluster, ConsumerConfig(group_id="g"))
        assert consumer._gray is None
        consumer.subscribe(["t"])
        assert len(consumer.poll(max_records=100)) == 10
        assert consumer.hedged_fetches == 0


class TestCoordinatorRetryBackoff:
    def test_retries_back_off_exponentially_until_deadline(self):
        cluster = Cluster(num_brokers=3, seed=3)
        cluster.create_topic("t", 1)
        consumer = Consumer(
            cluster,
            ConsumerConfig(
                group_id="g",
                retry_backoff_ms=1.0,
                retry_backoff_max_ms=8.0,
                default_api_timeout_ms=40.0,
            ),
        )
        attempts = []

        def always_fails():
            attempts.append(cluster.clock.now)
            raise BrokerUnavailableError("down")

        with pytest.raises(BrokerUnavailableError):
            consumer._call_coordinator(
                "offset_commit", lambda: 0, always_fails, cost=0.0
            )
        gaps = [b - a for a, b in zip(attempts, attempts[1:])]
        # Capped exponential schedule: 1, 2, 4, 8, 8, ... within 40ms.
        assert gaps[:4] == pytest.approx([1.0, 2.0, 4.0, 8.0])
        assert all(g == pytest.approx(8.0) for g in gaps[4:-1])
        # The last wait is clamped to the remaining deadline budget.
        assert attempts[-1] - attempts[0] <= 40.0 + 1e-9
