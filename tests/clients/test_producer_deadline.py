"""Producer retry behaviour under sustained faults: the Kafka ≥2.1 model of
effectively-unbounded retries bounded by delivery_timeout_ms."""

import pytest

from repro.broker.cluster import Cluster
from repro.clients.producer import Producer
from repro.config import ProducerConfig
from repro.errors import RequestTimeoutError
from repro.sim.failures import FailureInjector


@pytest.fixture
def cluster():
    cluster = Cluster(num_brokers=3, seed=7)
    cluster.network.charge_latency = False
    cluster.create_topic("t", 1)
    return cluster


def test_default_retries_effectively_unbounded():
    config = ProducerConfig()
    assert config.retries == 2**31 - 1
    assert config.delivery_timeout_ms == 120_000.0


def test_survives_sustained_link_severance(cluster):
    """A 30ms severed link is ridden out: exponential backoff advances the
    virtual clock past the fault window and the send lands."""
    producer = Producer(cluster, ProducerConfig(client_id="p1"))
    leader = cluster.leader_of(cluster.partitions_for("t")[0])
    FailureInjector(cluster).sever_link("p1", leader, duration_ms=30.0)
    producer.send("t", key="k", value="v")
    producer.flush()
    assert producer.retries_performed > 0


def test_deadline_exceeded_raises(cluster):
    producer = Producer(
        cluster, ProducerConfig(client_id="p1", delivery_timeout_ms=10.0)
    )
    leader = cluster.leader_of(cluster.partitions_for("t")[0])
    # The fault outlives the delivery budget.
    FailureInjector(cluster).sever_link("p1", leader, duration_ms=10_000.0)
    producer.send("t", key="k", value="v")
    with pytest.raises(RequestTimeoutError):
        producer.flush()


def test_backoff_grows_exponentially_to_cap(cluster):
    """Riding out a long fault takes far fewer attempts than fixed 1ms
    backoff would need: doubling from retry_backoff_ms to the cap."""
    producer = Producer(
        cluster,
        ProducerConfig(
            client_id="p1", retry_backoff_ms=1.0, retry_backoff_max_ms=64.0
        ),
    )
    leader = cluster.leader_of(cluster.partitions_for("t")[0])
    FailureInjector(cluster).sever_link("p1", leader, duration_ms=500.0)
    producer.send("t", key="k", value="v")
    producer.flush()
    # 1+2+4+...+64, then 64ms steps: ~11 attempts to cover 500ms.
    assert producer.retries_performed <= 14


def test_explicit_retry_cap_still_honoured(cluster):
    producer = Producer(cluster, ProducerConfig(client_id="p1", retries=2))
    leader = cluster.leader_of(cluster.partitions_for("t")[0])
    FailureInjector(cluster).sever_link("p1", leader, duration_ms=10_000.0)
    producer.send("t", key="k", value="v")
    with pytest.raises(RequestTimeoutError):
        producer.flush()
    assert producer.retries_performed == 3    # initial + 2 retries counted
