"""Consumer client: assignment, polling, positions, group rebalancing."""

import pytest

from repro.broker.partition import TopicPartition
from repro.clients.consumer import Consumer
from repro.clients.producer import Producer
from repro.config import READ_COMMITTED, ConsumerConfig
from repro.errors import KafkaError


@pytest.fixture
def topic(fast_cluster):
    fast_cluster.create_topic("t", 2)
    return "t"


@pytest.fixture
def producer(fast_cluster, topic):
    return Producer(fast_cluster)


def produce(producer, topic, partition, *values):
    for v in values:
        producer.send(topic, key="k", value=v, partition=partition)
    producer.flush()


class TestManualAssignment:
    def test_poll_returns_produced_records(self, fast_cluster, topic, producer):
        produce(producer, topic, 0, 1, 2, 3)
        c = Consumer(fast_cluster)
        c.assign([TopicPartition(topic, 0)])
        assert [r.value for r in c.poll()] == [1, 2, 3]

    def test_poll_is_incremental(self, fast_cluster, topic, producer):
        c = Consumer(fast_cluster)
        c.assign([TopicPartition(topic, 0)])
        produce(producer, topic, 0, "a")
        assert [r.value for r in c.poll()] == ["a"]
        assert c.poll() == []
        produce(producer, topic, 0, "b")
        assert [r.value for r in c.poll()] == ["b"]

    def test_round_robin_across_partitions(self, fast_cluster, topic, producer):
        produce(producer, topic, 0, *range(5))
        produce(producer, topic, 1, *range(5))
        c = Consumer(fast_cluster)
        c.assign(fast_cluster.partitions_for(topic))
        records = c.poll(max_records=10)
        partitions = {r.headers["__partition"] for r in records}
        assert partitions == {0, 1}

    def test_seek_and_position(self, fast_cluster, topic, producer):
        produce(producer, topic, 0, *range(5))
        tp = TopicPartition(topic, 0)
        c = Consumer(fast_cluster)
        c.assign([tp])
        c.poll()
        assert c.position(tp) == 5
        c.seek(tp, 2)
        assert [r.value for r in c.poll()] == [2, 3, 4]

    def test_seek_to_beginning(self, fast_cluster, topic, producer):
        produce(producer, topic, 0, *range(3))
        tp = TopicPartition(topic, 0)
        c = Consumer(fast_cluster)
        c.assign([tp])
        c.poll()
        c.seek_to_beginning(tp)
        assert len(c.poll()) == 3

    def test_pause_and_resume(self, fast_cluster, topic, producer):
        produce(producer, topic, 0, "x")
        tp = TopicPartition(topic, 0)
        c = Consumer(fast_cluster)
        c.assign([tp])
        c.pause(tp)
        assert c.poll() == []
        c.resume(tp)
        assert [r.value for r in c.poll()] == ["x"]

    def test_latest_reset_skips_existing(self, fast_cluster, topic, producer):
        produce(producer, topic, 0, "old")
        c = Consumer(fast_cluster, ConsumerConfig(auto_offset_reset="latest"))
        c.assign([TopicPartition(topic, 0)])
        assert c.poll() == []
        produce(producer, topic, 0, "new")
        assert [r.value for r in c.poll()] == ["new"]

    def test_headers_carry_origin(self, fast_cluster, topic, producer):
        produce(producer, topic, 1, "v")
        c = Consumer(fast_cluster)
        c.assign([TopicPartition(topic, 1)])
        record = c.poll()[0]
        assert record.headers["__topic"] == topic
        assert record.headers["__partition"] == 1

    def test_end_offsets(self, fast_cluster, topic, producer):
        produce(producer, topic, 0, *range(4))
        c = Consumer(fast_cluster)
        tp = TopicPartition(topic, 0)
        assert c.end_offsets([tp])[tp] == 4


class TestGroups:
    def test_subscribe_requires_group(self, fast_cluster, topic):
        c = Consumer(fast_cluster)
        with pytest.raises(KafkaError):
            c.subscribe([topic])

    def test_subscribe_and_poll(self, fast_cluster, topic, producer):
        produce(producer, topic, 0, 1)
        produce(producer, topic, 1, 2)
        c = Consumer(fast_cluster, ConsumerConfig(group_id="g"))
        c.subscribe([topic])
        assert sorted(r.value for r in c.poll()) == [1, 2]

    def test_two_members_split_work(self, fast_cluster, topic, producer):
        c1 = Consumer(fast_cluster, ConsumerConfig(group_id="g"))
        c1.subscribe([topic])
        c2 = Consumer(fast_cluster, ConsumerConfig(group_id="g"))
        c2.subscribe([topic])
        produce(producer, topic, 0, "a")
        produce(producer, topic, 1, "b")
        got1 = [r.value for r in c1.poll()]
        got2 = [r.value for r in c2.poll()]
        assert sorted(got1 + got2) == ["a", "b"]
        assert len(got1) == len(got2) == 1

    def test_rebalance_on_member_join_is_transparent(self, fast_cluster, topic, producer):
        c1 = Consumer(fast_cluster, ConsumerConfig(group_id="g"))
        c1.subscribe([topic])
        assert len(c1.assignment()) == 2
        c2 = Consumer(fast_cluster, ConsumerConfig(group_id="g"))
        c2.subscribe([topic])
        c1.poll()   # triggers rejoin with the new generation
        assert len(c1.assignment()) == 1
        assert len(c2.assignment()) == 1

    def test_commit_and_resume_from_committed(self, fast_cluster, topic, producer):
        produce(producer, topic, 0, *range(4))
        tp = TopicPartition(topic, 0)
        c1 = Consumer(fast_cluster, ConsumerConfig(group_id="g"))
        c1.subscribe([topic])
        c1.poll()
        c1.commit_sync()
        c1.close()
        # A fresh member resumes from the committed position.
        c2 = Consumer(fast_cluster, ConsumerConfig(group_id="g"))
        c2.subscribe([topic])
        assert c2.poll() == []
        produce(producer, topic, 0, "new")
        assert [r.value for r in c2.poll()] == ["new"]

    def test_committed_accessor(self, fast_cluster, topic, producer):
        produce(producer, topic, 0, "x")
        tp = TopicPartition(topic, 0)
        c = Consumer(fast_cluster, ConsumerConfig(group_id="g"))
        c.subscribe([topic])
        c.poll()
        c.commit_sync()
        assert c.committed(tp) == 1

    def test_close_leaves_group(self, fast_cluster, topic):
        c1 = Consumer(fast_cluster, ConsumerConfig(group_id="g"))
        c1.subscribe([topic])
        c2 = Consumer(fast_cluster, ConsumerConfig(group_id="g"))
        c2.subscribe([topic])
        c1.close()
        c2.poll()
        assert len(c2.assignment()) == 2


class TestIsolation:
    def test_read_committed_waits_for_marker(self, fast_cluster, topic):
        from repro.config import ProducerConfig

        p = Producer(fast_cluster, ProducerConfig(transactional_id="tid"))
        p.init_transactions()
        c = Consumer(fast_cluster, ConsumerConfig(isolation_level=READ_COMMITTED))
        c.assign([TopicPartition(topic, 0)])
        p.begin_transaction()
        p.send(topic, key="k", value="pending", partition=0)
        p.flush()
        assert c.poll() == []
        p.commit_transaction()
        assert [r.value for r in c.poll()] == ["pending"]
