"""Producer and log edge cases not covered elsewhere."""

import pytest

from repro.broker.partition import TopicPartition
from repro.clients.consumer import Consumer
from repro.clients.producer import Producer
from repro.config import (
    READ_COMMITTED,
    ConsumerConfig,
    ProducerConfig,
)
from repro.log.partition_log import PartitionLog
from repro.log.record import Record, RecordBatch


@pytest.fixture
def topic(fast_cluster):
    fast_cluster.create_topic("t", 3)
    return "t"


class TestProducerEdges:
    def test_headers_stored_with_record(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        p.send(topic, key="k", value=1, partition=0,
               headers={"trace": "abc", "n": 7})
        p.flush()
        log = fast_cluster.partition_state(TopicPartition(topic, 0)).leader_log()
        assert log.records()[0].headers == {"trace": "abc", "n": 7}

    def test_explicit_partition_overrides_hash(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        tp = p.send(topic, key="whatever", value=1, partition=2)
        assert tp == TopicPartition(topic, 2)

    def test_batch_boundary_registers_txn_partitions(self, fast_cluster, topic):
        """An auto-flush at the batch boundary must register the partition
        with the coordinator before appending transactional data."""
        p = Producer(
            fast_cluster,
            ProducerConfig(transactional_id="edge", batch_max_records=2),
        )
        p.init_transactions()
        p.begin_transaction()
        p.send(topic, key="a", value=1, partition=0)
        p.send(topic, key="b", value=2, partition=0)   # triggers auto-flush
        meta = fast_cluster.txn_coordinator.transaction_metadata("edge")
        assert TopicPartition(topic, 0) in meta.partitions
        p.commit_transaction()
        consumer = Consumer(
            fast_cluster, ConsumerConfig(isolation_level=READ_COMMITTED)
        )
        consumer.assign([TopicPartition(topic, 0)])
        assert [r.value for r in consumer.poll()] == [1, 2]

    def test_abort_then_new_transaction_reuses_producer(self, fast_cluster, topic):
        p = Producer(fast_cluster, ProducerConfig(transactional_id="edge2"))
        p.init_transactions()
        p.begin_transaction()
        p.send(topic, key="x", value="aborted", partition=0)
        p.abort_transaction()
        p.begin_transaction()
        p.send(topic, key="x", value="kept", partition=0)
        p.commit_transaction()
        consumer = Consumer(
            fast_cluster, ConsumerConfig(isolation_level=READ_COMMITTED)
        )
        consumer.assign([TopicPartition(topic, 0)])
        assert [r.value for r in consumer.poll()] == ["kept"]

    def test_close_is_idempotent(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        p.send(topic, key="k", value=1, partition=0)
        p.close()
        p.close()   # second close is a no-op

    def test_metrics_counters(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        for i in range(5):
            p.send(topic, key=f"k{i}", value=i, partition=0)
        p.flush()
        assert p.records_sent == 5
        assert p.batches_sent >= 1


class TestPartitionLogEdges:
    def test_last_timestamp(self):
        log = PartitionLog()
        assert log.last_timestamp() == -1.0
        log.append_batch(RecordBatch([Record(key="k", value=1, timestamp=42.0)]))
        assert log.last_timestamp() == 42.0

    def test_replace_records_requires_ascending_offsets(self):
        log = PartitionLog()
        log.append_batch(RecordBatch([Record(key="a", value=1),
                                      Record(key="b", value=2)]))
        records = log.records()
        with pytest.raises(ValueError):
            log.replace_records([records[1], records[0]])

    def test_reset_to_clears_everything(self):
        log = PartitionLog()
        log.append_batch(
            RecordBatch(
                [Record(key="k", value=1)],
                producer_id=5, producer_epoch=0, base_sequence=0,
                is_transactional=True,
            )
        )
        log.reset_to(100)
        assert len(log) == 0
        assert log.log_start_offset == 100
        assert log.log_end_offset == 100
        assert log.open_transactions() == {}

    def test_append_marker_requires_control_record(self):
        log = PartitionLog()
        with pytest.raises(ValueError):
            log.append_marker(Record(key="k", value=1))


class TestConsumerEdges:
    def test_position_initializes_lazily(self, fast_cluster, topic):
        consumer = Consumer(fast_cluster)
        tp = TopicPartition(topic, 0)
        consumer.assign([tp])
        assert consumer.position(tp) == 0

    def test_committed_without_group_is_none(self, fast_cluster, topic):
        consumer = Consumer(fast_cluster)
        assert consumer.committed(TopicPartition(topic, 0)) is None

    def test_closed_consumer_rejects_poll(self, fast_cluster, topic):
        from repro.errors import KafkaError

        consumer = Consumer(fast_cluster)
        consumer.assign([TopicPartition(topic, 0)])
        consumer.close()
        with pytest.raises(KafkaError):
            consumer.poll()

    def test_commit_with_no_progress_is_noop(self, fast_cluster, topic):
        consumer = Consumer(fast_cluster, ConsumerConfig(group_id="g"))
        consumer.subscribe([topic])
        consumer.commit_sync({})    # empty: no append, no error
