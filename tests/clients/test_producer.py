"""Producer client: batching, retries, idempotence, transactions API."""

import pytest

from repro.broker.partition import TopicPartition
from repro.clients.consumer import Consumer
from repro.clients.producer import Producer
from repro.config import (
    READ_COMMITTED,
    ConsumerConfig,
    ProducerConfig,
)
from repro.errors import (
    InvalidConfigError,
    InvalidTxnStateError,
    ProducerFencedError,
    RequestTimeoutError,
)
from repro.sim.failures import FailureInjector


@pytest.fixture
def topic(fast_cluster):
    fast_cluster.create_topic("t", 2)
    return "t"


def log_values(cluster, tp):
    log = cluster.partition_state(tp).leader_log()
    return [r.value for r in log.records() if not r.is_control]


class TestPlainProduce:
    def test_send_and_flush(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        p.send(topic, key="a", value=1, partition=0)
        p.send(topic, key="b", value=2, partition=1)
        p.flush()
        assert log_values(fast_cluster, TopicPartition(topic, 0)) == [1]
        assert log_values(fast_cluster, TopicPartition(topic, 1)) == [2]

    def test_batch_auto_flush_when_full(self, fast_cluster, topic):
        p = Producer(fast_cluster, ProducerConfig(batch_max_records=3))
        for i in range(3):
            p.send(topic, key="k", value=i, partition=0)
        assert log_values(fast_cluster, TopicPartition(topic, 0)) == [0, 1, 2]

    def test_default_partitioner_is_stable(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        tp1 = p.send(topic, key="user-1", value=1)
        tp2 = p.send(topic, key="user-1", value=2)
        assert tp1 == tp2

    def test_timestamp_defaults_to_clock(self, fast_cluster, topic):
        fast_cluster.clock.advance(123.0)
        p = Producer(fast_cluster)
        p.send(topic, key="k", value=1, partition=0)
        p.flush()
        log = fast_cluster.partition_state(TopicPartition(topic, 0)).leader_log()
        assert log.records()[0].timestamp == 123.0

    def test_explicit_timestamp_preserved(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        p.send(topic, key="k", value=1, timestamp=42.0, partition=0)
        p.flush()
        log = fast_cluster.partition_state(TopicPartition(topic, 0)).leader_log()
        assert log.records()[0].timestamp == 42.0

    def test_closed_producer_rejects_send(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        p.close()
        from repro.errors import KafkaError

        with pytest.raises(KafkaError):
            p.send(topic, key="k", value=1)


class TestIdempotence:
    def test_retry_after_lost_ack_no_duplicate(self, fast_cluster, topic):
        injector = FailureInjector(fast_cluster)
        p = Producer(fast_cluster)  # idempotent by default
        injector.drop_next_produce_ack()
        p.send(topic, key="k", value="once", partition=0)
        p.flush()
        assert p.retries_performed == 1
        assert log_values(fast_cluster, TopicPartition(topic, 0)) == ["once"]

    def test_without_idempotence_retry_duplicates(self, fast_cluster, topic):
        injector = FailureInjector(fast_cluster)
        p = Producer(fast_cluster, ProducerConfig(enable_idempotence=False))
        injector.drop_next_produce_ack()
        p.send(topic, key="k", value="dup", partition=0)
        p.flush()
        assert log_values(fast_cluster, TopicPartition(topic, 0)) == ["dup", "dup"]

    def test_retries_exhausted_raises(self, fast_cluster, topic):
        injector = FailureInjector(fast_cluster)
        p = Producer(fast_cluster, ProducerConfig(retries=2))
        injector.drop_next_produce_ack(count=10)
        p.send(topic, key="k", value="x", partition=0)
        with pytest.raises(RequestTimeoutError):
            p.flush()

    def test_sequences_per_partition(self, fast_cluster, topic):
        p = Producer(fast_cluster)
        for i in range(3):
            p.send(topic, key="k", value=i, partition=0)
            p.send(topic, key="k", value=i, partition=1)
        p.flush()
        log0 = fast_cluster.partition_state(TopicPartition(topic, 0)).leader_log()
        seqs = [r.sequence for r in log0.records()]
        assert seqs == [0, 1, 2]


class TestTransactions:
    def make_txn_producer(self, cluster, tid="tid"):
        p = Producer(cluster, ProducerConfig(transactional_id=tid))
        p.init_transactions()
        return p

    def test_config_requires_idempotence(self):
        with pytest.raises(InvalidConfigError):
            ProducerConfig(transactional_id="t", enable_idempotence=False).validate()

    def test_send_outside_transaction_rejected(self, fast_cluster, topic):
        p = self.make_txn_producer(fast_cluster)
        with pytest.raises(InvalidTxnStateError):
            p.send(topic, key="k", value=1)

    def test_begin_twice_rejected(self, fast_cluster, topic):
        p = self.make_txn_producer(fast_cluster)
        p.begin_transaction()
        with pytest.raises(InvalidTxnStateError):
            p.begin_transaction()

    def test_commit_makes_records_visible(self, fast_cluster, topic):
        p = self.make_txn_producer(fast_cluster)
        consumer = Consumer(
            fast_cluster, ConsumerConfig(isolation_level=READ_COMMITTED)
        )
        consumer.assign(fast_cluster.partitions_for(topic))
        p.begin_transaction()
        p.send(topic, key="k", value="v", partition=0)
        p.flush()
        assert consumer.poll() == []
        p.commit_transaction()
        assert [r.value for r in consumer.poll()] == ["v"]

    def test_abort_hides_records(self, fast_cluster, topic):
        p = self.make_txn_producer(fast_cluster)
        consumer = Consumer(
            fast_cluster, ConsumerConfig(isolation_level=READ_COMMITTED)
        )
        consumer.assign(fast_cluster.partitions_for(topic))
        p.begin_transaction()
        p.send(topic, key="k", value="gone", partition=0)
        p.abort_transaction()
        assert consumer.poll() == []

    def test_transaction_spans_partitions_atomically(self, fast_cluster, topic):
        p = self.make_txn_producer(fast_cluster)
        p.begin_transaction()
        p.send(topic, key="a", value=1, partition=0)
        p.send(topic, key="b", value=2, partition=1)
        p.commit_transaction()
        consumer = Consumer(
            fast_cluster, ConsumerConfig(isolation_level=READ_COMMITTED)
        )
        consumer.assign(fast_cluster.partitions_for(topic))
        assert sorted(r.value for r in consumer.poll()) == [1, 2]

    def test_zombie_producer_fenced(self, fast_cluster, topic):
        """Two producer instances share a transactional id; the older one
        is fenced once the newer registers (the zombie-instance problem)."""
        old = self.make_txn_producer(fast_cluster, tid="shared")
        old.begin_transaction()
        old.send(topic, key="k", value="zombie", partition=0)
        old.flush()
        new = self.make_txn_producer(fast_cluster, tid="shared")
        with pytest.raises(ProducerFencedError):
            old.send(topic, key="k", value="zombie2", partition=0)
            old.flush()
            old.commit_transaction()
        del new

    def test_send_offsets_to_transaction(self, fast_cluster, topic):
        group_coord = fast_cluster.group_coordinator
        src = TopicPartition("src", 0)
        fast_cluster.create_topic("src", 1)
        p = self.make_txn_producer(fast_cluster)
        p.begin_transaction()
        p.send(topic, key="k", value=1, partition=0)
        p.send_offsets_to_transaction({src: 17}, "my-group")
        p.commit_transaction()
        assert group_coord.fetch_committed("my-group", [src])[src] == 17

    def test_offsets_rolled_back_on_abort(self, fast_cluster, topic):
        group_coord = fast_cluster.group_coordinator
        src = TopicPartition("src", 0)
        fast_cluster.create_topic("src", 1)
        p = self.make_txn_producer(fast_cluster)
        p.begin_transaction()
        p.send_offsets_to_transaction({src: 17}, "my-group")
        p.abort_transaction()
        assert group_coord.fetch_committed("my-group", [src])[src] is None

    def test_close_aborts_open_transaction(self, fast_cluster, topic):
        p = self.make_txn_producer(fast_cluster)
        p.begin_transaction()
        p.send(topic, key="k", value="x", partition=0)
        p.close()
        from repro.broker.txn_coordinator import COMPLETE_ABORT

        assert (
            fast_cluster.txn_coordinator.transaction_state("tid") == COMPLETE_ABORT
        )

    def test_consecutive_transactions(self, fast_cluster, topic):
        p = self.make_txn_producer(fast_cluster)
        for i in range(3):
            p.begin_transaction()
            p.send(topic, key="k", value=i, partition=0)
            p.commit_transaction()
        consumer = Consumer(
            fast_cluster, ConsumerConfig(isolation_level=READ_COMMITTED)
        )
        consumer.assign([TopicPartition(topic, 0)])
        assert [r.value for r in consumer.poll()] == [0, 1, 2]
