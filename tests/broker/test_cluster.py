"""Cluster-level behaviour: topics, metadata, failures, compaction."""

import pytest

from repro.broker.cluster import Cluster
from repro.broker.partition import (
    CONSUMER_OFFSETS_TOPIC,
    TRANSACTION_STATE_TOPIC,
    TopicPartition,
)
from repro.config import BrokerConfig
from repro.errors import (
    BrokerUnavailableError,
    TopicAlreadyExistsError,
    UnknownTopicOrPartitionError,
)
from repro.log.record import Record, RecordBatch


def test_internal_topics_created_at_startup(cluster):
    assert cluster.has_topic(CONSUMER_OFFSETS_TOPIC)
    assert cluster.has_topic(TRANSACTION_STATE_TOPIC)
    assert cluster.topic_metadata(CONSUMER_OFFSETS_TOPIC).compacted


def test_create_topic_and_metadata(cluster):
    meta = cluster.create_topic("events", 4)
    assert meta.num_partitions == 4
    assert meta.replication_factor == 3
    assert len(cluster.partitions_for("events")) == 4


def test_create_duplicate_topic_rejected(cluster):
    cluster.create_topic("t", 1)
    with pytest.raises(TopicAlreadyExistsError):
        cluster.create_topic("t", 1)


def test_unknown_topic_raises(cluster):
    with pytest.raises(UnknownTopicOrPartitionError):
        cluster.topic_metadata("nope")
    with pytest.raises(UnknownTopicOrPartitionError):
        cluster.partition_state(TopicPartition("nope", 0))


def test_replication_factor_capped_by_broker_count():
    cluster = Cluster(num_brokers=2, config=BrokerConfig(min_insync_replicas=1))
    meta = cluster.create_topic("t", 1, replication_factor=5)
    assert meta.replication_factor == 2


def test_replica_placement_spreads_leaders(cluster):
    cluster.create_topic("t", 6)
    leaders = {cluster.leader_of(tp) for tp in cluster.partitions_for("t")}
    assert leaders == {0, 1, 2}


def test_crash_broker_moves_leadership(cluster):
    cluster.create_topic("t", 3)
    victim_tp = next(
        tp for tp in cluster.partitions_for("t") if cluster.leader_of(tp) == 0
    )
    cluster.crash_broker(0)
    assert cluster.leader_of(victim_tp) != 0
    assert cluster.alive_brokers() == [1, 2]


def test_crashed_broker_unreachable_via_network(cluster):
    cluster.crash_broker(1)
    with pytest.raises(BrokerUnavailableError):
        cluster.network.call("produce", 1, lambda: None)


def test_restart_broker_rejoins(cluster):
    cluster.crash_broker(1)
    cluster.restart_broker(1)
    assert cluster.alive_brokers() == [0, 1, 2]


def test_produce_survives_leader_crash(cluster):
    cluster.create_topic("t", 1)
    tp = TopicPartition("t", 0)
    cluster.handle_produce(tp, RecordBatch([Record(key="k", value=1)]))
    old_leader = cluster.leader_of(tp)
    cluster.crash_broker(old_leader)
    cluster.handle_produce(tp, RecordBatch([Record(key="k", value=2)]))
    log = cluster.partition_state(tp).leader_log()
    assert [r.value for r in log.read(0)] == [1, 2]


def test_delete_records(cluster):
    cluster.create_topic("t", 1)
    tp = TopicPartition("t", 0)
    cluster.handle_produce(tp, RecordBatch([Record(key="k", value=i) for i in range(8)]))
    removed = cluster.delete_records(tp, 5)
    assert removed == 5
    for log in cluster.partition_state(tp).replicas.values():
        assert log.log_start_offset == 5


def test_run_compaction_only_touches_compacted_topics(cluster):
    cluster.create_topic("plain", 1)
    cluster.create_topic("compacted", 1, compacted=True)
    for topic in ("plain", "compacted"):
        tp = TopicPartition(topic, 0)
        for i in range(4):
            cluster.handle_produce(tp, RecordBatch([Record(key="same", value=i)]))
    removed = cluster.run_compaction()
    assert TopicPartition("compacted", 0) in removed
    assert TopicPartition("plain", 0) not in removed
    plain_log = cluster.partition_state(TopicPartition("plain", 0)).leader_log()
    assert len(plain_log) == 4


def test_producer_id_allocation_unique(cluster):
    ids = {cluster.allocate_producer_id() for _ in range(100)}
    assert len(ids) == 100


def test_reserve_producer_id(cluster):
    cluster.reserve_producer_id(5000)
    assert cluster.allocate_producer_id() == 5000
