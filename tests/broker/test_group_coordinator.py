"""Group membership, generations, assignment, and durable offsets."""

import pytest

from repro.broker.partition import TopicPartition
from repro.errors import (
    CommitFailedError,
    IllegalGenerationError,
    UnknownMemberError,
)


@pytest.fixture
def coordinator(fast_cluster):
    fast_cluster.create_topic("t", 4)
    return fast_cluster.group_coordinator


class TestMembership:
    def test_single_member_gets_all_partitions(self, coordinator):
        member, gen = coordinator.join_group("g", ("t",))
        assigned = coordinator.assignment("g", member, gen)
        assert sorted(assigned) == [TopicPartition("t", i) for i in range(4)]

    def test_two_members_split_partitions(self, coordinator):
        m1, _ = coordinator.join_group("g", ("t",))
        m2, gen = coordinator.join_group("g", ("t",))
        a1 = coordinator.assignment("g", m1, gen)
        a2 = coordinator.assignment("g", m2, gen)
        assert len(a1) == len(a2) == 2
        assert not set(a1) & set(a2)
        assert len(set(a1) | set(a2)) == 4

    def test_join_bumps_generation(self, coordinator):
        _, gen1 = coordinator.join_group("g", ("t",))
        _, gen2 = coordinator.join_group("g", ("t",))
        assert gen2 == gen1 + 1

    def test_stale_generation_rejected(self, coordinator):
        m1, gen1 = coordinator.join_group("g", ("t",))
        coordinator.join_group("g", ("t",))
        with pytest.raises(IllegalGenerationError):
            coordinator.assignment("g", m1, gen1)

    def test_leave_group_rebalances(self, coordinator):
        m1, _ = coordinator.join_group("g", ("t",))
        m2, _ = coordinator.join_group("g", ("t",))
        coordinator.leave_group("g", m2)
        gen = coordinator.generation("g")
        assert len(coordinator.assignment("g", m1, gen)) == 4

    def test_unknown_member_rejected(self, coordinator):
        coordinator.join_group("g", ("t",))
        with pytest.raises(UnknownMemberError):
            coordinator.assignment("g", "ghost", coordinator.generation("g"))

    def test_sticky_reassignment_keeps_partitions(self, coordinator):
        """Stickiness: a rebalance moves as few partitions as possible."""
        m1, gen = coordinator.join_group("g", ("t",))
        before = set(coordinator.assignment("g", m1, gen))
        m2, gen = coordinator.join_group("g", ("t",))
        after = set(coordinator.assignment("g", m1, gen))
        assert after <= before          # m1 only gave partitions away
        assert len(after) == 2

    def test_rejoin_with_member_id_keeps_identity(self, coordinator):
        m1, _ = coordinator.join_group("g", ("t",))
        m1_again, _ = coordinator.join_group("g", ("t",), member_id=m1)
        assert m1 == m1_again
        assert coordinator.members("g") == [m1]

    def test_subscription_respected(self, coordinator, fast_cluster):
        fast_cluster.create_topic("other", 2)
        m1, _ = coordinator.join_group("g", ("t",))
        m2, gen = coordinator.join_group("g", ("other",))
        a2 = coordinator.assignment("g", m2, gen)
        assert all(tp.topic == "other" for tp in a2)


class TestOffsets:
    def test_commit_and_fetch(self, coordinator):
        tp = TopicPartition("t", 0)
        coordinator.commit_offsets("g", {tp: 42})
        assert coordinator.fetch_committed("g", [tp]) == {tp: 42}

    def test_latest_commit_wins(self, coordinator):
        tp = TopicPartition("t", 0)
        coordinator.commit_offsets("g", {tp: 10})
        coordinator.commit_offsets("g", {tp: 20})
        assert coordinator.fetch_committed("g", [tp])[tp] == 20

    def test_uncommitted_partition_returns_none(self, coordinator):
        tp = TopicPartition("t", 3)
        assert coordinator.fetch_committed("g", [tp])[tp] is None

    def test_groups_are_isolated(self, coordinator):
        tp = TopicPartition("t", 0)
        coordinator.commit_offsets("g1", {tp: 5})
        assert coordinator.fetch_committed("g2", [tp])[tp] is None

    def test_stale_generation_commit_rejected(self, coordinator):
        m1, gen1 = coordinator.join_group("g", ("t",))
        coordinator.join_group("g", ("t",))  # bumps generation
        with pytest.raises(IllegalGenerationError):
            coordinator.commit_offsets(
                "g", {TopicPartition("t", 0): 1}, member_id=m1, generation=gen1
            )

    def test_zombie_commit_for_foreign_partition_fenced(self, coordinator):
        """The generation check alone cannot fence a member that rejoined
        (refreshing its generation) but kept processing buffered records
        for a partition it lost: ownership is checked per partition."""
        m1, gen = coordinator.join_group("g", ("t",))
        m2, gen = coordinator.join_group("g", ("t",))
        owned_by_m2 = coordinator.assignment("g", m2, gen)
        with pytest.raises(CommitFailedError, match="does not own"):
            coordinator.commit_offsets(
                "g", {owned_by_m2[0]: 10}, member_id=m1, generation=gen
            )
        # The same commit for the member's own partitions is fine.
        owned_by_m1 = coordinator.assignment("g", m1, gen)
        coordinator.commit_offsets(
            "g", {owned_by_m1[0]: 10}, member_id=m1, generation=gen
        )
        assert coordinator.fetch_committed(
            "g", [owned_by_m1[0]]
        )[owned_by_m1[0]] == 10

    def test_memberless_commit_skips_ownership_check(self, coordinator):
        # Simple (non-group-managed) commits carry no member identity and
        # are not fenced — matching assign()-style consumers.
        coordinator.join_group("g", ("t",))
        coordinator.commit_offsets("g", {TopicPartition("t", 0): 3})
        assert (
            coordinator.fetch_committed("g", [TopicPartition("t", 0)])[
                TopicPartition("t", 0)
            ]
            == 3
        )

    def test_transactional_offsets_invisible_until_commit(self, fast_cluster, coordinator):
        """Offsets written inside a transaction only count once the txn
        commits — the rollback behaviour of Section 4.2.3."""
        txn = fast_cluster.txn_coordinator
        pid, epoch = txn.init_producer_id("tid")
        tp = TopicPartition("t", 0)
        offsets_tp = coordinator.offsets_partition("g")
        txn.add_partitions("tid", pid, epoch, [offsets_tp])
        coordinator.commit_offsets(
            "g", {tp: 99}, producer_id=pid, producer_epoch=epoch, transactional=True
        )
        assert coordinator.fetch_committed("g", [tp])[tp] is None
        txn.end_transaction("tid", pid, epoch, commit=True)
        assert coordinator.fetch_committed("g", [tp])[tp] == 99

    def test_aborted_transactional_offsets_rolled_back(self, fast_cluster, coordinator):
        txn = fast_cluster.txn_coordinator
        pid, epoch = txn.init_producer_id("tid")
        tp = TopicPartition("t", 0)
        coordinator.commit_offsets("g", {tp: 10})  # prior committed progress
        offsets_tp = coordinator.offsets_partition("g")
        txn.add_partitions("tid", pid, epoch, [offsets_tp])
        coordinator.commit_offsets(
            "g", {tp: 50}, producer_id=pid, producer_epoch=epoch, transactional=True
        )
        txn.end_transaction("tid", pid, epoch, commit=False)
        assert coordinator.fetch_committed("g", [tp])[tp] == 10


class TestCustomAssignor:
    def test_custom_assignor_used(self, coordinator):
        def everything_to_first(members, partitions):
            ordered = sorted(members)
            result = {m: [] for m in ordered}
            result[ordered[0]] = list(partitions)
            return result

        coordinator.set_assignor("g", everything_to_first)
        m1, _ = coordinator.join_group("g", ("t",))
        m2, gen = coordinator.join_group("g", ("t",))
        first = sorted([m1, m2])[0]
        other = m2 if first == m1 else m1
        assert len(coordinator.assignment("g", first, gen)) == 4
        assert coordinator.assignment("g", other, gen) == []


class TestCooperativeProtocol:
    """KIP-429 incremental rebalancing at the coordinator level."""

    def test_all_cooperative_members_negotiate_cooperative(self, coordinator):
        from repro.config import COOPERATIVE

        coordinator.join_group("g", ("t",), protocol=COOPERATIVE)
        coordinator.join_group("g", ("t",), protocol=COOPERATIVE)
        assert coordinator.group_protocol("g") == COOPERATIVE

    def test_mixed_protocols_downgrade_to_eager(self, coordinator):
        from repro.config import COOPERATIVE, EAGER

        m1, _ = coordinator.join_group("g", ("t",), protocol=COOPERATIVE)
        m2, gen = coordinator.join_group("g", ("t",))   # eager member
        assert coordinator.group_protocol("g") == EAGER
        # Eager semantics: the new member is granted partitions at once.
        assert coordinator.assignment("g", m2, gen)
        assert coordinator.unreleased_partitions("g") == {}

    def test_moved_partitions_withheld_until_ack(self, coordinator):
        from repro.config import COOPERATIVE

        m1, _ = coordinator.join_group("g", ("t",), protocol=COOPERATIVE)
        m2, gen = coordinator.join_group("g", ("t",), protocol=COOPERATIVE)
        # First phase: m1 keeps the intersection of old and new assignment;
        # the partitions moving to m2 are withheld until m1 acks.
        a1 = coordinator.assignment("g", m1, gen)
        a2 = coordinator.assignment("g", m2, gen)
        assert len(a1) == 2
        assert a2 == []
        unreleased = coordinator.unreleased_partitions("g")
        assert len(unreleased) == 2
        assert set(unreleased.values()) == {m1}
        assert not set(unreleased) & set(a1)

    def test_ack_triggers_followup_grant(self, coordinator):
        from repro.config import COOPERATIVE

        m1, _ = coordinator.join_group("g", ("t",), protocol=COOPERATIVE)
        m2, _ = coordinator.join_group("g", ("t",), protocol=COOPERATIVE)
        coordinator.rebalance_ack("g", m1)
        assert coordinator.unreleased_partitions("g") == {}
        assert coordinator.rebalance_pending("g")
        # The follow-up rebalance applies at the next safe point.
        coordinator.heartbeat("g", m1)
        gen = coordinator.generation("g")
        a1 = coordinator.assignment("g", m1, gen)
        a2 = coordinator.assignment("g", m2, gen)
        assert len(a1) == len(a2) == 2
        assert not set(a1) & set(a2)

    def test_departed_owner_releases_its_claims(self, coordinator):
        from repro.config import COOPERATIVE

        m1, _ = coordinator.join_group("g", ("t",), protocol=COOPERATIVE)
        m2, _ = coordinator.join_group("g", ("t",), protocol=COOPERATIVE)
        assert coordinator.unreleased_partitions("g")
        coordinator.leave_group("g", m1)
        # The departed owner can never ack; its claims are released and the
        # survivor owns everything.
        assert coordinator.unreleased_partitions("g") == {}
        gen = coordinator.generation("g")
        assert len(coordinator.assignment("g", m2, gen)) == 4

    def test_unreleased_partition_keeps_old_owner_commit_eligible(
        self, coordinator
    ):
        from repro.config import COOPERATIVE

        m1, _ = coordinator.join_group("g", ("t",), protocol=COOPERATIVE)
        m2, gen = coordinator.join_group("g", ("t",), protocol=COOPERATIVE)
        moving = next(iter(coordinator.unreleased_partitions("g")))
        # m1 still owns ``moving`` until it acks: committing its final
        # progress for the handed-over partition must succeed.
        coordinator.commit_offsets(
            "g", {moving: 9}, member_id=m1, generation=gen
        )
        assert coordinator.fetch_committed("g", [moving])[moving] == 9

    def test_offsets_stable_tracks_open_transactions(self, fast_cluster, coordinator):
        txn = fast_cluster.txn_coordinator
        assert coordinator.offsets_stable("g")
        pid, epoch = txn.init_producer_id("tid")
        offsets_tp = coordinator.offsets_partition("g")
        txn.add_partitions("tid", pid, epoch, [offsets_tp])
        coordinator.commit_offsets(
            "g",
            {TopicPartition("t", 0): 7},
            producer_id=pid,
            producer_epoch=epoch,
            transactional=True,
        )
        assert not coordinator.offsets_stable("g")
        txn.end_transaction("tid", pid, epoch, commit=True)
        assert coordinator.offsets_stable("g")
