"""The fetch path: isolation levels, LSO gating, aborted filtering."""

import pytest

from repro.broker.fetch import fetch
from repro.config import READ_COMMITTED, READ_UNCOMMITTED
from repro.log.partition_log import PartitionLog
from repro.log.record import (
    ABORT_MARKER,
    COMMIT_MARKER,
    Record,
    RecordBatch,
    control_marker,
)


def plain(log, *values):
    log.append_batch(RecordBatch([Record(key="k", value=v) for v in values]))
    log.high_watermark = log.log_end_offset


def txn(log, pid, seq, *values):
    log.append_batch(
        RecordBatch(
            [Record(key="k", value=v) for v in values],
            producer_id=pid,
            producer_epoch=0,
            base_sequence=seq,
            is_transactional=True,
        )
    )
    log.high_watermark = log.log_end_offset


def end_txn(log, pid, marker):
    log.append_marker(control_marker(marker, pid, 0))
    log.high_watermark = log.log_end_offset


def test_plain_records_visible_to_both_levels():
    log = PartitionLog()
    plain(log, 1, 2)
    for level in (READ_COMMITTED, READ_UNCOMMITTED):
        result = fetch(log, 0, isolation_level=level)
        assert [r.value for r in result.records] == [1, 2]
        assert result.next_offset == 2


def test_open_txn_hidden_from_read_committed_only():
    log = PartitionLog()
    txn(log, 1, 0, "open")
    rc = fetch(log, 0, isolation_level=READ_COMMITTED)
    assert rc.records == []
    assert rc.next_offset == 0   # position does not advance past the LSO
    ru = fetch(log, 0, isolation_level=READ_UNCOMMITTED)
    assert [r.value for r in ru.records] == ["open"]


def test_committed_txn_visible_atomically():
    log = PartitionLog()
    txn(log, 1, 0, "a", "b")
    end_txn(log, 1, COMMIT_MARKER)
    result = fetch(log, 0, isolation_level=READ_COMMITTED)
    assert [r.value for r in result.records] == ["a", "b"]
    # Position skips over the marker.
    assert result.next_offset == 3


def test_aborted_txn_filtered_but_position_advances():
    log = PartitionLog()
    txn(log, 1, 0, "aborted1", "aborted2")
    end_txn(log, 1, ABORT_MARKER)
    plain(log, "good")
    result = fetch(log, 0, isolation_level=READ_COMMITTED)
    assert [r.value for r in result.records] == ["good"]
    assert result.next_offset == 4


def test_read_uncommitted_sees_aborted_records():
    log = PartitionLog()
    txn(log, 1, 0, "aborted")
    end_txn(log, 1, ABORT_MARKER)
    result = fetch(log, 0, isolation_level=READ_UNCOMMITTED)
    assert [r.value for r in result.records] == ["aborted"]


def test_interleaved_transactions():
    """Two producers' transactions interleave; only committed data shows."""
    log = PartitionLog()
    txn(log, 1, 0, "p1-a")
    txn(log, 2, 0, "p2-a")
    end_txn(log, 2, ABORT_MARKER)     # p2 aborts
    # p1 still open: LSO caps at p1's first offset = 0.
    assert fetch(log, 0, isolation_level=READ_COMMITTED).records == []
    end_txn(log, 1, COMMIT_MARKER)
    result = fetch(log, 0, isolation_level=READ_COMMITTED)
    assert [r.value for r in result.records] == ["p1-a"]


def test_max_records_respected():
    log = PartitionLog()
    plain(log, *range(10))
    result = fetch(log, 0, max_records=4, isolation_level=READ_UNCOMMITTED)
    assert len(result.records) == 4
    assert result.next_offset == 4


def test_fetch_from_before_log_start_clamps():
    log = PartitionLog()
    plain(log, *range(6))
    log.delete_records_before(3)
    result = fetch(log, 0, isolation_level=READ_UNCOMMITTED)
    assert [r.value for r in result.records] == [3, 4, 5]


def test_unknown_isolation_level():
    log = PartitionLog()
    with pytest.raises(ValueError):
        fetch(log, 0, isolation_level="read_dirty")


def test_fetch_reports_watermarks():
    log = PartitionLog()
    txn(log, 1, 0, "x")
    result = fetch(log, 0, isolation_level=READ_COMMITTED)
    assert result.high_watermark == 1
    assert result.last_stable_offset == 0
