"""Under-replicated produce: acks=all vs min.insync.replicas (Section 4.1).

With replication.factor=3 and min.insync.replicas=2, one dead broker keeps
the partition writable; a second failure shrinks the ISR below the minimum
and acks=all writes must be refused with the *retriable*
NotEnoughReplicasError — the producer rides it out and, once a broker
returns, the retry lands exactly once.
"""

import pytest

from repro.broker.cluster import Cluster
from repro.broker.partition import TopicPartition
from repro.clients.producer import Producer
from repro.config import ProducerConfig
from repro.errors import NotEnoughReplicasError, RetriableError

from tests.streams.harness import drain_topic


@pytest.fixture
def cluster():
    cluster = Cluster(num_brokers=3, seed=7)
    cluster.network.charge_latency = False
    cluster.create_topic("t", 1)
    return cluster


def crash_two_followers(cluster):
    tp = TopicPartition("t", 0)
    state = cluster.partition_state(tp)
    for broker_id in sorted(state.isr - {state.leader})[:2]:
        cluster.crash_broker(broker_id)
    return tp


def test_acks_all_below_min_isr_raises(cluster):
    crash_two_followers(cluster)
    producer = Producer(cluster, ProducerConfig(retries=0))
    producer.send("t", key="k", value="v")
    with pytest.raises(NotEnoughReplicasError):
        producer.flush()


def test_not_enough_replicas_is_retriable(cluster):
    assert issubclass(NotEnoughReplicasError, RetriableError)


def test_rejection_is_counted(cluster):
    crash_two_followers(cluster)
    producer = Producer(cluster, ProducerConfig(retries=0))
    producer.send("t", key="k", value="v")
    with pytest.raises(NotEnoughReplicasError):
        producer.flush()
    assert cluster.metrics.counters()["broker.not_enough_replicas"] == 1


def test_acks_1_still_accepted_below_min_isr(cluster):
    crash_two_followers(cluster)
    producer = Producer(cluster, ProducerConfig(acks="1"))
    producer.send("t", key="k", value="v")
    producer.flush()     # leader append only; no min-ISR gate


def test_retry_succeeds_after_broker_returns_without_duplicate(cluster):
    """The producer backs off through the outage; a scheduled broker
    restart fires *during* the backoff (virtual time advances between
    attempts) and the retried write lands exactly once."""
    tp = crash_two_followers(cluster)
    dead = sorted(
        b for b in cluster.brokers if not cluster.is_broker_alive(b)
    )
    # Repair arrives 20ms of virtual time into the retry storm.
    for broker_id in dead:
        cluster.clock.schedule(20.0, lambda b=broker_id: cluster.restart_broker(b))

    producer = Producer(cluster)     # idempotent, effectively-infinite retries
    producer.send("t", key="k", value="v")
    producer.flush()

    assert producer.retries_performed > 0
    records = drain_topic(cluster, "t")
    assert [(r.key, r.value) for r in records] == [("k", "v")]
    state = cluster.partition_state(tp)
    assert len(state.isr) == 3      # everyone resynced


def test_retry_gives_up_at_delivery_timeout(cluster):
    crash_two_followers(cluster)     # and nobody ever comes back
    producer = Producer(cluster, ProducerConfig(delivery_timeout_ms=50.0))
    producer.send("t", key="k", value="v")
    start = cluster.clock.now
    with pytest.raises(NotEnoughReplicasError):
        producer.flush()
    assert cluster.clock.now - start >= 50.0
